#!/usr/bin/env python3
"""Failure drill: survive an AZ outage and a split-brain partition.

Reproduces Section V-F: a HopsFS-CL (3,3) deployment keeps serving after
an entire availability zone dies (backup fragments are promoted, clients
fail over to surviving AZ-local namenodes), and a network partition
between two AZs is resolved by the NDB arbitrator — one side survives,
the other shuts down, never both (no split brain).
"""

from repro.hopsfs import HopsFsConfig, build_hopsfs
from repro.ndb import NdbConfig


def drill_az_outage() -> None:
    print("=== Drill 1: losing an entire AZ ===")
    fs = build_hopsfs(
        num_namenodes=6,
        azs=(1, 2, 3),
        az_aware=True,
        ndb_config=NdbConfig(
            num_datanodes=6, replication=3, az_aware=True, heartbeat_interval_ms=10.0
        ),
        hopsfs_config=HopsFsConfig(election_period_ms=50.0),
        heartbeats=True,
        seed=7,
    )
    client = fs.client(az=2)
    env = fs.env

    def scenario():
        yield from fs.await_election()
        yield from client.mkdir("/critical")
        yield from client.create("/critical/ledger", data=b"balance=42")
        print(f"  t={env.now:7.1f}ms  wrote /critical/ledger")

        print("  !! AZ 1 loses power !!")
        for dn in list(fs.ndb.datanodes.values()):
            if fs.topology.az_of(dn.addr) == 1:
                dn.shutdown("AZ outage")
        for nn in fs.namenodes:
            if fs.topology.az_of(nn.addr) == 1:
                nn.shutdown()
        yield env.timeout(300)  # heartbeats detect, backups promoted
        live = [str(a) for a in fs.ndb.partition_map.live_datanodes()]
        print(f"  t={env.now:7.1f}ms  surviving NDB datanodes: {live}")

        content = yield from client.read("/critical/ledger")
        print(f"  t={env.now:7.1f}ms  read back: {content.small_data!r}  (no data loss)")
        yield from client.create("/critical/ledger2", data=b"still writable")
        print(f"  t={env.now:7.1f}ms  new writes succeed; cluster operational: "
              f"{fs.ndb.is_operational()}")

    env.run_process(scenario(), until=120_000)


def drill_split_brain() -> None:
    print("\n=== Drill 2: split brain between AZ2 and AZ3 ===")
    fs = build_hopsfs(
        num_namenodes=2,
        azs=(2, 3),
        az_aware=True,
        ndb_config=NdbConfig(
            num_datanodes=4, replication=2, az_aware=True, heartbeat_interval_ms=10.0
        ),
        hopsfs_config=HopsFsConfig(election_period_ms=50.0),
        heartbeats=True,
        seed=8,
    )
    env = fs.env
    arbitrator = fs.ndb.mgmt_nodes[0]
    print(f"  arbitrator: {arbitrator.addr} in AZ {arbitrator.az}")

    def scenario():
        yield from fs.await_election()
        print(f"  t={env.now:7.1f}ms  partitioning AZ2 | AZ3")
        fs.network.partition_azs({2}, {3})
        yield env.timeout(800)
        for dn in fs.ndb.datanodes.values():
            state = "RUNNING" if dn.running else f"DOWN ({dn.shutdown_reason})"
            print(f"    {dn.addr} (AZ {fs.topology.az_of(dn.addr)}): {state}")
        print(f"  arbitration grants={arbitrator.grants} denials={arbitrator.denials}")
        survivors = {fs.topology.az_of(d.addr) for d in fs.ndb.datanodes.values() if d.running}
        print(f"  exactly one side survived: AZs {survivors}")

    env.run_process(scenario(), until=120_000)


if __name__ == "__main__":
    drill_az_outage()
    drill_split_brain()
