#!/usr/bin/env python3
"""Run the paper's headline comparison on a laptop.

Benchmarks HopsFS (2,1), HopsFS (3,3), HopsFS-CL (3,3) and CephFS with
the Spotify workload at one metadata-server count and prints a Fig. 5-
style comparison, including the AZ-awareness gap and cross-AZ traffic.

Usage:  python examples/spotify_benchmark.py [num_servers]
"""

import sys

from repro.experiments.runner import RunConfig, run_point
from repro.metrics import Table


def main() -> None:
    num_servers = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    setups = ["HopsFS (2,1)", "HopsFS (3,3)", "HopsFS-CL (3,3)", "CephFS"]
    table = Table(
        title=f"Spotify workload @ {num_servers} metadata servers",
        headers=["setup", "ops/s", "avg latency ms", "p99 ms", "cross-AZ MB"],
    )
    baseline = None
    for setup in setups:
        config = (
            RunConfig(warmup_ms=100, window_ms=40)
            if setup.startswith("CephFS")
            else RunConfig(warmup_ms=15, window_ms=15)
        )
        point = run_point(setup, num_servers, config=config)
        if baseline is None:
            baseline = point.throughput_ops_s
        table.add_row(
            setup,
            point.throughput_ops_s,
            point.avg_latency_ms,
            point.p99_ms,
            point.resource.cross_az_mb,
        )
        print(f"  ... {setup}: {point.throughput_ops_s:,.0f} ops/s")
    table.add_note("HopsFS-CL keeps 3-AZ HA at single-AZ performance (paper Sec. V-B)")
    table.print()


if __name__ == "__main__":
    main()
