#!/usr/bin/env python3
"""Quickstart: build a HopsFS-CL cluster and use it like a file system.

Builds a 3-AZ, AZ-aware deployment (HopsFS-CL), then runs a client
through the full POSIX-like surface: mkdir, create (small files live
inline in NDB), read, listing, atomic rename, delete.
"""

from repro.hopsfs import HopsFsConfig, build_hopsfs
from repro.ndb import NdbConfig


def main() -> None:
    fs = build_hopsfs(
        num_namenodes=3,
        azs=(1, 2, 3),  # one replica of everything per availability zone
        az_aware=True,  # this is what makes it HopsFS-CL
        ndb_config=NdbConfig(num_datanodes=6, replication=3, az_aware=True),
        hopsfs_config=HopsFsConfig(election_period_ms=50.0),
        seed=42,
    )
    client = fs.client(az=2)  # a client living in us-west1-b

    def scenario():
        yield from fs.await_election()
        leader = fs.leader_namenode()
        print(f"leader metadata server: {leader.addr} (AZ {leader.az})")

        yield from client.mkdir("/warehouse")
        yield from client.mkdir("/warehouse/events")
        yield from client.create("/warehouse/events/part-0000", data=b"log line 1\n")
        yield from client.create("/warehouse/events/part-0001", data=b"log line 2\n")

        listing = yield from client.listdir("/warehouse/events")
        print(f"listing of /warehouse/events: {listing}")

        content = yield from client.read("/warehouse/events/part-0000")
        print(f"read part-0000: {content.small_data!r} (stored inline in NDB)")

        # Atomic directory rename: the operation object stores cannot do.
        yield from client.rename("/warehouse/events", "/warehouse/events-2026")
        moved = yield from client.listdir("/warehouse/events-2026")
        print(f"after atomic rename: /warehouse/events-2026 -> {moved}")

        row = yield from client.stat("/warehouse/events-2026/part-0001")
        print(f"stat part-0001: inode {row.id}, {row.size} bytes, perm {oct(row.permission)}")

        removed = yield from client.delete("/warehouse", recursive=True)
        print(f"recursive delete removed {removed} inodes")

        print(f"client was served by AZ-local metadata server: {client.current_nn}")
        stats = fs.ndb.read_stats
        print(
            f"AZ-local reads: {stats.az_local_fraction() * 100:.1f}% "
            f"({stats.az_local_reads} local / {stats.az_remote_reads} remote)"
        )

    fs.env.run_process(scenario(), until=120_000)
    print(f"simulated time elapsed: {fs.env.now:.1f} ms")


if __name__ == "__main__":
    main()
