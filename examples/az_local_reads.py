#!/usr/bin/env python3
"""Demonstrate the Read Backup feature: AZ-local reads (paper Fig. 14).

Runs the same read-heavy workload twice against an AZ-aware 3-AZ NDB
cluster — once with the Read Backup table option on, once off — and shows
where the reads were served and how much traffic crossed AZ boundaries.
"""

from repro.net import Network, build_us_west1
from repro.ndb import NdbCluster, NdbConfig, Schema
from repro.ndb.cluster import az_assignment_for
from repro.sim import Environment, RngRegistry
from repro.types import NodeAddress, NodeKind


def run_mode(read_backup: bool) -> None:
    env = Environment()
    topology = build_us_west1()
    network = Network(env, topology)
    schema = Schema()
    schema.define("kv", read_backup=read_backup)
    cluster = NdbCluster(
        env,
        network,
        NdbConfig(num_datanodes=6, replication=3, az_aware=True),
        schema,
        datanode_azs=az_assignment_for(6, 3, [1, 2, 3]),
        mgmt_azs=(1, 2, 3),
        rng=RngRegistry(seed=1),
    )
    cluster.start(heartbeats=False)

    clients = []
    for i, az in enumerate((1, 2, 3), start=1):
        addr = NodeAddress(NodeKind.CLIENT, i)
        topology.add_host(addr, az=az)
        network.register(addr)
        clients.append(cluster.api(addr))

    def scenario():
        writer = clients[0]
        txn = writer.transaction(hint_table="kv", hint_key="k0")
        for i in range(30):
            yield from txn.write("kv", f"k{i}", i)
        yield from txn.commit()
        snap = network.traffic.snapshot()
        for _round in range(10):
            for api in clients:
                for i in range(30):
                    txn = api.transaction(hint_table="kv", hint_key=f"k{i}")
                    yield from txn.read("kv", f"k{i}")
                    yield from txn.commit()
        return network.traffic.delta_since(snap)

    delta = env.run_process(scenario(), until=120_000)
    stats = cluster.read_stats
    total = stats.total_reads()
    primary = sum(c for (t, p, r), c in stats.by_replica.items() if r == 0)
    mode = "Read Backup ENABLED " if read_backup else "Read Backup DISABLED"
    print(f"{mode}: {total:5d} reads | primary {100 * primary / total:5.1f}% | "
          f"AZ-local {stats.az_local_fraction() * 100:5.1f}% | "
          f"cross-AZ read traffic {delta.cross_az_bytes / 1000:.1f} KB")


if __name__ == "__main__":
    print("Where do committed reads go? (3 replicas over 3 AZs, clients in all AZs)")
    run_mode(read_backup=False)
    run_mode(read_backup=True)
    print("\nWith Read Backup, reads are served by the replica in the client's AZ\n"
          "(Section IV-A / Fig. 14) — cross-AZ traffic collapses.")
