#!/usr/bin/env python3
"""Record a workload trace and replay it against two deployments.

Demonstrates the trace tooling (repro.workloads.trace): capture the ops a
Spotify-mix run produced, persist them, then replay the identical stream
against vanilla HopsFS and HopsFS-CL and compare latency distributions —
a paired comparison on the exact same operation sequence.
"""

import tempfile

from repro.metrics.collectors import MetricsCollector, percentile
from repro.types import OpResult
from repro.workloads import SpotifyWorkload, TraceWorkload, generate_namespace, write_trace
from repro.workloads.namespace import install_hopsfs
from repro.hopsfs import HopsFsConfig, build_hopsfs
from repro.ndb import NdbConfig


def record_trace(path, num_ops=300) -> None:
    namespace = generate_namespace(num_top_dirs=4, dirs_per_top=8, files_per_dir=8, seed=5)
    workload = SpotifyWorkload(namespace, seed=5)
    ops = [workload.next_op(client_id=0) for _ in range(num_ops)]
    count = write_trace(path, ops)
    print(f"recorded {count} operations to {path}")
    return namespace


def replay(path, namespace, az_aware: bool) -> list:
    fs = build_hopsfs(
        num_namenodes=3,
        azs=(1, 2, 3),
        az_aware=az_aware,
        ndb_config=NdbConfig(num_datanodes=6, replication=3, az_aware=az_aware),
        hopsfs_config=HopsFsConfig(election_period_ms=50.0),
        seed=5,
    )
    install_hopsfs(fs, namespace)
    client = fs.client(az=2)
    trace = TraceWorkload(path, loop=False)
    latencies = []

    def scenario():
        yield from fs.await_election()
        while not trace.exhausted:
            op, kwargs = trace.next_op()
            start = fs.env.now
            try:
                yield from client.op(op, **kwargs)
            except Exception:
                continue
            latencies.append(fs.env.now - start)

    fs.env.run_process(scenario(), until=600_000)
    return latencies


def main() -> None:
    with tempfile.NamedTemporaryFile(suffix=".trace", delete=False) as f:
        trace_path = f.name
    namespace = record_trace(trace_path)
    for label, az_aware in (("HopsFS (vanilla, 3 AZ)", False), ("HopsFS-CL (3 AZ)  ", True)):
        lats = sorted(replay(trace_path, namespace, az_aware))
        print(
            f"{label}: n={len(lats)}  p50={percentile(lats, 50):.2f}ms  "
            f"p90={percentile(lats, 90):.2f}ms  p99={percentile(lats, 99):.2f}ms"
        )
    print("\nSame trace, same seed - the latency gap is pure AZ-awareness.")


if __name__ == "__main__":
    main()
