"""Deterministic discrete-event simulation substrate."""

from .kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import CorePool, Disk, Store
from .rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "CorePool",
    "Disk",
    "Store",
    "RngRegistry",
]
