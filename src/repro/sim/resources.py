"""Simulation resources: CPU pools, FIFO stores and disks.

These are deliberately lightweight (callback-driven, no generator per job)
because the benchmark harness pushes hundreds of thousands of jobs through
them per run.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Deque

from .kernel import PRIORITY_NORMAL, Environment, Event
from .kernel import _PENDING, _Deferred  # hot paths inline kernel scheduling

__all__ = ["CorePool", "Store", "Disk"]


def _fire_if_pending(event: Event) -> None:
    if not event.triggered:  # skip cancelled/raced waiters
        event.succeed()


class CorePool:
    """A pool of identical CPU cores with a shared FIFO run queue.

    ``submit(cost)`` returns an event that triggers once a core has executed
    the job for ``cost`` milliseconds.  Busy time is accumulated for
    utilization reporting (see :mod:`repro.metrics.utilization`).
    """

    def __init__(self, env: Environment, cores: int, name: str = "cpu"):
        if cores < 1:
            raise ValueError(f"CorePool needs >=1 core, got {cores}")
        self.env = env
        self.cores = cores
        self.name = name
        self.busy_time = 0.0
        self.jobs_done = 0
        self._free = cores
        self._pending: Deque[tuple[float, Event]] = deque()
        # One bound method for the pool's lifetime; completions are the
        # busiest deferred callback in a figure run.
        self._complete_cb = self._complete

    # submit()/_start()/_complete() hand-inline Event construction, the
    # completion deferred, and done.succeed(): every RPC handler charges a
    # CPU pool per message.  Keep in sync with kernel internals.
    def submit(
        self,
        cost: float,
        # Fast-local bindings of module globals (see kernel.timeout).
        _new=Event.__new__,
        _event=Event,
        _dnew=_Deferred.__new__,
        _deferred=_Deferred,
        _pending=_PENDING,
        _push=heappush,
        _normal=PRIORITY_NORMAL,
    ) -> Event:
        """Enqueue a job costing ``cost`` ms of CPU; returns its done-event."""
        if cost < 0:
            raise ValueError(f"negative CPU cost {cost}")
        env = self.env
        done = _new(_event)
        done.env = env
        done._cb1 = None
        done._cbs = None
        done._value = _pending
        done._ok = True
        if self._free > 0:
            # Inline _start(): most submits find a free core immediately.
            self._free -= 1
            entry = _dnew(_deferred)
            entry.fn = self._complete_cb
            entry.arg = (cost, done)
            env._seq += 1
            _push(env._queue, (env._now + cost, _normal, env._seq, entry))
        else:
            self._pending.append((cost, done))
        return done

    @property
    def queue_length(self) -> int:
        return len(self._pending)

    @property
    def in_service(self) -> int:
        return self.cores - self._free

    def _start(self, cost: float, done: Event) -> None:
        self._free -= 1
        env = self.env
        entry = _Deferred.__new__(_Deferred)
        entry.fn = self._complete_cb
        entry.arg = (cost, done)
        env._seq += 1
        heappush(env._queue, (env._now + cost, PRIORITY_NORMAL, env._seq, entry))

    def _complete(
        self,
        job: tuple[float, Event],
        _dnew=_Deferred.__new__,
        _deferred=_Deferred,
        _push=heappush,
        _normal=PRIORITY_NORMAL,
    ) -> None:
        cost, done = job
        self.busy_time += cost
        self.jobs_done += 1
        done._value = None  # inline done.succeed(): done is submit-private
        env = self.env
        env._seq += 1
        _push(env._queue, (env._now, _normal, env._seq, done))
        if self._pending:
            # The freed core immediately picks up the next queued job
            # (inline _start; the +1/-1 on _free cancels out).
            next_cost, next_done = self._pending.popleft()
            entry = _dnew(_deferred)
            entry.fn = self._complete_cb
            entry.arg = (next_cost, next_done)
            env._seq += 1
            _push(env._queue, (env._now + next_cost, _normal, env._seq, entry))
        else:
            self._free += 1

    def utilization(self, window: float, busy_at_window_start: float = 0.0) -> float:
        """Fraction of core-time busy over ``window`` ms."""
        if window <= 0:
            return 0.0
        return (self.busy_time - busy_at_window_start) / (self.cores * window)


class Store:
    """Unbounded FIFO message store (a mailbox between processes)."""

    def __init__(self, env: Environment, name: str = "store"):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    # put()/get() hand-inline Event construction and succeed(): stores back
    # every mailbox, so one message costs two of these calls.  Keep in sync
    # with kernel.Event / Environment.event.
    def put(
        self,
        item: Any,
        _pending=_PENDING,
        _push=heappush,
        _normal=PRIORITY_NORMAL,
    ) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        getters = self._getters
        while getters:
            getter = getters.popleft()
            if getter._value is _pending:  # skip cancelled/raced getters
                getter._value = item
                env = getter.env
                env._seq += 1
                _push(env._queue, (env._now, _normal, env._seq, getter))
                return
        self._items.append(item)

    def get(
        self,
        _new=Event.__new__,
        _event=Event,
        _pending=_PENDING,
        _push=heappush,
        _normal=PRIORITY_NORMAL,
    ) -> Event:
        """Return an event that triggers with the next item."""
        env = self.env
        event = _new(_event)
        event.env = env
        event._cb1 = None
        event._cbs = None
        event._ok = True
        items = self._items
        if items:
            event._value = items.popleft()
            env._seq += 1
            _push(env._queue, (env._now, _normal, env._seq, event))
        else:
            event._value = _pending
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


class Disk:
    """A disk with a fixed sequential bandwidth and a FIFO queue.

    Used for the NDB redo log / checkpoints, the Ceph MDS journal, and OSD
    object writes.  Bandwidth is in bytes per millisecond.
    """

    def __init__(self, env: Environment, bandwidth_bytes_per_ms: float, name: str = "disk"):
        if bandwidth_bytes_per_ms <= 0:
            raise ValueError("disk bandwidth must be positive")
        self.env = env
        self.name = name
        self.bandwidth = bandwidth_bytes_per_ms
        self.bytes_written = 0
        self.bytes_read = 0
        self.busy_time = 0.0
        # Time at which the last queued transfer completes.
        self._drain_at = 0.0

    def _transfer(self, nbytes: int) -> Event:
        duration = nbytes / self.bandwidth
        start = max(self.env.now, self._drain_at)
        self._drain_at = start + duration
        self.busy_time += duration
        done = self.env.event()
        delay = self._drain_at - self.env.now
        self.env.schedule_after(delay, _fire_if_pending, done)
        return done

    def write(self, nbytes: int) -> Event:
        """Queue a write; returns an event fired when it hits the platter."""
        self.bytes_written += nbytes
        return self._transfer(nbytes)

    def read(self, nbytes: int) -> Event:
        self.bytes_read += nbytes
        return self._transfer(nbytes)

    def utilization(self, window: float, busy_at_window_start: float = 0.0) -> float:
        if window <= 0:
            return 0.0
        return min(1.0, (self.busy_time - busy_at_window_start) / window)
