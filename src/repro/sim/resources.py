"""Simulation resources: CPU pools, FIFO stores and disks.

These are deliberately lightweight (callback-driven, no generator per job)
because the benchmark harness pushes hundreds of thousands of jobs through
them per run.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from .kernel import Environment, Event

__all__ = ["CorePool", "Store", "Disk"]


class CorePool:
    """A pool of identical CPU cores with a shared FIFO run queue.

    ``submit(cost)`` returns an event that triggers once a core has executed
    the job for ``cost`` milliseconds.  Busy time is accumulated for
    utilization reporting (see :mod:`repro.metrics.utilization`).
    """

    def __init__(self, env: Environment, cores: int, name: str = "cpu"):
        if cores < 1:
            raise ValueError(f"CorePool needs >=1 core, got {cores}")
        self.env = env
        self.cores = cores
        self.name = name
        self.busy_time = 0.0
        self.jobs_done = 0
        self._free = cores
        self._pending: Deque[tuple[float, Event]] = deque()

    def submit(self, cost: float) -> Event:
        """Enqueue a job costing ``cost`` ms of CPU; returns its done-event."""
        if cost < 0:
            raise ValueError(f"negative CPU cost {cost}")
        done = self.env.event()
        if self._free > 0:
            self._start(cost, done)
        else:
            self._pending.append((cost, done))
        return done

    @property
    def queue_length(self) -> int:
        return len(self._pending)

    @property
    def in_service(self) -> int:
        return self.cores - self._free

    def _start(self, cost: float, done: Event) -> None:
        self._free -= 1
        timer = self.env.timeout(cost)
        timer.callbacks.append(lambda _t, c=cost, d=done: self._complete(c, d))

    def _complete(self, cost: float, done: Event) -> None:
        self.busy_time += cost
        self.jobs_done += 1
        done.succeed()
        if self._pending:
            next_cost, next_done = self._pending.popleft()
            # The freed core immediately picks up the next queued job.
            self._free += 1
            self._start(next_cost, next_done)
        else:
            self._free += 1

    def utilization(self, window: float, busy_at_window_start: float = 0.0) -> float:
        """Fraction of core-time busy over ``window`` ms."""
        if window <= 0:
            return 0.0
        return (self.busy_time - busy_at_window_start) / (self.cores * window)


class Store:
    """Unbounded FIFO message store (a mailbox between processes)."""

    def __init__(self, env: Environment, name: str = "store"):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:  # skip cancelled/raced getters
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that triggers with the next item."""
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


class Disk:
    """A disk with a fixed sequential bandwidth and a FIFO queue.

    Used for the NDB redo log / checkpoints, the Ceph MDS journal, and OSD
    object writes.  Bandwidth is in bytes per millisecond.
    """

    def __init__(self, env: Environment, bandwidth_bytes_per_ms: float, name: str = "disk"):
        if bandwidth_bytes_per_ms <= 0:
            raise ValueError("disk bandwidth must be positive")
        self.env = env
        self.name = name
        self.bandwidth = bandwidth_bytes_per_ms
        self.bytes_written = 0
        self.bytes_read = 0
        self.busy_time = 0.0
        # Time at which the last queued transfer completes.
        self._drain_at = 0.0

    def _transfer(self, nbytes: int) -> Event:
        duration = nbytes / self.bandwidth
        start = max(self.env.now, self._drain_at)
        self._drain_at = start + duration
        self.busy_time += duration
        done = self.env.event()
        delay = self._drain_at - self.env.now
        timer = self.env.timeout(delay)
        timer.callbacks.append(lambda _t: done.succeed() if not done.triggered else None)
        return done

    def write(self, nbytes: int) -> Event:
        """Queue a write; returns an event fired when it hits the platter."""
        self.bytes_written += nbytes
        return self._transfer(nbytes)

    def read(self, nbytes: int) -> Event:
        self.bytes_read += nbytes
        return self._transfer(nbytes)

    def utilization(self, window: float, busy_at_window_start: float = 0.0) -> float:
        if window <= 0:
            return 0.0
        return min(1.0, (self.busy_time - busy_at_window_start) / window)
