"""Deterministic discrete-event simulation kernel.

The kernel is a small, dependency-free engine in the style of SimPy:
simulated *processes* are Python generators that ``yield`` events
(timeouts, other processes, store gets, ...) and are resumed when those
events trigger.  Determinism is guaranteed by ordering scheduled events by
``(time, priority, sequence)`` where ``sequence`` is a monotonically
increasing counter, so two runs with the same seed replay identically.

Time is a float in **milliseconds** throughout the repository; the paper's
latency tables are given in milliseconds, which makes traces easy to read.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "SimulationError",
]

PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. yielding a non-event)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* when it has been scheduled to fire (either with
    a success value or a failure exception) and *processed* once its
    callbacks have run.  Waiting on an already-processed event resumes the
    waiter immediately (on the next scheduling step).
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        # Set when a failure was handled by at least one waiter (or marked
        # defused); unhandled failures propagate out of ``Environment.run``.
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, priority=priority)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so it does not crash the run."""
        self._defused = True

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    @property
    def triggered(self) -> bool:  # a timeout is triggered at creation
        return True


class _ConditionBase(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("conditions cannot mix environments")
        self._pending = len(self.events)
        for event in self.events:
            if self.triggered:
                break
            if event.processed:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)
        if not self.triggered:
            self._check_vacuous()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event.value)
            return
        self._pending -= 1
        self._on_success(event)

    def _collect(self) -> dict[Event, Any]:
        return {e: e.value for e in self.events if e.processed and e._ok}

    def _on_success(self, event: Event) -> None:
        raise NotImplementedError

    def _check_vacuous(self) -> None:
        raise NotImplementedError


class AllOf(_ConditionBase):
    """Triggers once every given event has succeeded (fails fast)."""

    def _on_success(self, event: Event) -> None:
        if self._pending == 0:
            self.succeed(self._collect())

    def _check_vacuous(self) -> None:
        if not self.events:
            self.succeed({})


class AnyOf(_ConditionBase):
    """Triggers as soon as any given event succeeds (fails fast)."""

    def _on_success(self, event: Event) -> None:
        self.succeed(self._collect())

    def _check_vacuous(self) -> None:
        if not self.events:
            self.succeed({})


class Process(Event):
    """Wraps a generator; the process is itself an event other code can wait
    on, triggered with the generator's return value."""

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the process at the current time.
        bootstrap = Event(env)
        bootstrap.succeed()
        bootstrap.callbacks.append(self._resume)
        self._waiting_on = bootstrap

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        if self._waiting_on is None:
            raise SimulationError(f"cannot interrupt {self.name} during its own execution")
        poke = Event(self.env)
        poke._interrupt_cause = Interrupt(cause)  # type: ignore[attr-defined]
        poke.succeed(priority=PRIORITY_URGENT)
        poke.callbacks.append(self._resume)

    def _resume(self, trigger: Event) -> None:
        interrupt = getattr(trigger, "_interrupt_cause", None)
        if interrupt is not None and self.triggered:
            return  # process finished before the interrupt was delivered
        # Detach from whatever we were waiting on (relevant for interrupts).
        waited = self._waiting_on
        if interrupt is not None and waited is not None and not waited.processed:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self.env._active_process = self
        try:
            if interrupt is not None:
                target = self._generator.throw(interrupt)
            elif trigger._ok:
                target = self._generator.send(trigger.value)
            else:
                trigger.defuse()
                target = self._generator.throw(trigger.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            self.env._active_process = None
        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            self._generator.throw(error)
            raise error
        self._waiting_on = target
        if target.processed:
            # Already-processed events resume the waiter via a fresh wakeup.
            wakeup = Event(self.env)
            if target._ok:
                wakeup.succeed(target.value)
            else:
                target.defuse()
                wakeup.fail(target.value)
            wakeup.callbacks.append(self._resume)
            self._waiting_on = wakeup
        else:
            target.callbacks.append(self._resume)


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = initial_time
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused and not callbacks:
            raise event.value

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the simulation time at which the run stopped.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
        while self._queue:
            if until is not None and self.peek() > until:
                self._now = until
                return self._now
            self.step()
        if until is not None:
            self._now = until
        return self._now

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Convenience: spawn ``generator`` and run until it finishes.

        Returns the process's return value.  Raises if the process failed or
        did not complete before ``until``.
        """
        proc = self.process(generator)
        while not proc.triggered:
            if not self._queue:
                raise SimulationError("process deadlocked: event queue drained")
            if until is not None and self.peek() > until:
                raise SimulationError(f"process did not finish by t={until}")
            self.step()
        if not proc._ok:
            proc.defuse()
            raise proc.value
        return proc.value
