"""Deterministic discrete-event simulation kernel.

The kernel is a small, dependency-free engine in the style of SimPy:
simulated *processes* are Python generators that ``yield`` events
(timeouts, other processes, store gets, ...) and are resumed when those
events trigger.  Determinism is guaranteed by ordering scheduled events by
``(time, priority, sequence)`` where ``sequence`` is a monotonically
increasing counter, so two runs with the same seed replay identically.

Time is a float in **milliseconds** throughout the repository; the paper's
latency tables are given in milliseconds, which makes traces easy to read.

Hot-path design (see DESIGN.md §4 "Kernel performance"):

* Every kernel object carries ``__slots__`` — a figure run allocates
  hundreds of thousands of events, and dict-backed instances double both
  allocation cost and memory traffic.
* Events hold their first waiter in an inline slot (``_cb1``) instead of a
  per-event callback list: almost every event has exactly one waiter, so
  the common case allocates no list at all.  Extra waiters overflow into
  ``_cbs`` (allocated lazily).
* A process that yields an *already processed* event is re-armed with a
  lightweight :class:`_Wakeup` heap entry instead of a freshly allocated
  ``Event``; staleness (interrupt delivered in between) is detected with a
  per-process wake generation counter.
* :meth:`Environment.schedule_at` / :meth:`Environment.schedule_after`
  schedule a bare ``fn(arg)`` callback through a :class:`_Deferred` heap
  entry — no Event, no value, no processed state.  The network and the
  CPU/disk resources use it for message delivery and job completion, so an
  RPC round costs O(1) kernel events instead of O(messages).
* ``Environment.run`` inlines the dispatch loop with ``heappop`` and all
  per-step attribute lookups hoisted into locals.

All fast paths consume exactly one sequence number per scheduling decision
— the same points at which the pre-refactor kernel consumed them — so the
(time, priority, sequence) trace of a run is bit-for-bit identical to the
straightforward implementation (``tests/sim/test_determinism.py`` pins
this against a committed golden trace hash).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "SimulationError",
]

PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()
# Sentinel stored in an event's inline callback slot once its callbacks have
# run: distinguishes "processed" from "pending with no waiters yet" (None).
_PROCESSED = object()
# Dispatch markers: _Deferred and _Wakeup expose them as a class-level
# ``_cb1`` so the run loop classifies any heap entry with the single slot
# load it needs anyway, instead of an extra ``__class__`` check.
_DEFERRED_MARK = object()
_WAKEUP_MARK = object()
_HORIZON_MARK = object()


class _Horizon:
    """Sentinel heap entry marking a run's ``until`` horizon.

    Pushed once per ``run(until=...)`` call so the dispatch loop needs no
    per-iteration peek at the queue head.  Sorts after every real entry at
    the same time (priority 2 > PRIORITY_NORMAL, infinite sequence), and
    consumes no sequence number.  A stale sentinel from an aborted earlier
    run is recognised by identity and skipped.
    """

    __slots__ = ()
    _cb1 = _HORIZON_MARK


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. yielding a non-event)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Deferred:
    """Lightweight heap entry: call ``fn(arg)`` when its time arrives.

    Much cheaper than a full :class:`Event` for fire-and-forget callbacks
    (message delivery, CPU job completion, lock expiry): no value, no
    waiter slots, no processed state, nothing to defuse.  ``fn``/``arg``
    are deliberately mutable so the network layer can coalesce several
    same-instant deliveries into one heap entry (see
    ``Network._schedule_delivery``).
    """

    __slots__ = ("fn", "arg")
    _cb1 = _DEFERRED_MARK  # run-loop dispatch marker (class attribute)

    def __init__(self, fn: Callable[[Any], None], arg: Any):
        self.fn = fn
        self.arg = arg


class _Wakeup:
    """Heap entry that re-delivers an already-processed event to a process.

    Replaces the fresh ``Event`` the naive implementation allocates when a
    process waits on something that already happened.  ``gen`` snapshots
    the process's wake generation; if the process was resumed some other
    way in the meantime (an interrupt), the generation moved on and the
    stale wakeup is dropped.  ``source is None`` marks the bootstrap resume
    of a newly spawned process.
    """

    __slots__ = ("process", "source", "gen")
    _cb1 = _WAKEUP_MARK  # run-loop dispatch marker (class attribute)

    def __init__(self, process: "Process", source: Optional["Event"], gen: int):
        self.process = process
        self.source = source
        self.gen = gen


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* when it has been scheduled to fire (either with
    a success value or a failure exception) and *processed* once its
    callbacks have run.  Waiting on an already-processed event resumes the
    waiter immediately (on the next scheduling step).

    Waiters register with :meth:`add_callback`; callbacks receive the event
    itself.  The first callback lives in an inline slot, extras overflow
    into a lazily allocated list.
    """

    __slots__ = ("env", "_cb1", "_cbs", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self._cb1: Any = None
        self._cbs: Optional[List[Callable[["Event"], None]]] = None
        self._value: Any = _PENDING
        self._ok: bool = True
        # Set when a failure was handled by at least one waiter (or marked
        # defused); unhandled failures propagate out of ``Environment.run``.
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self._cb1 is _PROCESSED

    @property
    def ok(self) -> bool:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- waiters ----------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed."""
        cb1 = self._cb1
        if cb1 is None:
            self._cb1 = callback
        elif cb1 is _PROCESSED:
            raise SimulationError(f"cannot add a callback to processed {self!r}")
        else:
            cbs = self._cbs
            if cbs is None:
                self._cbs = [callback]
            else:
                cbs.append(callback)

    def _remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Best-effort removal (used when an interrupt preempts a wait)."""
        if self._cb1 == callback:
            cbs = self._cbs
            self._cb1 = cbs.pop(0) if cbs else None
        else:
            cbs = self._cbs
            if cbs is not None:
                try:
                    cbs.remove(callback)
                except ValueError:
                    pass

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._seq += 1
        heappush(env._queue, (env._now, priority, env._seq, self))
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        try:
            self._defused
        except AttributeError:
            # Hot-path constructors (timeout/Store.get/CorePool.submit) leave
            # the slot unset: it is only ever read after a fail(), so it is
            # initialised here instead of on every construction.
            self._defused = False
        env = self.env
        env._seq += 1
        heappush(env._queue, (env._now, priority, env._seq, self))
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so it does not crash the run."""
        self._defused = True

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    # A timeout is triggered at creation (its value is set immediately).
    triggered = True  # type: ignore[assignment]

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        self.env = env
        self._cb1 = None
        self._cbs = None
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._seq += 1
        heappush(env._queue, (env._now + delay, PRIORITY_NORMAL, env._seq, self))


class _ConditionBase(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: Tuple[Event, ...] = tuple(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("conditions cannot mix environments")
        self._pending_count = len(self.events)
        observe = self._observe
        for event in self.events:
            if self._value is not _PENDING:
                break
            if event._cb1 is _PROCESSED:
                observe(event)
            else:
                event.add_callback(observe)
        if self._value is _PENDING:
            self._check_vacuous()

    def _observe(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._pending_count -= 1
        self._on_success(event)

    def _collect(self) -> dict:
        # Processed events count, and so does an AnyOf sibling that fired in
        # the same step but whose own callbacks have not run yet: a plain
        # Event is always scheduled at the instant it triggers, so
        # "triggered" means "due now".  A pending Timeout is triggered at
        # creation but due in the future — it stays out until it fires.
        processed = _PROCESSED
        return {
            e: e._value
            for e in self.events
            if e._ok
            and (
                e._cb1 is processed
                or (e._value is not _PENDING and not isinstance(e, Timeout))
            )
        }

    def _on_success(self, event: Event) -> None:
        raise NotImplementedError

    def _check_vacuous(self) -> None:
        raise NotImplementedError


class AllOf(_ConditionBase):
    """Triggers once every given event has succeeded (fails fast)."""

    __slots__ = ()

    def _on_success(self, event: Event) -> None:
        if self._pending_count == 0:
            self.succeed(self._collect())

    def _check_vacuous(self) -> None:
        if not self.events:
            self.succeed({})


class AnyOf(_ConditionBase):
    """Triggers as soon as any given event succeeds (fails fast)."""

    __slots__ = ()

    def _on_success(self, event: Event) -> None:
        self.succeed(self._collect())

    def _check_vacuous(self) -> None:
        if not self.events:
            self.succeed({})


# Sentinel for a spawned-but-not-yet-started process's wait slot: lets
# ``interrupt`` distinguish "hasn't run yet" (interruptible) from "currently
# executing" (not interruptible).
_BOOTSTRAPPING = object()


class Process(Event):
    """Wraps a generator; the process is itself an event other code can wait
    on, triggered with the generator's return value."""

    __slots__ = ("_generator", "_send", "name", "_waiting_on", "_wake_gen", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(f"process requires a generator, got {generator!r}")
        # Inline Event.__init__: figure runs spawn a process per message.
        self.env = env
        self._cb1 = None
        self._cbs = None
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self._generator = generator
        # send() is called once per resume; bind it once per process.
        self._send = generator.send
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Any = _BOOTSTRAPPING
        self._wake_gen = 0
        # One bound method for the lifetime of the process: registering a
        # wait costs a slot store, not a bound-method allocation.
        self._resume_cb = self._resume
        # Bootstrap: resume the process at the current time (one sequence
        # number, exactly like the naive bootstrap-Event implementation).
        env._seq += 1
        heappush(env._queue, (env._now, PRIORITY_NORMAL, env._seq, _Wakeup(self, None, 0)))

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not _PENDING:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        if self._waiting_on is None:
            raise SimulationError(f"cannot interrupt {self.name} during its own execution")
        interrupt = Interrupt(cause)
        poke = Event(self.env)
        poke.succeed(priority=PRIORITY_URGENT)
        poke._cb1 = lambda _trigger: self._deliver_interrupt(interrupt)

    def _deliver_interrupt(self, interrupt: Interrupt) -> None:
        if self._value is not _PENDING:
            return  # process finished before the interrupt was delivered
        waited = self._waiting_on
        if isinstance(waited, Event) and waited._cb1 is not _PROCESSED:
            waited._remove_callback(self._resume_cb)
        self._waiting_on = None
        self._wake_gen += 1  # invalidate any in-flight _Wakeup
        try:
            target = self._generator.throw(interrupt)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        self._wait_on(target)

    def _resume(self, trigger: Optional[Event]) -> None:
        """Resume the generator with ``trigger``'s outcome (None = bootstrap).

        This is the hottest function in a figure run — wait registration is
        inlined rather than delegated to :meth:`_wait_on`, and the yielded
        target is classified by reading its ``_cb1`` slot directly (only
        kernel events have one; anything else is the non-event error path).
        """
        self._waiting_on = None
        try:
            try:
                ok = trigger._ok
            except AttributeError:  # trigger is None: bootstrap resume
                target = self._send(None)
            else:
                if ok:
                    target = self._send(trigger._value)
                else:
                    trigger._defused = True
                    target = self._generator.throw(trigger._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        try:
            cb1 = target._cb1
        except AttributeError:
            self._fail_non_event(target)
            return
        self._waiting_on = target
        if cb1 is None:
            target._cb1 = self._resume_cb
        elif cb1 is _PROCESSED:
            # Fast path: re-deliver the processed event through a light
            # _Wakeup instead of allocating a fresh Event (one sequence
            # number either way, so the event trace is unchanged).
            env = self.env
            wakeup = _Wakeup.__new__(_Wakeup)
            wakeup.process = self
            wakeup.source = target
            wakeup.gen = self._wake_gen
            env._seq += 1
            heappush(env._queue, (env._now, PRIORITY_NORMAL, env._seq, wakeup))
        elif cb1 is _DEFERRED_MARK or cb1 is _WAKEUP_MARK:
            # A schedule_at/schedule_after handle is not a waitable event.
            self._waiting_on = None
            self._fail_non_event(target)
        else:
            cbs = target._cbs
            if cbs is None:
                target._cbs = [self._resume_cb]
            else:
                cbs.append(self._resume_cb)

    def _fail_non_event(self, target: Any) -> None:
        # Throw once so the generator can clean up, then fail the process.
        # (The naive version threw *and* re-raised, leaving the generator
        # mid-unwind with a corrupted frame.)
        error = SimulationError(f"process {self.name!r} yielded non-event {target!r}")
        try:
            self._generator.throw(error)
        except StopIteration as stop:
            self.succeed(stop.value)
        except BaseException as exc:
            self.fail(exc)
        else:
            # The generator swallowed the error and yielded again: close it
            # and fail the process with the original error.
            self._generator.close()
            self.fail(error)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._fail_non_event(target)
            return
        self._waiting_on = target
        cb1 = target._cb1
        if cb1 is None:
            target._cb1 = self._resume_cb
        elif cb1 is _PROCESSED:
            env = self.env
            env._seq += 1
            heappush(
                env._queue,
                (env._now, PRIORITY_NORMAL, env._seq, _Wakeup(self, target, self._wake_gen)),
            )
        else:
            cbs = target._cbs
            if cbs is None:
                target._cbs = [self._resume_cb]
            else:
                cbs.append(self._resume_cb)


class Environment:
    """The simulation clock and event queue.

    ``trace``: set to a list to record ``(time, priority, seq)`` for every
    dispatched heap entry (events, deferred callbacks and process wakeups
    alike).  Tracing routes ``run`` through the un-inlined ``step`` path
    and disables the network's same-instant delivery coalescing, so traces
    are directly comparable across kernel generations.
    """

    __slots__ = ("_now", "_queue", "_seq", "trace", "obs")

    def __init__(self, initial_time: float = 0.0):
        self._now = initial_time
        self._queue: List[tuple] = []
        self._seq = 0
        self.trace: Optional[list] = None
        # Observability context (repro.obs.ObsContext) or None.  Components
        # guard every instrumentation site with ``env.obs is not None``;
        # the kernel itself never reads it, so the dispatch loop is
        # untouched and untraced runs pay nothing.
        self.obs = None

    @property
    def now(self) -> float:
        return self._now

    # -- factories --------------------------------------------------------
    # event() and timeout() build their instances with ``__new__`` + direct
    # slot stores: a figure run creates one of these per message / CPU job,
    # and skipping ``type.__call__`` + ``__init__`` measurably shortens the
    # hot path.  Direct construction (``Timeout(env, d)``) stays supported.
    def event(self) -> Event:
        event = Event.__new__(Event)
        event.env = self
        event._cb1 = None
        event._cbs = None
        event._value = _PENDING
        event._ok = True
        event._defused = False
        return event

    def timeout(
        self,
        delay: float,
        value: Any = None,
        # Default-argument binding: these resolve as fast locals instead of
        # module-global lookups in the single hottest allocation site.
        _new=Timeout.__new__,
        _cls=Timeout,
        _push=heappush,
        _normal=PRIORITY_NORMAL,
    ) -> Timeout:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        timeout = _new(_cls)
        timeout.env = self
        timeout._cb1 = None
        timeout._cbs = None
        timeout._value = value
        timeout._ok = True
        timeout.delay = delay
        self._seq += 1
        _push(self._queue, (self._now + delay, _normal, self._seq, timeout))
        return timeout

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL) -> None:
        self._seq += 1
        heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def schedule_at(self, time: float, fn: Callable[[Any], None], arg: Any = None) -> _Deferred:
        """Schedule bare ``fn(arg)`` at absolute ``time`` — no Event allocated.

        Returns the heap entry, whose ``fn``/``arg`` the caller may mutate
        until it fires (the network uses this to batch same-instant
        deliveries).  Costs one sequence number, like any scheduling.
        """
        if time < self._now:
            raise SimulationError(f"schedule_at({time}) is in the past (now={self._now})")
        entry = _Deferred.__new__(_Deferred)
        entry.fn = fn
        entry.arg = arg
        self._seq += 1
        heappush(self._queue, (time, PRIORITY_NORMAL, self._seq, entry))
        return entry

    def schedule_after(self, delay: float, fn: Callable[[Any], None], arg: Any = None) -> _Deferred:
        """Schedule bare ``fn(arg)`` after ``delay``; see :meth:`schedule_at`."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        entry = _Deferred.__new__(_Deferred)
        entry.fn = fn
        entry.arg = arg
        self._seq += 1
        heappush(self._queue, (self._now + delay, PRIORITY_NORMAL, self._seq, entry))
        return entry

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next heap entry."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        entry = heappop(self._queue)
        self._now = entry[0]
        if self.trace is not None:
            self.trace.append((entry[0], entry[1], entry[2]))
        item = entry[3]
        cb1 = item._cb1
        if cb1 is _DEFERRED_MARK:
            item.fn(item.arg)
            return
        if cb1 is _WAKEUP_MARK:
            process = item.process
            if process._wake_gen == item.gen:
                process._resume(item.source)
            return
        cbs = item._cbs
        item._cb1 = _PROCESSED
        item._cbs = None
        if cb1 is not None:
            cb1(item)
            if cbs is not None:
                for callback in cbs:
                    callback(item)
        elif not item._ok and not item._defused:
            raise item._value

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the simulation time at which the run stopped.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
        if self.trace is not None:
            # Tracing path: dispatch through step() so every entry is
            # recorded; inlined loop below is the production path.
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    break
                self.step()
            if until is not None:
                self._now = until
            return self._now
        queue = self._queue
        pop = heappop
        deferred_mark = _DEFERRED_MARK
        wakeup_mark = _WAKEUP_MARK
        horizon_mark = _HORIZON_MARK
        processed = _PROCESSED
        sentinel = None
        if until is not None:
            # One sentinel at the horizon beats peeking at the queue head
            # every iteration.  Priority 2 / infinite seq: sorts after every
            # real entry at the same instant, consumes no sequence number.
            sentinel = _Horizon.__new__(_Horizon)
            heappush(queue, (until, 2, float("inf"), sentinel))
        try:
            while True:
                when, _priority, _seq, item = pop(queue)
                self._now = when
                cb1 = item._cb1
                if cb1 is deferred_mark:
                    item.fn(item.arg)
                    continue
                if cb1 is wakeup_mark:
                    process = item.process
                    if process._wake_gen == item.gen:
                        process._resume(item.source)
                    continue
                if cb1 is horizon_mark:
                    if item is sentinel:
                        sentinel = None
                        break
                    continue  # stale sentinel from an aborted earlier run
                item._cb1 = processed
                cbs = item._cbs
                if cb1 is not None:
                    if cbs is None:
                        cb1(item)
                    else:
                        item._cbs = None
                        cb1(item)
                        for callback in cbs:
                            callback(item)
                elif not item._ok and not item._defused:
                    raise item._value
        except IndexError:
            # Queue drained (pop on empty): a run with no horizon ends here.
            if queue:
                raise  # a callback's own IndexError, not ours
        finally:
            if sentinel is not None and queue:
                # Drained (or raised) before the horizon: drop the sentinel
                # so it cannot cut a later run short.
                try:
                    queue.remove((until, 2, float("inf"), sentinel))
                except ValueError:
                    pass
        if until is not None:
            self._now = until
        return self._now

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Convenience: spawn ``generator`` and run until it finishes.

        Returns the process's return value.  Raises if the process failed or
        did not complete before ``until``.
        """
        proc = self.process(generator)
        queue = self._queue
        while proc._value is _PENDING:
            if not queue:
                raise SimulationError("process deadlocked: event queue drained")
            if until is not None and queue[0][0] > until:
                raise SimulationError(f"process did not finish by t={until}")
            self.step()
        if not proc._ok:
            proc._defused = True
            raise proc._value
        return proc._value
