"""Seeded random-number streams.

Every stochastic component draws from its own named stream derived from the
experiment seed, so adding a component never perturbs the draws of another
(a classic reproducibility pitfall in simulation studies).
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry"]


class RngRegistry:
    """Hands out independent :class:`random.Random` streams by name."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng
