"""Seeded random-number streams.

Every stochastic component draws from its own named stream derived from the
experiment seed, so adding a component never perturbs the draws of another
(a classic reproducibility pitfall in simulation studies).

Shard workers (the scale engine's partitioned DES instances) derive their
streams from ``(seed, shard_id, name)`` instead of ``(seed, name)``: two
shards asking for the same stream name must never receive the same
underlying sequence, or the "independent request streams" the sharded
engine merges would be copies of each other.  The unsharded derivation is
byte-for-byte what it always was, so golden schedules are unaffected.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

__all__ = ["RngRegistry"]


class RngRegistry:
    """Hands out independent :class:`random.Random` streams by name."""

    def __init__(self, seed: int = 0, shard_id: Optional[int] = None):
        self.seed = seed
        self.shard_id = shard_id
        self._streams: dict[str, random.Random] = {}

    def for_shard(self, shard_id: int) -> "RngRegistry":
        """A registry whose streams derive from ``(seed, shard_id, name)``.

        The derivation key uses ``/`` between seed and shard id — the
        unsharded key is ``{seed}:{name}`` and ``seed`` is an integer, so a
        sharded key can never collide with an unsharded one.
        """
        return RngRegistry(self.seed, shard_id=shard_id)

    def _key(self, name: str) -> str:
        if self.shard_id is None:
            return f"{self.seed}:{name}"
        return f"{self.seed}/{self.shard_id}:{name}"

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(self._key(name).encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng
