"""Ceph object storage daemons (OSDs).

OSDs store the file data *and* the metadata: the MDS journal and metadata
objects are RADOS objects replicated ``osd_replication`` ways.  For the
metadata benchmarks the dominant OSD load is the MDS journal stream
(Fig. 12d), which is what this model reproduces.
"""

from __future__ import annotations

from ..errors import FsError
from ..net.network import Message, Network
from ..sim import Environment
from ..sim.resources import CorePool, Disk
from ..types import AzId, NodeAddress

__all__ = ["Osd"]


class Osd:
    """One OSD process: a disk plus a small CPU for request handling."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        addr: NodeAddress,
        az: AzId,
        disk_bandwidth_bytes_per_ms: float,
        cpu_cost_ms: float,
    ):
        self.env = env
        self.network = network
        self.addr = addr
        self.az = az
        self.cpu_cost_ms = cpu_cost_ms
        self.mailbox = network.register(addr)
        self.cpu = CorePool(env, 4, name=f"{addr}:cpu")
        self.disk = Disk(env, disk_bandwidth_bytes_per_ms, name=f"{addr}:disk")
        self.objects: dict[str, int] = {}
        self.running = False
        self._dispatch_proc = None

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        if self._dispatch_proc is None or not self._dispatch_proc.is_alive:
            self._dispatch_proc = self.env.process(
                self._dispatch(), name=f"{self.addr}:osd"
            )

    def shutdown(self) -> None:
        self.running = False
        self.network.set_down(self.addr)

    def restart(self) -> None:
        """Rejoin after a crash; stored objects survive on disk."""
        if self.running:
            return
        self.network.set_up(self.addr)
        self.start()

    def _dispatch(self):
        while True:
            msg = yield self.mailbox.get()
            if not self.running:
                continue
            self.env.process(self._handle(msg), name=f"{self.addr}:{msg.kind}")

    def _handle(self, msg: Message):
        obs = self.env.obs
        if obs is None:
            yield from self._handle_body(msg)
            return
        span = obs.tracer.start(
            f"osd.{msg.kind}", parent=msg.extra.get("span_id"),
            host=str(self.addr), az=self.az,
        )
        try:
            yield from self._handle_body(msg)
        finally:
            obs.tracer.finish(span)

    def _handle_body(self, msg: Message):
        yield self.cpu.submit(self.cpu_cost_ms)
        if not self.running:
            return
        if msg.kind == "osd_write":
            name, nbytes = msg.payload
            yield self.disk.write(nbytes)
            if self.running:
                self.objects[name] = self.objects.get(name, 0) + nbytes
                self.network.reply(msg, True, size=64)
        elif msg.kind == "osd_read":
            name = msg.payload
            nbytes = self.objects.get(name)
            if nbytes is None:
                self.network.reply(msg, FsError(f"no object {name}"), ok=False)
                return
            yield self.disk.read(nbytes)
            if self.running:
                self.network.reply(msg, nbytes, size=max(64, nbytes))
        else:
            raise FsError(f"{self.addr}: unknown OSD message {msg.kind!r}")
