"""The CephFS metadata server (MDS).

The model captures what the paper's evaluation exercises:

* **single-threadedness** — all request handling runs behind one core
  (the MDS global lock, Section VI), capping each rank at a few thousand
  requests per second;
* **journaling** — every mutation appends to the MDS journal, which is
  periodically flushed to replicated RADOS objects on the OSDs, consuming
  MDS CPU and OSD disk (Figs. 5, 12d);
* **capabilities** — read results grant the client a capability; the MDS
  tracks holders and must notify them when an inode changes, which is the
  cost of the kernel cache (Section V-A-b3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import (
    DirectoryNotEmptyError,
    FileAlreadyExistsError,
    FileNotFoundFsError,
    FsError,
    HostUnreachableError,
    NotDirectoryError,
)
from ..net.network import Message, Network
from ..sim import Environment
from ..sim.resources import CorePool
from ..types import AzId, NodeAddress, OpType
from .config import CephConfig

__all__ = ["Mds", "MdsInode"]


@dataclass(frozen=True)
class MdsInode:
    """Metadata snapshot returned to clients (and cached by them)."""

    id: int
    path: str
    is_dir: bool
    size: int = 0
    mtime_ms: float = 0.0
    version: int = 1

    def with_(self, **changes) -> "MdsInode":
        return replace(self, **changes)


@dataclass
class _Shard:
    """The namespace fragment this MDS is authoritative for."""

    inodes: dict[str, MdsInode] = field(default_factory=dict)
    children: dict[str, set] = field(default_factory=dict)


class Mds:
    """One MDS rank."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        cluster,
        addr: NodeAddress,
        az: AzId,
        rank: int,
    ):
        self.env = env
        self.network = network
        self.cluster = cluster
        self.config: CephConfig = cluster.config
        self.addr = addr
        self.az = az
        self.rank = rank
        self.mailbox = network.register(addr)
        # The MDS global lock: one core for everything.
        self.cpu = CorePool(env, 1, name=f"{addr}:mds")
        self.shard = _Shard()
        # inode path -> set of client addresses holding a capability
        self.capabilities: dict[str, set] = {}
        self.journal_pending_bytes = 0
        self.journal_flushes = 0
        self.ops_served = 0
        self.cache_grants = 0
        self.running = False
        self._ids = iter(range(10_000_000 * (rank + 1), 10_000_000 * (rank + 2)))
        self._dispatch_proc = None
        self._journal_proc = None

    # ------------------------------------------------------------------ life
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        if self._dispatch_proc is None or not self._dispatch_proc.is_alive:
            self._dispatch_proc = self.env.process(
                self._dispatch(), name=f"{self.addr}:mds"
            )
        if self._journal_proc is None or not self._journal_proc.is_alive:
            self._journal_proc = self.env.process(
                self._journal_loop(), name=f"{self.addr}:journal"
            )

    def shutdown(self) -> None:
        self.running = False
        self.network.set_down(self.addr)

    def restart(self) -> None:
        """Rejoin as an empty standby after a crash.

        The in-memory shard died with the process; any subtrees this rank was
        authoritative for were failed over (journal replay onto a standby) by
        the cluster's failover monitor, so the restarted daemon comes back
        with a clean cache rather than resurrecting stale inodes.
        """
        if self.running:
            return
        self.shard = _Shard()
        self.capabilities = {}
        self.journal_pending_bytes = 0
        self.network.set_up(self.addr)
        self.start()

    # -------------------------------------------------------------- namespace
    def load(self, path: str, is_dir: bool, size: int = 0) -> None:
        """Preload one inode (namespace installation, no protocol)."""
        inode = MdsInode(
            id=next(self._ids), path=path, is_dir=is_dir, size=size, mtime_ms=0.0
        )
        self.shard.inodes[path] = inode
        parent = path.rsplit("/", 1)[0] or "/"
        if parent != path:
            self.shard.children.setdefault(parent, set()).add(path.rsplit("/", 1)[1])

    # ---------------------------------------------------------------- serving
    def _dispatch(self):
        while True:
            msg = yield self.mailbox.get()
            if not self.running:
                continue
            if msg.kind == "mds_op":
                self.env.process(self._mds_op(msg), name=f"{self.addr}:op")
            else:
                raise FsError(f"{self.addr}: unknown MDS message {msg.kind!r}")

    def _mds_op(self, msg: Message):
        op, kwargs, client = msg.payload
        obs = self.env.obs
        if obs is None:
            yield from self._mds_op_body(msg, op, kwargs, client)
            return
        span = obs.tracer.start(
            "mds.handle", parent=msg.extra.get("span_id"),
            host=str(self.addr), az=self.az, op=op.value, rank=self.rank,
        )
        try:
            yield from self._mds_op_body(msg, op, kwargs, client)
        finally:
            obs.tracer.finish(span)
            ts = obs.timeseries
            if ts is not None:
                now = self.env.now
                ts.component_sample(
                    "mds.handle", str(self.addr), self.az,
                    now - span.start_ms, True, now,
                )

    def _mds_op_body(self, msg: Message, op: OpType, kwargs, client):
        # Everything contends on the single MDS thread; journaled namespace
        # mutations are substantially heavier than lookups.
        cost = self.config.mds_mutation_cost_ms if op.mutates else self.config.mds_op_cost_ms
        yield self.cpu.submit(cost)
        if not self.running:
            return
        try:
            result, mutated_path = self._execute(op, kwargs)
        except FsError as exc:
            self.network.reply(msg, exc, ok=False)
            return
        self.ops_served += 1
        if mutated_path is not None:
            self.journal_pending_bytes += self.config.journal_entry_bytes
            yield from self._revoke_capabilities(mutated_path, except_client=client)
            parent = mutated_path.rsplit("/", 1)[0] or "/"
            yield from self._revoke_capabilities(parent, except_client=client)
        if op in (OpType.READ_FILE, OpType.STAT, OpType.EXISTS, OpType.LIST_DIR) and self.config.kclient_cache:
            # Grant a capability so the kernel client may cache the inode.
            yield self.cpu.submit(self.config.mds_cap_track_cost_ms)
            self.capabilities.setdefault(kwargs["path"], set()).add(client)
            self.cache_grants += 1
        self.network.reply(msg, result, size=self.config.client_response_bytes)

    def _revoke_capabilities(self, path: str, except_client) -> None:
        holders = self.capabilities.pop(path, set())
        holders.discard(except_client)
        if not holders:
            return
        yield self.cpu.submit(self.config.mds_cap_revoke_cost_ms * len(holders))
        # Sorted: revoke-message order must not depend on set iteration order.
        for holder in sorted(holders):
            self.network.send(
                Message(src=self.addr, dst=holder, kind="cap_revoke", payload=path, size=96)
            )

    # ------------------------------------------------------------- operations
    def _execute(self, op: OpType, kwargs) -> tuple[object, Optional[str]]:
        """Run one op against the shard; returns (result, mutated_path)."""
        path = kwargs.get("path") or kwargs.get("src")
        if op is OpType.MKDIR:
            return self._create(path, is_dir=True), path
        if op is OpType.CREATE_FILE:
            return self._create(path, is_dir=False, size=len(kwargs.get("data", b""))), path
        if op in (OpType.READ_FILE, OpType.STAT):
            inode = self.shard.inodes.get(path)
            if inode is None:
                raise FileNotFoundFsError(f"{path} does not exist")
            if op is OpType.READ_FILE and inode.is_dir:
                raise FsError(f"{path} is a directory")
            return inode, None
        if op is OpType.EXISTS:
            return path in self.shard.inodes, None
        if op is OpType.LIST_DIR:
            inode = self.shard.inodes.get(path)
            if path != "/" and inode is None:
                raise FileNotFoundFsError(f"{path} does not exist")
            if inode is not None and not inode.is_dir:
                raise NotDirectoryError(f"{path} is not a directory")
            return sorted(self.shard.children.get(path, set())), None
        if op is OpType.ADD_BLOCK or op is OpType.COMPLETE_FILE:
            raise FsError(f"MDS does not support {op}")
        if op is OpType.DELETE_FILE:
            return self._delete(path, kwargs.get("recursive", False)), path
        if op is OpType.RENAME:
            return self._rename(kwargs["src"], kwargs["dst"]), kwargs["src"]
        if op is OpType.CHMOD:
            inode = self.shard.inodes.get(path)
            if inode is None:
                raise FileNotFoundFsError(f"{path} does not exist")
            self.shard.inodes[path] = inode.with_(version=inode.version + 1)
            return True, path
        raise FsError(f"MDS does not support {op}")

    def _parent_of(self, path: str) -> str:
        return path.rsplit("/", 1)[0] or "/"

    def _create(self, path: str, is_dir: bool, size: int = 0) -> MdsInode:
        if path in self.shard.inodes:
            raise FileAlreadyExistsError(f"{path} already exists")
        parent = self._parent_of(path)
        if parent != "/":
            # The parent may live on another rank's shard (lookup modelling
            # shortcut for Ceph's path traversal through the authority).
            owner_rank = self.cluster.partitioner.rank_of(parent)
            owner = self.cluster.mds_list[owner_rank % len(self.cluster.mds_list)]
            parent_inode = owner.shard.inodes.get(parent) or self.shard.inodes.get(parent)
            if parent_inode is None:
                raise FileNotFoundFsError(f"{parent} does not exist")
            if not parent_inode.is_dir:
                raise NotDirectoryError(f"{parent} is not a directory")
        inode = MdsInode(
            id=next(self._ids),
            path=path,
            is_dir=is_dir,
            size=size,
            mtime_ms=self.env.now,
        )
        self.shard.inodes[path] = inode
        self.shard.children.setdefault(parent, set()).add(path.rsplit("/", 1)[1])
        if is_dir:
            # Subtree export: the new directory becomes the root of its own
            # subtree, so its inode is mirrored to the authoritative rank
            # (modelling shortcut for Ceph's subtree migration).
            self.cluster.mirror_dir(inode)
        return inode

    def _delete(self, path: str, recursive: bool) -> int:
        inode = self.shard.inodes.get(path)
        if inode is None:
            raise FileNotFoundFsError(f"{path} does not exist")
        removed = 0
        if inode.is_dir:
            owner = self.cluster.mds_for_dir(path)
            kids = owner.shard.children.get(path, set())
            if kids and not recursive:
                raise DirectoryNotEmptyError(f"{path} is not empty")
            for name in list(kids):
                removed += owner._delete(f"{path}/{name}", recursive)
        if inode.is_dir:
            self.cluster.unmirror_dir(path)
        del self.shard.inodes[path]
        self.shard.children.pop(path, None)
        parent = self._parent_of(path)
        self.shard.children.get(parent, set()).discard(path.rsplit("/", 1)[1])
        return removed + 1

    def _rename(self, src: str, dst: str) -> MdsInode:
        if self.cluster.partitioner.rank_of(dst) != self.rank:
            raise FsError("cross-MDS rename not supported by this model")
        inode = self.shard.inodes.get(src)
        if inode is None:
            raise FileNotFoundFsError(f"{src} does not exist")
        if dst in self.shard.inodes:
            raise FileAlreadyExistsError(f"{dst} already exists")
        if inode.is_dir and self.shard.children.get(src):
            raise FsError("directory rename with children not modelled for CephFS")
        del self.shard.inodes[src]
        self.shard.children.get(self._parent_of(src), set()).discard(src.rsplit("/", 1)[1])
        moved = inode.with_(path=dst, version=inode.version + 1, mtime_ms=self.env.now)
        self.shard.inodes[dst] = moved
        self.shard.children.setdefault(self._parent_of(dst), set()).add(dst.rsplit("/", 1)[1])
        return moved

    # ---------------------------------------------------------------- journal
    def _journal_loop(self):
        """Flush the journal to replicated OSD objects periodically."""
        seq = 0
        while self.running:
            yield self.env.timeout(self.config.journal_flush_interval_ms)
            if not self.running:
                return
            if self.journal_pending_bytes == 0:
                continue
            nbytes = self.journal_pending_bytes
            self.journal_pending_bytes = 0
            seq += 1
            obs = self.env.obs
            span = None
            if obs is not None:
                span = obs.tracer.start(
                    "mds.journal_flush", host=str(self.addr), rank=self.rank,
                    nbytes=nbytes,
                )
            # Journal flushing consumes the single MDS thread too.
            yield self.cpu.submit(self.config.journal_flush_cpu_ms)
            targets = self.cluster.journal_targets(self.rank, seq)
            calls = []
            for osd in targets:
                calls.append(
                    self.network.call(
                        self.addr,
                        osd,
                        "osd_write",
                        (f"mds{self.rank}.journal.{seq}", nbytes),
                        size=nbytes,
                        parent_span=span,
                    )
                )
            try:
                yield self.env.all_of(calls)
            except (HostUnreachableError, FsError):
                pass  # OSD hiccup: Ceph would retry/remap; we keep serving
            self.journal_flushes += 1
            if span is not None:
                obs.tracer.finish(span)
