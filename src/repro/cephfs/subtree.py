"""Subtree partitioning of the CephFS namespace across MDS ranks.

CephFS delegates *subtrees* to MDS ranks [34]; an inode is served by the
rank authoritative for its containing directory, and subtrees are split at
second-level directories (the balancer breaks up hot top-level dirs).

Two assignment modes are modelled:

* **dynamic** (default): subtrees land on ranks by hashing — the emergent
  assignment is imbalanced (some ranks receive several hot subtrees,
  others none), which is why the default setup trails DirPinned in Fig. 5;
* **pinned** (CephFS-DirPinned): the operator enumerates the subtrees and
  pins them round-robin, trading location transparency for balance
  (Section V-A-b).  Configure with :meth:`pin`.
"""

from __future__ import annotations

from typing import Iterable

from ..ndb.partitioning import stable_hash

__all__ = ["SubtreePartitioner"]


class SubtreePartitioner:
    """Maps paths to the MDS rank authoritative for them."""

    def __init__(self, num_ranks: int, pinned: bool):
        if num_ranks < 1:
            raise ValueError("need at least one MDS rank")
        self.num_ranks = num_ranks
        self.pinned = pinned
        # subtree key -> rank, used in pinned mode (operator's pin map).
        self.pin_table: dict[str, int] = {}
        # rank -> takeover rank, installed when an MDS fails over.
        self.rank_overrides: dict[int, int] = {}

    @staticmethod
    def _components(path: str) -> list[str]:
        return [c for c in path.split("/") if c]

    def subtree_key_of_dir(self, dir_path: str) -> str:
        """The subtree a *directory* (and its direct children) belongs to."""
        comps = self._components(dir_path)
        if not comps:
            return "/"
        return "/" + "/".join(comps[:2])

    def pin(self, subtree_keys: Iterable[str]) -> None:
        """DirPinned: assign the given subtrees round-robin over all ranks."""
        for index, key in enumerate(sorted(set(subtree_keys))):
            self.pin_table[key] = index % self.num_ranks

    def _rank_for_key(self, key: str) -> int:
        if key == "/":
            rank = 0  # rank 0 is authoritative for the root
        else:
            rank = None
            if self.pinned:
                rank = self.pin_table.get(key)
            if rank is None:
                rank = stable_hash(key) % self.num_ranks
        return self._resolve_override(rank)

    def _resolve_override(self, rank: int) -> int:
        seen = set()
        while rank in self.rank_overrides and rank not in seen:
            seen.add(rank)
            rank = self.rank_overrides[rank]
        return rank

    def install_override(self, dead_rank: int, takeover_rank: int) -> None:
        self.rank_overrides[dead_rank] = takeover_rank

    def dir_rank(self, dir_path: str) -> int:
        """Rank serving operations *inside* ``dir_path`` (e.g. listdir)."""
        return self._rank_for_key(self.subtree_key_of_dir(dir_path))

    def rank_of(self, path: str) -> int:
        """Rank serving operations *on* ``path`` (its containing dir's rank)."""
        parent = path.rsplit("/", 1)[0] or "/"
        return self.dir_rank(parent)

    def authority_counts(self, paths) -> dict[int, int]:
        """How many of ``paths`` land on each rank (for balance tests)."""
        counts: dict[int, int] = {}
        for path in paths:
            rank = self.rank_of(path)
            counts[rank] = counts.get(rank, 0) + 1
        return counts
