"""The CephFS baseline: single-threaded MDSs, subtree partitioning,
kernel-client capability caches and journaling to OSDs.

Three setups from the paper's evaluation: ``build_cephfs()`` (dynamic
subtree balancing), ``CephConfig(dir_pinning=True)`` (CephFS-DirPinned),
and ``CephConfig(kclient_cache=False)`` (CephFS-SkipKCache).
"""

from .cluster import CephCluster, build_cephfs
from .config import CephConfig
from .kclient import CephClient
from .mds import Mds, MdsInode
from .osd import Osd
from .subtree import SubtreePartitioner

__all__ = [
    "CephCluster",
    "build_cephfs",
    "CephConfig",
    "CephClient",
    "Mds",
    "MdsInode",
    "Osd",
    "SubtreePartitioner",
]
