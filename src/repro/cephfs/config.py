"""CephFS model configuration and service costs.

Costs are calibrated against the paper's observations: a single MDS
handles ~4.2k metadata requests/s (Fig. 6, matching the CephFS paper), the
MDS is single-threaded behind a global lock, and journal flushing steals
MDS time under load (Section V-B1, V-D1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["CephConfig"]


@dataclass(frozen=True)
class CephConfig:
    """Deployment and performance model of the CephFS baseline."""

    num_osds: int = 12
    osd_replication: int = 3
    # MDS performance model: single-threaded (the MDS global lock).
    mds_op_cost_ms: float = 0.19  # read/lookup service time (single thread)
    mds_mutation_cost_ms: float = 0.76  # journaled namespace updates cost more
    mds_cap_track_cost_ms: float = 0.03  # bookkeeping per capability grant
    mds_cap_revoke_cost_ms: float = 0.02  # per holder notified on mutation
    # Journal: every mutation appends; the MDS periodically flushes to OSDs.
    journal_entry_bytes: int = 1536
    journal_flush_interval_ms: float = 5.0
    journal_flush_cpu_ms: float = 0.35  # MDS time consumed per flush
    osd_disk_bandwidth_bytes_per_ms: float = 110_000.0
    osd_write_cost_ms: float = 0.02
    # Kernel client: capability-cache hits are served locally.
    kclient_hit_cost_ms: float = 0.10
    kclient_cache: bool = True  # False = the paper's SkipKCache setup
    # Subtree partitioning: "dynamic" (default balancer) or "pinned".
    dir_pinning: bool = False
    client_request_bytes: int = 384
    client_response_bytes: int = 512
    # MDS failover: a surviving rank adopts a dead rank's subtrees after
    # detection plus journal replay (the failover-time cost Section V-A-b
    # attributes to DirPinned deployments).
    mds_failover_detect_ms: float = 1000.0
    mds_journal_replay_bytes_per_ms: float = 50_000.0

    def __post_init__(self) -> None:
        if self.num_osds < self.osd_replication:
            raise ConfigError("need at least osd_replication OSDs")
