"""The CephFS kernel client.

Holding a capability lets the client serve reads of an inode from its
local cache without contacting the MDS — the reason the default CephFS
setup posts high aggregate numbers while each MDS serves very few requests
(Figs. 5, 6).  ``SkipKCache`` disables the cache to expose the true MDS
throughput (Section V-A-b3).
"""

from __future__ import annotations

from typing import Optional

from ..errors import FsError, HostUnreachableError, NoNamenodeError, RpcTimeoutError
from ..net.network import Network
from ..sim import Environment
from ..types import AzId, NodeAddress, OpType
from .config import CephConfig
from .mds import MdsInode
from .subtree import SubtreePartitioner

__all__ = ["CephClient"]

_READ_OPS = frozenset({OpType.READ_FILE, OpType.STAT})
_LS_PREFIX = "LS:"


class CephClient:
    """A mounted CephFS client on one simulated host."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        addr: NodeAddress,
        az: AzId,
        mds_addrs,
        partitioner: SubtreePartitioner,
        config: CephConfig,
    ):
        self.env = env
        self.network = network
        self.addr = addr
        self.az = az
        self.mds_addrs = list(mds_addrs)
        self.partitioner = partitioner
        self.config = config
        self.cache: dict[str, MdsInode] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.mailbox = network.register(addr)
        self._listener_started = False

    def start(self) -> None:
        """Listen for capability revocations from the MDSs."""
        if self._listener_started:
            return
        self._listener_started = True
        self.env.process(self._listen(), name=f"{self.addr}:kclient")

    def _listen(self):
        while True:
            msg = yield self.mailbox.get()
            if msg.kind == "cap_revoke":
                self.cache.pop(msg.payload, None)
                self.cache.pop(_LS_PREFIX + msg.payload, None)

    def _mds_for(self, path: str, op: Optional[OpType] = None) -> NodeAddress:
        if op is OpType.LIST_DIR:
            rank = self.partitioner.dir_rank(path)
        else:
            rank = self.partitioner.rank_of(path)
        return self.mds_addrs[rank % len(self.mds_addrs)]

    # -------------------------------------------------------------- operations
    def op(self, op: OpType, **kwargs):
        obs = self.env.obs
        if obs is None:
            result = yield from self._op_body(op, None, kwargs)
            return result
        span = obs.tracer.start(
            "kclient.op", op=op.value, host=str(self.addr), az=self.az,
        )
        ts = obs.timeseries
        start_ms = self.env.now if ts is not None else 0.0
        try:
            result = yield from self._op_body(op, span, kwargs)
            span.tags["ok"] = True
            if ts is not None:
                now = self.env.now
                ts.record_op(self.az, now - start_ms, True, now)
            return result
        except (FsError, RpcTimeoutError, HostUnreachableError) as exc:
            span.tags["ok"] = False
            span.tags["error"] = type(exc).__name__
            if ts is not None:
                now = self.env.now
                ts.record_op(self.az, now - start_ms, False, now)
            raise
        finally:
            obs.tracer.finish(span)

    def _op_body(self, op: OpType, span, kwargs):
        path = kwargs.get("path") or kwargs.get("src")
        cache_key = path if op in _READ_OPS else None
        if self.config.kclient_cache and cache_key is not None and cache_key in self.cache:
            # Served entirely by the kernel cache under a valid capability.
            # Snapshot the value first: a revocation may land mid-read.
            cached = self.cache[cache_key]
            self.cache_hits += 1
            if span is not None:
                span.tags["cache_hit"] = True
            yield self.env.timeout(self.config.kclient_hit_cost_ms)
            return cached
        if span is not None:
            span.tags["cache_hit"] = False
        mds = self._mds_for(path if path else "/", op)
        if not self.config.kclient_cache and path:
            # Without the kernel dentry cache every path component needs its
            # own MDS lookup before the actual operation (SkipKCache).
            components = [c for c in path.split("/") if c][:-1]
            prefix = ""
            for name in components:
                prefix += "/" + name
                lookup_mds = self._mds_for(prefix)
                try:
                    yield self.network.call(
                        self.addr,
                        lookup_mds,
                        "mds_op",
                        (OpType.STAT, {"path": prefix}, self.addr),
                        size=self.config.client_request_bytes,
                        parent_span=span,
                    )
                except HostUnreachableError as exc:
                    raise NoNamenodeError(f"MDS {lookup_mds} unreachable: {exc}") from exc
                except Exception:
                    pass  # missing ancestors surface on the real op
        try:
            result = yield self.network.call(
                self.addr, mds, "mds_op", (op, kwargs, self.addr),
                size=self.config.client_request_bytes,
                parent_span=span,
            )
        except HostUnreachableError as exc:
            raise NoNamenodeError(f"MDS {mds} unreachable: {exc}") from exc
        if cache_key is not None:
            self.cache_misses += 1
            if self.config.kclient_cache:
                self.cache[cache_key] = result
        elif path is not None:
            self.cache.pop(path, None)
            parent = path.rsplit("/", 1)[0] or "/"
            self.cache.pop(_LS_PREFIX + parent, None)
            dst = kwargs.get("dst")
            if dst is not None:
                self.cache.pop(dst, None)
        return result

    # Convenience wrappers matching the HopsFS client surface -------------------
    def mkdir(self, path: str):
        result = yield from self.op(OpType.MKDIR, path=path)
        return result

    def create(self, path: str, data: bytes = b""):
        result = yield from self.op(OpType.CREATE_FILE, path=path, data=data)
        return result

    def read(self, path: str):
        result = yield from self.op(OpType.READ_FILE, path=path)
        return result

    def stat(self, path: str):
        result = yield from self.op(OpType.STAT, path=path)
        return result

    def exists(self, path: str):
        result = yield from self.op(OpType.EXISTS, path=path)
        return result

    def listdir(self, path: str):
        result = yield from self.op(OpType.LIST_DIR, path=path)
        return result

    def delete(self, path: str, recursive: bool = False):
        result = yield from self.op(OpType.DELETE_FILE, path=path, recursive=recursive)
        return result

    def rename(self, src: str, dst: str):
        result = yield from self.op(OpType.RENAME, src=src, dst=dst)
        return result

    def chmod(self, path: str, permission: int = 0o644):
        result = yield from self.op(OpType.CHMOD, path=path, permission=permission)
        return result
