"""CephFS cluster assembly: MON, OSDs, MDS ranks and clients.

The evaluation's HA deployment (Section V-A-b): 12 OSDs matching the 12
NDB datanodes, metadata replication factor 3, OSDs and MDSs spread over
the three AZs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import ConfigError
from ..net import Network, build_us_west1
from ..sim import Environment, RngRegistry
from ..types import AzId, NodeAddress, NodeKind
from .config import CephConfig
from .kclient import CephClient
from .mds import Mds
from .osd import Osd
from .subtree import SubtreePartitioner

__all__ = ["CephCluster", "build_cephfs"]


@dataclass
class CephCluster:
    """A running CephFS deployment."""

    env: Environment
    network: Network
    config: CephConfig
    mds_list: list[Mds]
    osds: list[Osd]
    partitioner: SubtreePartitioner
    azs: tuple[AzId, ...]
    rng: RngRegistry
    _client_ids: itertools.count = field(default_factory=lambda: itertools.count(1))
    _client_az_cycle: Optional[itertools.cycle] = None

    @property
    def topology(self):
        return self.network.topology

    def mds_addrs(self) -> list[NodeAddress]:
        return [mds.addr for mds in self.mds_list]

    def journal_targets(self, rank: int, seq: int) -> list[NodeAddress]:
        """OSDs receiving a journal flush: ``osd_replication`` distinct ones.

        Chosen deterministically per (rank, seq) and spread over AZs when
        the cluster spans several — the replicated-bucket layout of the
        paper's HA setup.
        """
        n = len(self.osds)
        r = min(self.config.osd_replication, n)
        start = (rank * 7 + seq) % n
        # OSDs are placed round-robin over AZs, so striding by num-AZs-ish
        # offsets lands replicas in distinct AZs whenever possible.
        stride = max(1, n // r)
        return [self.osds[(start + i * stride) % n].addr for i in range(r)]

    def client(self, az: Optional[AzId] = None) -> CephClient:
        if az is None:
            if self._client_az_cycle is None:
                self._client_az_cycle = itertools.cycle(self.azs)
            az = next(self._client_az_cycle)
        index = next(self._client_ids)
        addr = NodeAddress(NodeKind.CLIENT, 100_000 + index)
        self.topology.add_host(addr, az=az, cores=8)
        client = CephClient(
            env=self.env,
            network=self.network,
            addr=addr,
            az=az,
            mds_addrs=self.mds_addrs(),
            partitioner=self.partitioner,
            config=self.config,
        )
        client.start()
        return client

    def mds_for_dir(self, dir_path: str) -> Mds:
        return self.mds_list[self.partitioner.dir_rank(dir_path) % len(self.mds_list)]

    def mirror_dir(self, inode) -> None:
        """Register a directory inode on its own-authority rank.

        A directory's entry lives with its parent's subtree while its
        children form a new subtree; the mirror models Ceph's subtree
        export so listings find the inode.
        """
        owner = self.mds_for_dir(inode.path)
        owner.shard.inodes.setdefault(inode.path, inode)

    def unmirror_dir(self, path: str) -> None:
        owner = self.mds_for_dir(path)
        owner.shard.inodes.pop(path, None)
        owner.shard.children.pop(path, None)

    def preload(self, paths: Sequence[tuple[str, bool]]) -> int:
        """Install a namespace: (path, is_dir) pairs, parents first."""
        count = 0
        for path, is_dir in paths:
            rank = self.partitioner.rank_of(path) % len(self.mds_list)
            self.mds_list[rank].load(path, is_dir)
            if is_dir:
                owner = self.mds_for_dir(path)
                if owner is not self.mds_list[rank]:
                    owner.load(path, is_dir)
            count += 1
        return count

    def mds_utilization_snapshot(self) -> dict[NodeAddress, float]:
        return {mds.addr: mds.cpu.busy_time for mds in self.mds_list}

    # ----------------------------------------------------------- MDS failover
    def _failover_monitor(self):
        """Detect dead MDS ranks and fail their subtrees over.

        After the detection delay plus journal replay time, the surviving
        rank with the least load adopts the dead rank's shard.  The replay
        time is what makes DirPinned failovers slow (Section V-A-b).
        """
        interval = self.config.mds_failover_detect_ms
        handled: set[int] = set()
        while True:
            yield self.env.timeout(interval)
            for mds in self.mds_list:
                if mds.running or mds.rank in handled:
                    continue
                handled.add(mds.rank)
                self.env.process(
                    self._fail_over(mds), name=f"failover-mds{mds.rank}"
                )

    def _fail_over(self, dead):
        survivors = [m for m in self.mds_list if m.running]
        if not survivors:
            return
        takeover = min(survivors, key=lambda m: (len(m.shard.inodes), m.rank))
        # Journal replay: proportional to the dead rank's journal volume.
        replay_bytes = max(
            self.config.journal_entry_bytes,
            dead.journal_pending_bytes
            + dead.journal_flushes * self.config.journal_entry_bytes,
        )
        yield self.env.timeout(replay_bytes / self.config.mds_journal_replay_bytes_per_ms)
        takeover.shard.inodes.update(dead.shard.inodes)
        for parent, kids in dead.shard.children.items():
            takeover.shard.children.setdefault(parent, set()).update(kids)
        self.partitioner.install_override(dead.rank, takeover.rank)
        self.failovers = getattr(self, "failovers", 0) + 1


def build_cephfs(
    num_mds: int = 2,
    azs: Sequence[AzId] = (1, 2, 3),
    config: Optional[CephConfig] = None,
    env: Optional[Environment] = None,
    network: Optional[Network] = None,
    seed: int = 0,
    az_link_bandwidth_bytes_per_ms: Optional[float] = None,
) -> CephCluster:
    """Build a CephFS deployment in a fresh (or shared) environment."""
    azs = tuple(azs)
    if not azs:
        raise ConfigError("need at least one AZ")
    env = env or Environment()
    rng = RngRegistry(seed=seed)
    if network is None:
        network = Network(
            env,
            build_us_west1(),
            az_link_bandwidth_bytes_per_ms=az_link_bandwidth_bytes_per_ms,
        )
    config = config or CephConfig()
    topology = network.topology

    mon_addr = NodeAddress(NodeKind.MON, 1)
    topology.add_host(mon_addr, az=azs[0], cores=4)
    network.register(mon_addr)

    osds = []
    for i in range(config.num_osds):
        addr = NodeAddress(NodeKind.OSD, i + 1)
        az = azs[i % len(azs)]
        topology.add_host(addr, az=az, cores=8)
        osds.append(
            Osd(
                env,
                network,
                addr,
                az,
                disk_bandwidth_bytes_per_ms=config.osd_disk_bandwidth_bytes_per_ms,
                cpu_cost_ms=config.osd_write_cost_ms,
            )
        )

    partitioner = SubtreePartitioner(num_mds, pinned=config.dir_pinning)
    cluster = CephCluster(
        env=env,
        network=network,
        config=config,
        mds_list=[],
        osds=osds,
        partitioner=partitioner,
        azs=azs,
        rng=rng,
    )
    for rank in range(num_mds):
        addr = NodeAddress(NodeKind.MDS, rank + 1)
        az = azs[rank % len(azs)]
        topology.add_host(addr, az=az, cores=32)  # only 1 core usable (global lock)
        cluster.mds_list.append(Mds(env, network, cluster, addr, az, rank))

    for osd in osds:
        osd.start()
    for mds in cluster.mds_list:
        mds.start()
    env.process(cluster._failover_monitor(), name="mds-failover-monitor")
    return cluster
