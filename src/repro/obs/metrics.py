"""Metrics registry: named counters, gauges and histograms.

Components register instruments at attach time (or lazily on first use via
the get-or-create accessors) instead of growing ad-hoc ``self.foo += 1``
attributes that every report then has to know about.  The registry is the
single place a run's quantitative state can be enumerated from:
``registry.snapshot()`` returns a plain-dict view suitable for JSON.

Same overhead contract as the tracer: instruments mutate plain Python
ints/lists, never touch the kernel, the RNG, or the event queue, and the
registry only exists when observability was explicitly attached.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_LATENCY_BUCKETS_MS"]

# Simulated-millisecond bucket upper bounds for latency-ish histograms.
# Chosen to resolve the paper's range of interest: sub-ms NDB primitives up
# through multi-second retry/failover tails.
DEFAULT_LATENCY_BUCKETS_MS: Sequence[float] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0,
)


class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "value", "tags")

    def __init__(self, name: str, tags: Optional[dict] = None):
        self.name = name
        self.value = 0
        self.tags = tags or {}

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        """Return a new counter summing both sides.

        Same shard-merge contract as :meth:`Histogram.merge`: associative
        and commutative, so per-shard counters fold in any order.
        """
        merged = Counter(self.name, dict(self.tags))
        merged.value = self.value + other.value
        return merged

    def as_dict(self) -> dict:
        return {"type": "counter", "name": self.name, "value": self.value, "tags": self.tags}


class Gauge:
    """A point-in-time reading, either set directly or callable-backed.

    Callable-backed gauges (``fn`` given) read live component state at
    snapshot time — e.g. a namenode's ``ops_served`` attribute or the NDB
    cluster's active-transaction count — so existing plain-int counters
    keep their types (tests compare them as ints) while still being
    enumerable through the registry.
    """

    __slots__ = ("name", "_value", "fn", "tags")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None,
                 tags: Optional[dict] = None):
        self.name = name
        self._value = 0.0
        self.fn = fn
        self.tags = tags or {}

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        if self.fn is not None:
            return self.fn()
        return self._value

    def merge(self, other: "Gauge") -> "Gauge":
        """Return a new value-backed gauge summing both sides' readings.

        Gauges are instantaneous levels (inflight ops, queue depths), so
        the cross-shard aggregate of one level is the sum.  The merged
        gauge is value-backed: callable-backed gauges read live component
        state, which does not exist on the merge side.  Associative and
        commutative like the other instruments.
        """
        merged = Gauge(self.name, tags=dict(self.tags))
        merged.set(self.value + other.value)
        return merged

    def as_dict(self) -> dict:
        return {"type": "gauge", "name": self.name, "value": self.value, "tags": self.tags}


class Histogram:
    """Fixed-boundary histogram over simulated-time values (milliseconds).

    ``buckets`` are upper bounds; an implicit overflow bucket catches
    values beyond the last boundary.  ``bucket_counts[i]`` counts values
    ``v`` with ``buckets[i-1] < v <= buckets[i]`` (first bucket:
    ``v <= buckets[0]``), matching Prometheus ``le`` semantics.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "total", "min", "max", "tags")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
                 tags: Optional[dict] = None):
        self.name = name
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.tags = tags or {}

    def observe(self, value: float) -> None:
        # bisect_right on "upper bound >= value" => bisect_left over bounds;
        # we want v == boundary to land in that boundary's bucket (le).
        idx = bisect_right(self.buckets, value)
        if idx > 0 and self.buckets[idx - 1] == value:
            idx -= 1
        self.bucket_counts[idx] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Return a new histogram combining ``self`` and ``other``.

        Merge is associative and commutative on bucket counts, count, total
        and min/max (the shard-merge contract: folding per-shard histograms
        in any order yields the same numbers; callers still fold in sorted
        shard order so derived artifacts are byte-identical).  Both sides
        must share the same bucket boundaries.
        """
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.name!r} vs {other.name!r}"
            )
        merged = Histogram(self.name, self.buckets, dict(self.tags))
        merged.bucket_counts = [
            a + b for a, b in zip(self.bucket_counts, other.bucket_counts)
        ]
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        merged.min = min(mins) if mins else None
        merged.max = max(maxs) if maxs else None
        return merged

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: upper bound of the bucket holding rank q."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= rank and n:
                if i < len(self.buckets):
                    return self.buckets[i]
                return self.max if self.max is not None else self.buckets[-1]
        return self.max if self.max is not None else 0.0

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "tags": self.tags,
        }


class MetricsRegistry:
    """Get-or-create home for all instruments in one run."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create -----------------------------------------------------
    def counter(self, name: str, tags: Optional[dict] = None) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name, tags)
        return c

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              tags: Optional[dict] = None) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name, fn, tags)
        elif fn is not None:
            g.fn = fn
        return g

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
                  tags: Optional[dict] = None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, buckets, tags)
        return h

    # -- views -------------------------------------------------------------
    @property
    def counters(self) -> List[Counter]:
        return list(self._counters.values())

    @property
    def gauges(self) -> List[Gauge]:
        return list(self._gauges.values())

    @property
    def histograms(self) -> List[Histogram]:
        return list(self._histograms.values())

    def get(self, name: str):
        return (self._counters.get(name)
                or self._gauges.get(name)
                or self._histograms.get(name))

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument, JSON-serialisable."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.as_dict() for n, h in sorted(self._histograms.items())},
        }
