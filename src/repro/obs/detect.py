"""Detector scoring: monitor alerts vs injected-fault ground truth.

The chaos engine knows exactly which faults it injected and when
(:class:`~repro.chaos.schedule.FaultSchedule` + the injector's executed
trace).  This harness replays a chaos scenario with the full monitoring
stack attached — time-series hub + SLO burn-rate engine — and scores the
alerts the monitor raised against that ground truth:

* **recall** — fraction of injected fault windows with at least one
  alert fired inside them (plus a short grace tail),
* **precision** — fraction of alerts that land inside some fault window,
* **detection latency** — alert fire time minus fault onset, per
  detected window,
* **false-alert windows** — sealed windows spent inside unmatched
  alerts (the baseline fault-free run must score zero).

Because it imports :mod:`repro.chaos` (which imports the experiment
setups, which import :mod:`repro.obs`), this module is deliberately NOT
re-exported from the ``repro.obs`` package — import it directly.
"""

from __future__ import annotations

import html as _html
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..chaos.scenarios import SCENARIOS, Scenario, run_scenario
from ..chaos.schedule import FaultSchedule
from ..metrics.report import Table
from . import ObsContext
from .breakdown import phase_breakdown_json
from .slo import (SloEngine, SloSpec, component_liveness_slos, default_slos,
                  per_az_slos)
from .timeseries import TimeSeriesHub

__all__ = [
    "BASELINE_SCENARIO",
    "FaultWindow",
    "DetectionScore",
    "MonitorResult",
    "fault_windows",
    "run_monitor",
    "monitor_table",
]

# How long after a fault's heal an alert may still fire and count as a
# detection rather than a false positive: burn-rate evaluation trails
# reality by up to the slow confirmation span, and recovery effects
# (failover, journal replay) legitimately outlive the heal instant.
DEFAULT_GRACE_MS = 60.0

# Fault-free control run: same workload shape as the chaos scenarios,
# empty schedule.  Deliberately NOT in SCENARIOS (tests iterate that dict
# as the fault matrix); run_scenario accepts the object directly.
BASELINE_SCENARIO = Scenario(
    "baseline",
    "fault-free control run: the monitor must stay silent",
    lambda target: FaultSchedule(),
    drain_ms=300.0,
    # No block seeding: there are no faults for the block layer to ride
    # out, and single-AZ setups lack the datanodes for 3-way placement.
    seed_large_files=0,
)

# Fault actions that open a ground-truth window, mapped to the actions
# that close it.  recover_all closes everything.  A spot preemption IS a
# fault the monitor must catch (unlike a graceful decommission, which
# emits a retirement signal and is exempt from liveness floors); its
# window stays open until the node restarts or the run ends.
_WINDOW_STARTS = {
    "crash_node": ("recover_node", "recover_all"),
    "az_outage": ("az_heal", "recover_all"),
    "partition": ("heal", "recover_all"),
    "degrade_link": ("restore_links", "recover_all"),
    "preempt_namenode": ("recover_node", "recover_all"),
}


@dataclass
class FaultWindow:
    """One injected-fault interval in absolute simulated time."""

    fault_class: str          # the opening action, e.g. "degrade_link"
    start_ms: float
    end_ms: float
    detail: str = ""
    detected: bool = False
    detection_latency_ms: Optional[float] = None
    detected_by: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "fault_class": self.fault_class,
            "start_ms": round(self.start_ms, 3),
            "end_ms": round(self.end_ms, 3),
            "detail": self.detail,
            "detected": self.detected,
            "detection_latency_ms": (
                round(self.detection_latency_ms, 3)
                if self.detection_latency_ms is not None else None
            ),
            "detected_by": list(self.detected_by),
        }


def fault_windows(schedule_dicts: Sequence[dict], fault_trace: Sequence,
                  run_end_ms: float,
                  merge_gap_ms: float = 0.0) -> List[FaultWindow]:
    """Derive absolute ground-truth fault windows from a chaos run.

    Schedule times are relative to the injector's start; the executed
    trace records absolute completion times.  The first event of every
    schedule completes within the same instant it fires, so the offset
    between the first trace entry and the first scheduled time recovers
    the injector origin.  Same-class windows that overlap or sit within
    ``merge_gap_ms`` of each other merge into one episode (slow-az
    degrades several links at the same instant; rolling restarts crash
    one namenode after another — one fault episode, not N).
    """
    if not schedule_dicts or not fault_trace:
        return []
    origin = fault_trace[0][0] - float(schedule_dicts[0]["at_ms"])
    open_windows: List[tuple] = []   # (class, closers, key, start_abs, detail)
    closed: List[FaultWindow] = []

    def _key(event: dict) -> str:
        # What a closer must match: node for crash/recover, az for
        # outage/heal; link and partition closers are global
        # (restore_links/heal close every window of their class).
        if event.get("node") is not None:
            return f"node:{event['node']}"
        if event.get("az") is not None:
            return f"az:{event['az']}"
        return "*"

    for event in schedule_dicts:
        action = event["action"]
        at_abs = origin + float(event["at_ms"])
        if action in _WINDOW_STARTS:
            open_windows.append((
                action, _WINDOW_STARTS[action], _key(event), at_abs,
                _describe(event),
            ))
            continue
        # A closing action: close every open window it matches.
        still_open = []
        for fault_class, closers, key, start_abs, detail in open_windows:
            matches = action in closers and (
                action in ("recover_all", "heal", "restore_links")
                or _key(event) == key
            )
            if matches:
                closed.append(FaultWindow(fault_class, start_abs, at_abs, detail))
            else:
                still_open.append((fault_class, closers, key, start_abs, detail))
        open_windows = still_open

    for fault_class, _closers, _key_, start_abs, detail in open_windows:
        closed.append(FaultWindow(fault_class, start_abs, run_end_ms, detail))

    # Merge overlapping/near-adjacent same-class windows into one episode.
    merged: List[FaultWindow] = []
    for window in sorted(closed, key=lambda w: (w.fault_class, w.start_ms)):
        last = merged[-1] if merged else None
        if (last is not None and last.fault_class == window.fault_class
                and window.start_ms <= last.end_ms + merge_gap_ms):
            last.end_ms = max(last.end_ms, window.end_ms)
            if window.detail and window.detail not in last.detail:
                last.detail += f"; {window.detail}"
        else:
            merged.append(window)
    merged.sort(key=lambda w: (w.start_ms, w.fault_class))
    return merged


def _describe(event: dict) -> str:
    parts = [event["action"]]
    for key in ("node", "az", "az_pair", "extra_ms"):
        if event.get(key) is not None:
            parts.append(f"{key}={event[key]}")
    return " ".join(parts)


@dataclass
class DetectionScore:
    """Alerts vs ground truth for one scenario run."""

    windows: List[FaultWindow]
    matched_alerts: int
    total_alerts: int
    false_alert_windows: int     # sealed windows inside unmatched alerts

    @property
    def recall(self) -> float:
        if not self.windows:
            return 1.0
        return sum(1 for w in self.windows if w.detected) / len(self.windows)

    @property
    def precision(self) -> float:
        if not self.total_alerts:
            return 1.0
        return self.matched_alerts / self.total_alerts

    @property
    def mean_detection_latency_ms(self) -> Optional[float]:
        vals = [w.detection_latency_ms for w in self.windows
                if w.detection_latency_ms is not None]
        if not vals:
            return None
        return sum(vals) / len(vals)

    def as_dict(self) -> dict:
        latency = self.mean_detection_latency_ms
        return {
            "recall": round(self.recall, 4),
            "precision": round(self.precision, 4),
            "mean_detection_latency_ms": (
                round(latency, 3) if latency is not None else None
            ),
            "matched_alerts": self.matched_alerts,
            "total_alerts": self.total_alerts,
            "false_alert_windows": self.false_alert_windows,
            "fault_windows": [w.as_dict() for w in self.windows],
        }


def _damp_flaps(alerts: List, gap_ms: float) -> List:
    """Collapse re-fires of the same SLO into one logical incident.

    An objective that resolves and fires again within ``gap_ms`` is
    flapping around its threshold, not reporting a new incident — the
    standard alert-dedup treatment.  The merged incident keeps the first
    ``fired_ms`` (detection latency is to first notice) and accumulates
    the alert-window cost.
    """
    by_slo: Dict[str, List] = {}
    for alert in sorted(alerts, key=lambda a: a.fired_ms):
        group = by_slo.setdefault(alert.slo, [])
        prev = group[-1] if group else None
        if (prev is not None and prev.resolved_ms is not None
                and alert.fired_ms - prev.resolved_ms <= gap_ms):
            prev.resolved_index = alert.resolved_index
            prev.resolved_ms = alert.resolved_ms
            prev.peak_burn = max(prev.peak_burn, alert.peak_burn)
            prev.windows += alert.windows
            continue
        group.append(replace(alert))
    merged = [a for group in by_slo.values() for a in group]
    merged.sort(key=lambda a: a.fired_ms)
    return merged


def score_alerts(windows: List[FaultWindow], alerts: List,
                 grace_ms: float = DEFAULT_GRACE_MS,
                 flap_gap_ms: Optional[float] = None) -> DetectionScore:
    """Match fired alerts to fault windows; fill in detection fields.

    Alerts are flap-damped first (re-fires of one SLO within
    ``flap_gap_ms``, default 2 × ``grace_ms``, merge into one incident),
    then each incident must have fired inside some ground-truth window
    (+ ``grace_ms``) to count as matched.
    """
    alerts = _damp_flaps(alerts, 2 * grace_ms if flap_gap_ms is None
                         else flap_gap_ms)
    matched = 0
    false_windows = 0
    for alert in alerts:
        hit = False
        for window in windows:
            if window.start_ms <= alert.fired_ms <= window.end_ms + grace_ms:
                hit = True
                if not window.detected or alert.fired_ms - window.start_ms < (
                        window.detection_latency_ms or float("inf")):
                    window.detection_latency_ms = alert.fired_ms - window.start_ms
                window.detected = True
                if alert.slo not in window.detected_by:
                    window.detected_by.append(alert.slo)
        if hit:
            matched += 1
        else:
            false_windows += alert.windows
    return DetectionScore(
        windows=windows,
        matched_alerts=matched,
        total_alerts=len(alerts),
        false_alert_windows=false_windows,
    )


@dataclass
class MonitorResult:
    """Everything one monitored chaos run produced."""

    scenario: str
    setup: str
    seed: int
    score: DetectionScore
    alerts: List[dict]
    thresholds: dict
    timeline: List[dict]          # windowed client.ops rows (t_ms, count, …)
    availability: List[dict]      # TimelineCollector rows
    completed: int
    failed: int
    dispatch_hash: str
    all_green: bool               # invariant verdicts from the chaos run
    interval_ms: float
    breakdown: dict = field(default_factory=dict)  # phase_breakdown_json rows
    extra: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Green = invariants hold, every fault detected, no false alerts."""
        return (self.all_green and self.score.recall == 1.0
                and self.score.false_alert_windows == 0)

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "setup": self.setup,
            "seed": self.seed,
            "ok": self.ok,
            "score": self.score.as_dict(),
            "alerts": self.alerts,
            "thresholds": self.thresholds,
            "interval_ms": self.interval_ms,
            "timeline": self.timeline,
            "availability": self.availability,
            "completed": self.completed,
            "failed": self.failed,
            "dispatch_hash": self.dispatch_hash,
            "invariants_green": self.all_green,
            "breakdown": self.breakdown,
        }

    def render(self) -> str:
        """Operator-style report: alert timeline + detection scores."""
        score = self.score
        lines = [
            f"scenario:  {self.scenario}",
            f"setup:     {self.setup} (seed {self.seed})",
            f"ops:       {self.completed} completed, {self.failed} failed",
            f"monitor:   {'GREEN' if self.ok else 'RED'}  "
            f"recall={score.recall:.2f} precision={score.precision:.2f} "
            f"false_alert_windows={score.false_alert_windows}",
            "",
            "fault windows (ground truth):",
        ]
        if not score.windows:
            lines.append("  (none — fault-free run)")
        for window in score.windows:
            status = "DETECTED" if window.detected else "MISSED"
            latency = (f" +{window.detection_latency_ms:.0f}ms"
                       if window.detection_latency_ms is not None else "")
            by = f" by {','.join(window.detected_by)}" if window.detected_by else ""
            lines.append(
                f"  [{window.start_ms:7.1f} – {window.end_ms:7.1f}ms] "
                f"{window.fault_class:<14} {status}{latency}{by}"
            )
        lines.append("")
        lines.append("alerts:")
        if not self.alerts:
            lines.append("  (none fired)")
        for alert in self.alerts:
            resolved = (f"{alert['resolved_ms']:.1f}"
                        if alert["resolved_ms"] is not None else "open")
            lines.append(
                f"  [{alert['fired_ms']:7.1f} – {resolved:>7}ms] "
                f"{alert['slo']:<18} burn {alert['peak_burn']:>6.1f}x  {alert['detail']}"
            )
        lines.append("")
        lines.append("op-rate timeline (client.ops):")
        lines.append("  t(ms)     ops  err   p99(ms)")
        for row in self.timeline:
            bar = "#" * min(40, row["count"])
            lines.append(
                f"  {row['t_ms']:7.0f} {row['count']:5d} {row['errors']:4d} "
                f"{row['p99_ms']:8.2f}  {bar}"
            )
        return "\n".join(lines)

    def render_html(self) -> str:
        """Self-contained HTML report (no external assets)."""
        rows = []
        for window in self.score.windows:
            status = "detected" if window.detected else "missed"
            rows.append(
                f"<tr class='{status}'><td>{window.fault_class}</td>"
                f"<td>{window.start_ms:.1f}</td><td>{window.end_ms:.1f}</td>"
                f"<td>{status}</td>"
                f"<td>{window.detection_latency_ms if window.detection_latency_ms is not None else '—'}</td>"
                f"<td>{_html.escape(', '.join(window.detected_by))}</td></tr>"
            )
        alert_rows = [
            f"<tr><td>{a['slo']}</td><td>{a['fired_ms']:.1f}</td>"
            f"<td>{a['resolved_ms'] if a['resolved_ms'] is not None else 'open'}</td>"
            f"<td>{a['peak_burn']:.1f}x</td><td>{_html.escape(a['detail'])}</td></tr>"
            for a in self.alerts
        ]
        return f"""<!doctype html>
<html><head><meta charset="utf-8"><title>repro monitor — {_html.escape(self.scenario)}</title>
<style>
body {{ font: 14px/1.4 system-ui, sans-serif; margin: 2em; }}
table {{ border-collapse: collapse; margin: 1em 0; }}
td, th {{ border: 1px solid #ccc; padding: 4px 10px; text-align: left; }}
tr.detected td {{ background: #e6f4e6; }}
tr.missed td {{ background: #f8d7da; }}
.green {{ color: #2a7a2a; }} .red {{ color: #b02a37; }}
</style></head><body>
<h1>repro monitor — {_html.escape(self.scenario)} on {_html.escape(self.setup)}</h1>
<p class="{'green' if self.ok else 'red'}"><b>{'GREEN' if self.ok else 'RED'}</b>
— recall {self.score.recall:.2f}, precision {self.score.precision:.2f},
false-alert windows {self.score.false_alert_windows},
ops {self.completed} completed / {self.failed} failed.</p>
<h2>Fault windows</h2>
<table><tr><th>class</th><th>start (ms)</th><th>end (ms)</th><th>status</th>
<th>detection latency (ms)</th><th>detected by</th></tr>
{''.join(rows) or '<tr><td colspan="6">none (fault-free run)</td></tr>'}</table>
<h2>Alerts</h2>
<table><tr><th>SLO</th><th>fired (ms)</th><th>resolved (ms)</th><th>peak burn</th><th>detail</th></tr>
{''.join(alert_rows) or '<tr><td colspan="5">none fired</td></tr>'}</table>
<h2>Thresholds</h2>
<pre>{_html.escape(json.dumps(self.thresholds, indent=2))}</pre>
</body></html>
"""


def monitor_slos(setup: str, num_servers: int = 3) -> List[SloSpec]:
    """The full detector bank for one setup.

    The aggregate :func:`~repro.obs.slo.default_slos` plus auto-derived
    per-AZ client floors and per-server (NN/MDS) liveness floors — the
    latter two catch faults a fan-out or failover path hides from the
    aggregate client series.  Liveness floors cover the *initial* pool;
    a gracefully decommissioned server retires its floor in-band (see
    :meth:`SloEngine._apply_retirements`), while a preempted server's
    floor keeps burning — that silence is the detection signal.
    """
    from ..experiments.setups import SETUPS
    spec = SETUPS[setup]
    prefix = "mds.handle.mds" if spec.kind == "cephfs" else "nn.handle.nn"
    components = [f"{prefix}{i}" for i in range(1, num_servers + 1)]
    return (default_slos() + per_az_slos(spec.azs)
            + component_liveness_slos(components))


def run_monitor(
    scenario: "str | Scenario",
    setup: str = "HopsFS-CL (3,3)",
    num_servers: int = 3,
    seed: int = 99,
    specs: Optional[List[SloSpec]] = None,
    interval_ms: float = 10.0,
    clients: Optional[int] = None,
    load_ms: Optional[float] = None,
    grace_ms: float = DEFAULT_GRACE_MS,
    obs: Optional[ObsContext] = None,
) -> MonitorResult:
    """Run one chaos scenario with the monitor attached and score it.

    ``scenario`` may be any name in ``SCENARIOS``, ``"baseline"`` for the
    fault-free control run, or a :class:`Scenario` object.
    """
    if isinstance(scenario, str):
        if scenario == BASELINE_SCENARIO.name:
            scenario = BASELINE_SCENARIO
        elif scenario in SCENARIOS:
            scenario = SCENARIOS[scenario]
        else:
            raise ValueError(
                f"unknown scenario {scenario!r} "
                f"(have: baseline, {', '.join(sorted(SCENARIOS))})"
            )
    run_ms = load_ms if load_ms is not None else scenario.load_ms

    if obs is None:
        obs = ObsContext()
    hub = TimeSeriesHub(interval_ms=interval_ms)
    obs.timeseries = hub
    if specs is None:
        specs = monitor_slos(setup, num_servers)
    engine = SloEngine(specs, hub, obs=obs, load_window_ms=run_ms)
    result = run_scenario(
        scenario, setup, num_servers=num_servers, seed=seed, obs=obs,
        clients=clients, load_ms=load_ms,
    )
    env = result.extra["target"].env
    engine.finalize(env.now)

    windows = fault_windows(result.schedule, result.fault_trace, env.now,
                            merge_gap_ms=grace_ms)
    score = score_alerts(windows, engine.alerts, grace_ms=grace_ms)

    series = hub.series("client.ops")
    timeline = []
    if series is not None:
        for row in series.as_dict(hub.interval_ms, hub.buckets)["rows"]:
            timeline.append({
                "t_ms": row["t_ms"], "count": row["count"],
                "errors": row["errors"], "p99_ms": row["p99_ms"],
                "availability": row["availability"],
            })

    monitor = MonitorResult(
        scenario=result.scenario,
        setup=result.setup,
        seed=seed,
        score=score,
        alerts=engine.alert_dicts(),
        thresholds=engine.thresholds(),
        timeline=timeline,
        availability=result.timeline,
        completed=result.completed,
        failed=result.failed,
        dispatch_hash=result.dispatch_hash,
        all_green=result.all_green,
        interval_ms=hub.interval_ms,
        breakdown=phase_breakdown_json(obs.tracer),
    )
    monitor.extra["chaos_result"] = result
    monitor.extra["hub"] = hub
    monitor.extra["engine"] = engine
    return monitor


def monitor_table(results: List[MonitorResult],
                  title: str = "Detection scores") -> Table:
    """Table-style summary across scenarios (one row per run)."""
    rows = []
    for r in results:
        latency = r.score.mean_detection_latency_ms
        rows.append([
            r.scenario,
            r.setup,
            "GREEN" if r.ok else "RED",
            f"{r.score.recall:.2f}",
            f"{r.score.precision:.2f}",
            f"{latency:.0f}" if latency is not None else "—",
            str(r.score.false_alert_windows),
            str(len(r.alerts)),
        ])
    return Table(
        title=title,
        headers=["scenario", "setup", "ok", "recall", "precision",
                 "detect (ms)", "false win", "alerts"],
        rows=rows,
    )
