"""Table-1-style latency breakdown computed from a span trace.

The paper's Table 1 attributes each operation's latency to its metadata
phase vs. its block phase; Figure 14 counts cross-AZ reads.  This module
reproduces that attribution from first principles: it walks the span
trees a traced run recorded and, per operation type, splits the
end-to-end latency into

* **metadata** — time inside the metadata tier (namenode handler spans on
  the HopsFS side, MDS handler spans on the CephFS side),
* **block** — time in block/data RPCs (read_block / write_block / OSD),
* **lock wait** — time queued in the NDB lock table,
* **other** — client-side queueing, network transit, retries/backoff,

and counts cross-AZ hops per operation.  ``python -m repro report`` runs
a traced point for several setups and prints one such table each.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..metrics.report import Table
from .tracer import Span, Tracer

__all__ = ["OpBreakdown", "phase_breakdown", "phase_breakdown_json",
           "breakdown_table"]

# Span names that anchor each phase.  Handler spans on the server side of
# the metadata tier; block spans are the client-side data RPCs.
_ROOT_NAMES = ("client.op", "kclient.op")
_METADATA_NAMES = ("nn.handle", "mds.handle")
_BLOCK_PREFIXES = ("rpc.read_block", "rpc.write_block", "rpc.osd_read", "rpc.osd_write")
_LOCK_NAMES = ("ndb.lock.wait", "pathlock.wait")
_CACHE_NAMES = ("nn.cache.serve",)


class OpBreakdown:
    """Aggregated phase attribution for one operation type."""

    __slots__ = ("op", "count", "total_ms", "metadata_ms", "block_ms",
                 "lock_wait_ms", "cache_ms", "cross_az_hops", "retries")

    def __init__(self, op: str):
        self.op = op
        self.count = 0
        self.total_ms = 0.0
        self.metadata_ms = 0.0
        self.block_ms = 0.0
        self.lock_wait_ms = 0.0
        self.cache_ms = 0.0
        self.cross_az_hops = 0
        self.retries = 0

    @property
    def other_ms(self) -> float:
        known = self.metadata_ms + self.block_ms + self.lock_wait_ms + self.cache_ms
        return max(0.0, self.total_ms - known)

    def avg(self, total: float) -> float:
        return total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "op": self.op,
            "count": self.count,
            "avg_total_ms": self.avg(self.total_ms),
            "avg_metadata_ms": self.avg(self.metadata_ms),
            "avg_block_ms": self.avg(self.block_ms),
            "avg_lock_wait_ms": self.avg(self.lock_wait_ms),
            "avg_cache_ms": self.avg(self.cache_ms),
            "avg_other_ms": self.avg(self.other_ms),
            "cross_az_hops_per_op": self.cross_az_hops / self.count if self.count else 0.0,
            "retries": self.retries,
        }


def _descendants(root: Span, children: Dict[Optional[int], List[Span]]) -> List[Span]:
    out: List[Span] = []
    stack = [root.span_id]
    while stack:
        for child in children.get(stack.pop(), ()):
            out.append(child)
            stack.append(child.span_id)
    return out


def phase_breakdown(tracer: Tracer) -> Dict[str, OpBreakdown]:
    """Attribute each traced operation's latency to phases.

    Only finished root operation spans (``client.op`` / ``kclient.op``)
    are counted.  Within one operation tree, phase times are summed over
    that phase's spans — concurrent block fetches therefore count their
    full service time (attribution, not wall-clock decomposition), which
    matches how Table 1's phases are reported in the paper.
    """
    children = tracer.children_index()
    out: Dict[str, OpBreakdown] = {}
    for root in tracer.spans:
        if root.name not in _ROOT_NAMES or not root.finished:
            continue
        op = str(root.tags.get("op", "?"))
        agg = out.get(op)
        if agg is None:
            agg = out[op] = OpBreakdown(op)
        agg.count += 1
        agg.total_ms += root.duration_ms
        agg.retries += int(root.tags.get("retries", 0))
        for span in _descendants(root, children):
            if not span.finished:
                continue
            if span.name in _METADATA_NAMES:
                agg.metadata_ms += span.duration_ms
            elif span.name.startswith(_BLOCK_PREFIXES):
                agg.block_ms += span.duration_ms
            elif span.name in _LOCK_NAMES:
                agg.lock_wait_ms += span.duration_ms
            elif span.name in _CACHE_NAMES:
                agg.cache_ms += span.duration_ms
            if span.name.startswith("rpc.") and span.tags.get("cross_az"):
                agg.cross_az_hops += 1
    return out


def phase_breakdown_json(tracer: Tracer) -> dict:
    """Machine-readable :func:`phase_breakdown`, ordered by op frequency.

    The same rows ``breakdown_table`` prints, as plain data — consumed by
    ``python -m repro report --json`` and embedded in the monitor
    artifact (``python -m repro monitor --json``).
    """
    rows = sorted(phase_breakdown(tracer).values(),
                  key=lambda b: (-b.count, b.op))
    return {"ops": [b.as_dict() for b in rows]}


def breakdown_table(tracer: Tracer, title: str = "Latency breakdown") -> Table:
    """Render :func:`phase_breakdown` as a printable table."""
    table = Table(
        title=title,
        headers=["op", "count", "avg total ms", "metadata ms", "block ms",
                 "lock wait ms", "cache ms", "other ms", "xAZ hops/op"],
    )
    rows = sorted(phase_breakdown(tracer).values(), key=lambda b: -b.count)
    for b in rows:
        table.add_row(
            b.op,
            b.count,
            b.avg(b.total_ms),
            b.avg(b.metadata_ms),
            b.avg(b.block_ms),
            b.avg(b.lock_wait_ms),
            b.avg(b.cache_ms),
            b.avg(b.other_ms),
            b.cross_az_hops / b.count if b.count else 0.0,
        )
    if not rows:
        table.add_note("no finished operation spans in trace")
    table.add_note("phases are summed service times within each op's span tree "
                   "(concurrent block fetches count fully)")
    return table
