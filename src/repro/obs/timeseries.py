"""Windowed time-series telemetry over the metrics registry.

The registry (:mod:`repro.obs.metrics`) answers "how many, in total" —
one number per run.  This module answers "how many, *when*": fixed-width
simulated-time windows of operation counts, error counts, latency
histograms, windowed counter deltas, and gauge samples, held in bounded
ring buffers per series (per component and per AZ), so an in-sim monitor
can watch availability and tail latency evolve across a fault timeline
the way a real operator's dashboard would.

The sampler is **dispatch-driven**, not a kernel process.  A periodic
DES sampler process would consume sequence numbers and heap slots, so a
telemetry-on run could never replay a telemetry-off schedule.  Instead,
every instrumented recording site (client op completion, NN/MDS handler,
NDB transaction outcome, network RPC accounting) passes the current
simulated time into the hub; when that time has crossed one or more
window boundaries the hub *rolls*: it seals every completed window into
the ring buffers, samples the registered gauges, and notifies listeners
(the SLO engine).  Since simulated state only changes when events
dispatch, sealing a window at the first recording after its boundary
yields exactly the aggregates a boundary-time sampler would have seen
for counters and histograms, and a deterministic (same-schedule ⇒
same-value) reading for gauges.

Overhead contract, same as the tracer (see DESIGN.md):

* **Zero cost when off.**  ``ObsContext.timeseries`` is ``None`` unless a
  hub was attached; every site is one extra ``obs.timeseries is not
  None`` guard behind the existing ``env.obs is not None`` guard.
* **Schedule neutrality when on.**  The hub only mutates plain Python
  state: it never schedules kernel events, consumes sequence numbers, or
  draws from an RNG.  ``tests/obs/test_sampler_neutrality.py`` pins
  dispatch-hash equality sampler-on vs sampler-off across all nine
  setups.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .metrics import DEFAULT_LATENCY_BUCKETS_MS

__all__ = ["OpWindow", "WindowedSeries", "TimeSeriesHub"]


class OpWindow:
    """One sealed window of an operation series: counts + latency buckets."""

    __slots__ = ("count", "errors", "total_ms", "bucket_counts", "max_ms")

    def __init__(self, num_buckets: int):
        self.count = 0
        self.errors = 0
        self.total_ms = 0.0
        self.bucket_counts = [0] * (num_buckets + 1)  # +1 overflow
        self.max_ms = 0.0

    def observe(self, latency_ms: float, ok: bool, buckets: Sequence[float]) -> None:
        self.count += 1
        if not ok:
            self.errors += 1
        self.total_ms += latency_ms
        if latency_ms > self.max_ms:
            self.max_ms = latency_ms
        idx = bisect_right(buckets, latency_ms)
        if idx > 0 and buckets[idx - 1] == latency_ms:
            idx -= 1
        self.bucket_counts[idx] += 1

    def quantile(self, q: float, buckets: Sequence[float]) -> float:
        """Bucket-upper-bound quantile, matching :class:`Histogram.quantile`."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= rank and n:
                if i < len(buckets):
                    return buckets[i]
                return self.max_ms
        return self.max_ms

    def merge_from(self, other: "OpWindow") -> None:
        """Fold ``other`` into this window (commutative + associative)."""
        self.count += other.count
        self.errors += other.errors
        self.total_ms += other.total_ms
        if other.max_ms > self.max_ms:
            self.max_ms = other.max_ms
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "errors": self.errors,
            "total_ms": self.total_ms,
            "max_ms": self.max_ms,
            "bucket_counts": list(self.bucket_counts),
        }


class WindowedSeries:
    """Ring buffer of sealed windows for one series.

    ``kind`` is ``"op"`` (OpWindow rows), ``"counter"`` (windowed float
    sums) or ``"gauge"`` (boundary samples).  Rows are ``(window_index,
    value)`` in strictly increasing index order; the deque bounds memory
    regardless of run length.
    """

    __slots__ = ("name", "kind", "rows", "tags")

    def __init__(self, name: str, kind: str, capacity: int, tags: Optional[dict] = None):
        self.name = name
        self.kind = kind
        self.rows: deque = deque(maxlen=capacity)
        self.tags = tags or {}

    def append(self, window_index: int, value) -> None:
        self.rows.append((window_index, value))

    def as_dict(self, interval_ms: float, buckets: Sequence[float]) -> dict:
        out = {"name": self.name, "kind": self.kind, "tags": self.tags, "rows": []}
        for index, value in self.rows:
            row = {"t_ms": index * interval_ms}
            if self.kind == "op":
                row.update(value.as_dict())
                row["p99_ms"] = value.quantile(0.99, buckets)
                row["availability"] = (
                    (value.count - value.errors) / value.count if value.count else None
                )
            else:
                row["value"] = value
            out["rows"].append(row)
        return out


class TimeSeriesHub:
    """The windowed sampler: per-series ring buffers plus roll/flush logic.

    One hub serves one run.  Recording sites call :meth:`record_op` /
    :meth:`component_sample` / :meth:`inc`; each call first rolls the
    window cursor forward to the window containing ``now``, sealing every
    completed window (and sampling gauges at each seal).  Listeners
    registered with :meth:`subscribe` see every sealed window in order —
    including empty ones, which is how the SLO engine notices silence.
    """

    #: Safety valve: one roll never seals more than this many windows
    #: (a long idle drain would otherwise spin sealing empty windows).
    MAX_SEAL_PER_ROLL = 4096

    def __init__(
        self,
        interval_ms: float = 10.0,
        capacity: int = 1024,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ):
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.interval_ms = float(interval_ms)
        self.capacity = capacity
        self.buckets = tuple(buckets)
        self._num_buckets = len(self.buckets)
        self._series: Dict[str, WindowedSeries] = {}
        # Live (unsealed) accumulators for the current window.
        self._live_ops: Dict[str, OpWindow] = {}
        self._live_counters: Dict[str, float] = {}
        self._gauges: List[Tuple[str, Callable[[], float]]] = []
        self._listeners: List[Callable] = []
        # Cursor: index of the current (open) window.  Starts at window 0;
        # simulated time starts at 0 in every harness.
        self._cursor = 0
        self.windows_sealed = 0
        self._registry = None

    # -- wiring ------------------------------------------------------------
    def bind(self, obs) -> None:
        """Called by :meth:`ObsContext.attach`; links gauge sampling."""
        self._registry = obs.registry

    def subscribe(self, listener: Callable) -> None:
        """``listener(window_index, start_ms, end_ms, ops, counters)`` per seal.

        ``ops`` maps series name -> sealed :class:`OpWindow` (missing ⇒ no
        activity); ``counters`` maps series name -> windowed sum.
        """
        self._listeners.append(listener)

    def add_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Sample ``fn()`` into series ``name`` at every window seal."""
        self._gauges.append((name, fn))

    # -- series accessors --------------------------------------------------
    def _get_series(self, name: str, kind: str, tags: Optional[dict] = None) -> WindowedSeries:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = WindowedSeries(name, kind, self.capacity, tags)
        return series

    def series(self, name: str) -> Optional[WindowedSeries]:
        return self._series.get(name)

    def series_names(self) -> List[str]:
        return sorted(self._series)

    # -- recording ---------------------------------------------------------
    def record_op(self, az, latency_ms: float, ok: bool, now: float) -> None:
        """One finished client operation: aggregate + per-AZ op series."""
        self.roll(now)
        self._observe_op("client.ops", latency_ms, ok)
        if az:  # AZ ids are 1-based; 0 is ANY_AZ (no placement)
            self._observe_op(f"client.ops.az{az}", latency_ms, ok, tags={"az": az})

    def component_sample(self, component: str, host: str, az, duration_ms: float,
                         ok: bool, now: float) -> None:
        """One server-side handler completion (NN / MDS), per component+host."""
        self.roll(now)
        self._observe_op(component, duration_ms, ok)
        self._observe_op(f"{component}.{host}", duration_ms, ok,
                         tags={"host": host, "az": az})

    def inc(self, name: str, now: float, amount: float = 1.0) -> None:
        """Windowed counter: per-window sum of ``amount``."""
        self.roll(now)
        self._live_counters[name] = self._live_counters.get(name, 0.0) + amount

    def _observe_op(self, name: str, latency_ms: float, ok: bool,
                    tags: Optional[dict] = None) -> None:
        window = self._live_ops.get(name)
        if window is None:
            window = self._live_ops[name] = OpWindow(self._num_buckets)
            self._get_series(name, "op", tags)
        window.observe(latency_ms, ok, self.buckets)

    # -- rolling -----------------------------------------------------------
    def roll(self, now: float) -> None:
        """Seal every window fully in the past of ``now``."""
        target = int(now // self.interval_ms)
        if target <= self._cursor:
            return
        # Bound a pathological jump (sealing is O(windows crossed)).
        start = max(self._cursor, target - self.MAX_SEAL_PER_ROLL)
        for index in range(start, target):
            self._seal(index)
        self._cursor = target

    def finalize(self, now: float) -> None:
        """Seal up to and including the window containing ``now``."""
        self.roll(now)
        self._seal(self._cursor)
        self._cursor += 1

    def _seal(self, index: int) -> None:
        ops = self._live_ops
        counters = self._live_counters
        self._live_ops = {}
        self._live_counters = {}
        for name, window in ops.items():
            self._series[name].append(index, window)
        for name, value in counters.items():
            self._get_series(name, "counter").append(index, value)
        # Gauge sampling at the seal boundary: callable-backed registry
        # gauges read live component state, so the sealed value is what a
        # boundary-time scraper would have seen (deterministic because the
        # schedule is).
        if self._registry is not None:
            for gauge in self._registry.gauges:
                self._get_series(gauge.name, "gauge").append(index, float(gauge.value))
        for name, fn in self._gauges:
            self._get_series(name, "gauge").append(index, float(fn()))
        self.windows_sealed += 1
        if self._listeners:
            start_ms = index * self.interval_ms
            end_ms = start_ms + self.interval_ms
            for listener in self._listeners:
                listener(index, start_ms, end_ms, ops, counters)

    # -- merge (the PR-5 shard contract) -----------------------------------
    def merge(self, other: "TimeSeriesHub") -> "TimeSeriesHub":
        """Return a new hub folding two shards' sealed windows together.

        Commutative and associative on every sealed aggregate: op windows
        fold count/error/bucket-wise, counter windows add, gauge windows
        add (shard gauges are per-shard-deployment readings, so the merged
        value is the fleet total).  Both hubs must share interval and
        bucket boundaries.  Live (unsealed) state does not merge — call
        :meth:`finalize` on both sides first.
        """
        if self.interval_ms != other.interval_ms or self.buckets != other.buckets:
            raise ValueError("cannot merge hubs with different interval/buckets")
        merged = TimeSeriesHub(self.interval_ms, self.capacity, self.buckets)
        merged.windows_sealed = max(self.windows_sealed, other.windows_sealed)
        for source in (self, other):
            for name, series in source._series.items():
                target = merged._get_series(name, series.kind, dict(series.tags))
                rows = dict(target.rows)
                for index, value in series.rows:
                    if index in rows:
                        if series.kind == "op":
                            fold = OpWindow(self._num_buckets)
                            fold.merge_from(rows[index])
                            fold.merge_from(value)
                            rows[index] = fold
                        else:
                            rows[index] = rows[index] + value
                    else:
                        if series.kind == "op":
                            fold = OpWindow(self._num_buckets)
                            fold.merge_from(value)
                            rows[index] = fold
                        else:
                            rows[index] = value
                target.rows = deque(
                    sorted(rows.items()), maxlen=self.capacity
                )
        return merged

    # -- views -------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready view of every series' sealed windows."""
        return {
            "interval_ms": self.interval_ms,
            "windows_sealed": self.windows_sealed,
            "buckets": list(self.buckets),
            "series": {
                name: self._series[name].as_dict(self.interval_ms, self.buckets)
                for name in sorted(self._series)
            },
        }
