"""Trace exporters: Chrome trace_event JSON, JSONL spans, schema check.

The Chrome format is the `trace_event` "JSON Array Format" accepted by
``about://tracing`` and Perfetto: a ``traceEvents`` list of complete
("ph": "X") events with microsecond ``ts``/``dur``.  We map:

* span name      -> ``name``
* host tag       -> ``pid`` (one process row per simulated host)
* root span id   -> ``tid`` (one thread row per request tree, so a whole
                    client op stacks as nested slices on one track)
* remaining tags -> ``args``

``validate_chrome_trace`` is shared by the unit tests and the CI job that
uploads a traced fig5 point as a workflow artifact.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "spans_jsonl",
    "write_spans_jsonl",
    "validate_chrome_trace",
]


def _root_of(span: Span, by_id: Dict[int, Span]) -> int:
    seen = set()
    cur = span
    while cur.parent_id is not None and cur.parent_id in by_id:
        if cur.span_id in seen:  # defensive: cycles cannot normally happen
            break
        seen.add(cur.span_id)
        cur = by_id[cur.parent_id]
    return cur.span_id


def chrome_trace(tracer: Tracer, metadata: Optional[dict] = None) -> dict:
    """Render finished spans as a Chrome trace_event JSON object."""
    spans = tracer.finished_spans()
    by_id = {s.span_id: s for s in tracer.spans}
    finished_ids = {s.span_id for s in spans}
    root_cache: Dict[int, int] = {}
    events: List[dict] = []
    pids: Dict[str, None] = {}
    for span in spans:
        root = root_cache.get(span.span_id)
        if root is None:
            root = _root_of(span, by_id)
            root_cache[span.span_id] = root
        host = str(span.tags.get("host", "sim"))
        pids.setdefault(host, None)
        args = {k: v for k, v in span.tags.items() if k != "host"}
        args["span_id"] = span.span_id
        # Only reference parents that are themselves exported: an op still
        # in flight when the run ends leaves an unfinished root behind.
        if span.parent_id is not None and span.parent_id in finished_ids:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": round(span.start_ms * 1000.0, 3),   # simulated ms -> us
            "dur": round(span.duration_ms * 1000.0, 3),
            "pid": host,
            "tid": f"req-{root}",
            "cat": span.name.split(".", 1)[0],
            "args": args,
        })
    # Process-name metadata rows make Perfetto group tracks by host.
    for host in pids:
        events.append({
            "name": "process_name", "ph": "M", "pid": host, "tid": "meta",
            "args": {"name": host},
        })
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "time_unit": "us"},
    }
    if metadata:
        doc["otherData"].update(metadata)
    return doc


def write_chrome_trace(tracer: Tracer, path: str, metadata: Optional[dict] = None) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, metadata), fh)
        fh.write("\n")


def spans_jsonl(tracer: Tracer) -> List[str]:
    """One JSON object per span, in creation (span id) order."""
    return [json.dumps(s.as_dict(), sort_keys=True) for s in tracer.spans]


def write_spans_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w") as fh:
        for line in spans_jsonl(tracer):
            fh.write(line)
            fh.write("\n")


def validate_chrome_trace(doc: dict) -> List[str]:
    """Check ``doc`` against the trace_event schema; return problem list.

    Empty list means valid.  Checks the structural requirements Perfetto
    and ``about://tracing`` actually enforce: a ``traceEvents`` array,
    every event has ``name``/``ph``/``pid``, duration events have
    non-negative numeric ``ts`` and ``dur``, and parent references in
    ``args`` resolve to span ids present in the trace.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    span_ids = set()
    for ev in events:
        if isinstance(ev, dict) and ev.get("ph") == "X":
            sid = ev.get("args", {}).get("span_id")
            if sid is not None:
                span_ids.add(sid)
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        ph = ev.get("ph")
        if ph == "X":
            for key in ("ts", "dur"):
                val = ev.get(key)
                if not isinstance(val, (int, float)):
                    problems.append(f"{where}: {key!r} not numeric")
                elif val < 0:
                    problems.append(f"{where}: {key!r} negative ({val})")
            args = ev.get("args")
            if not isinstance(args, dict):
                problems.append(f"{where}: args missing or not an object")
            else:
                parent = args.get("parent_id")
                if parent is not None and parent not in span_ids:
                    problems.append(f"{where}: parent_id {parent} not in trace")
        elif ph == "M":
            pass  # metadata rows are free-form
        elif not isinstance(ph, str) or len(ph) != 1:
            problems.append(f"{where}: bad ph {ph!r}")
    return problems
