"""Cross-layer span tracing (Dapper-style request tracing).

A :class:`Span` is one timed unit of work — a client operation, a
namenode handler, an NDB transaction attempt, a replica round-trip —
linked to its parent by span id, so a whole request can be reassembled
into a tree: client op -> NN handler -> NDB txn -> TC RPCs -> replica
reads, or kclient -> MDS -> OSD on the CephFS side.

Design constraints (the "overhead contract", see DESIGN.md):

* **Zero cost when off.**  Components reach the tracer through
  ``env.obs`` which is ``None`` by default; every instrumentation site is
  a single ``if env.obs is not None`` guard.  No tracer object exists in
  an untraced run.
* **Schedule neutrality when on.**  The tracer only *records*: it never
  schedules kernel events, consumes sequence numbers, or draws from any
  RNG.  Span ids come from a private monotonic counter and timestamps are
  read straight off ``env.now``, so a traced run replays the exact
  (time, priority, seq) schedule of an untraced one
  (``tests/obs/test_golden_schedule.py`` pins this).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One recorded unit of work.  ``end_ms is None`` while still open."""

    __slots__ = ("span_id", "parent_id", "name", "start_ms", "end_ms", "tags")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_ms: float,
        end_ms: Optional[float] = None,
        tags: Optional[Dict[str, Any]] = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.tags = tags if tags is not None else {}

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    @property
    def finished(self) -> bool:
        return self.end_ms is not None

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "tags": self.tags,
        }

    def __repr__(self) -> str:
        state = f"{self.duration_ms:.3f}ms" if self.finished else "open"
        return f"<Span #{self.span_id} {self.name!r} parent={self.parent_id} {state}>"


class Tracer:
    """Collects spans for one simulation run.

    Attach to an environment via :meth:`repro.obs.ObsContext.attach`; the
    simulated clock is read from the attached environment.  Span ids are
    dense positive integers in creation order, which keeps traces
    deterministic and diffable across runs.
    """

    def __init__(self, max_spans: int = 2_000_000):
        self.spans: List[Span] = []
        self.max_spans = max_spans
        self.dropped = 0
        self._next_id = 1
        self._env = None  # set by ObsContext.attach

    # -- recording --------------------------------------------------------
    def start(self, name: str, parent: Optional[object] = None, **tags) -> Span:
        """Open a span at the current simulated time.

        ``parent`` may be a :class:`Span`, a raw span id (as carried in
        message metadata across hosts), or ``None`` for a root span.
        """
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return Span(0, parent_id, name, self._now(), tags=tags)
        span = Span(self._next_id, parent_id, name, self._now(), tags=tags)
        self._next_id += 1
        self.spans.append(span)
        return span

    def finish(self, span: Span, **tags) -> Span:
        """Close ``span`` at the current simulated time."""
        span.end_ms = self._now()
        if tags:
            span.tags.update(tags)
        return span

    def record(
        self,
        name: str,
        start_ms: float,
        end_ms: float,
        parent: Optional[object] = None,
        **tags,
    ) -> Span:
        """Record a retrospective, already-finished span.

        Used where the start time is only known in hindsight — e.g. the
        lock table records a wait span at grant time, having noted when
        the request queued (a wait that was granted immediately records
        nothing at all).
        """
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return Span(0, parent_id, name, start_ms, end_ms, tags)
        span = Span(self._next_id, parent_id, name, start_ms, end_ms, tags)
        self._next_id += 1
        self.spans.append(span)
        return span

    def event(self, name: str, parent: Optional[object] = None, **tags) -> Span:
        """Record an instantaneous event (zero-duration span)."""
        now = self._now()
        return self.record(name, now, now, parent=parent, **tags)

    # -- views ------------------------------------------------------------
    def finished_spans(self) -> List[Span]:
        return [s for s in self.spans if s.finished]

    def children_index(self) -> Dict[Optional[int], List[Span]]:
        """Map parent span id -> child spans (roots under ``None``)."""
        index: Dict[Optional[int], List[Span]] = {}
        for span in self.spans:
            index.setdefault(span.parent_id, []).append(span)
        return index

    def roots(self) -> List[Span]:
        known = {s.span_id for s in self.spans}
        return [s for s in self.spans if s.parent_id is None or s.parent_id not in known]

    def _now(self) -> float:
        env = self._env
        return env._now if env is not None else 0.0
