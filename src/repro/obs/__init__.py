"""Observability layer: span tracing, metrics registry, exporters.

Usage (the CLI's ``--trace`` flag does exactly this)::

    from repro.obs import ObsContext

    obs = ObsContext()
    point = run_point("HopsFS-CL (3,3)", 6, obs=obs)
    write_chrome_trace(obs.tracer, "trace.json")
    print(breakdown_table(obs.tracer).render())

Attaching sets ``env.obs``; every instrumented component checks
``env.obs is not None`` exactly once on its hot path and does nothing
when it is ``None`` (the default), so untraced runs pay one attribute
load per instrumentation point.  See DESIGN.md "Observability".
"""

from __future__ import annotations

from typing import Optional

from .breakdown import (OpBreakdown, breakdown_table, phase_breakdown,
                        phase_breakdown_json)
from .export import (
    chrome_trace,
    spans_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .slo import Alert, SloEngine, SloSpec, default_slos
from .timeseries import OpWindow, TimeSeriesHub, WindowedSeries
from .tracer import Span, Tracer

# NOTE: repro.obs.detect (the chaos detector-scoring harness) is *not*
# re-exported here: it imports repro.chaos, which imports the experiment
# setups, which import this package — import it as ``repro.obs.detect``.

__all__ = [
    "ObsContext",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "TimeSeriesHub",
    "WindowedSeries",
    "OpWindow",
    "SloSpec",
    "SloEngine",
    "Alert",
    "default_slos",
    "chrome_trace",
    "write_chrome_trace",
    "spans_jsonl",
    "write_spans_jsonl",
    "validate_chrome_trace",
    "OpBreakdown",
    "phase_breakdown",
    "phase_breakdown_json",
    "breakdown_table",
    "register_deployment_metrics",
]


class ObsContext:
    """One run's observability state: tracer + metrics registry, and an
    optional windowed time-series hub (``timeseries``, default ``None`` —
    instrumentation sites guard on it, so plain traced runs pay nothing
    for the sampler)."""

    __slots__ = ("tracer", "registry", "timeseries", "env")

    def __init__(self, tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None,
                 timeseries: Optional[TimeSeriesHub] = None):
        self.tracer = tracer if tracer is not None else Tracer()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.timeseries = timeseries
        self.env = None

    def attach(self, env) -> "ObsContext":
        """Bind to a simulation environment (sets ``env.obs``)."""
        self.env = env
        self.tracer._env = env
        if self.timeseries is not None:
            self.timeseries.bind(self)
        env.obs = self
        return self

    def detach(self) -> None:
        if self.env is not None:
            self.env.obs = None
            self.env = None


def register_deployment_metrics(obs: ObsContext, adapter) -> None:
    """Register callable-backed gauges over a deployment's live counters.

    The components keep their plain-int attributes (tests compare them
    directly); the registry exposes them uniformly so ``snapshot()``
    enumerates leader-election churn, re-replication work, lock timeouts,
    drops, etc., without each report knowing component internals.
    """
    reg = obs.registry
    network = getattr(adapter, "network", None)
    if network is not None:
        reg.gauge("net.dropped_messages", lambda n=network: n.dropped_messages)
    # Experiment adapters call it ``deployment``; chaos targets call it ``fs``.
    deployment = getattr(adapter, "deployment", None) or getattr(adapter, "fs", None)
    if deployment is not None:  # HopsFS
        reg.gauge("nn.ops_served",
                  lambda d=deployment: sum(nn.ops_served for nn in d.namenodes))
        reg.gauge("nn.ops_failed",
                  lambda d=deployment: sum(nn.ops_failed for nn in d.namenodes))
        reg.gauge("blocks.rereplications",
                  lambda d=deployment: d.namenodes[0].block_manager.rereplications)
        reg.gauge("ndb.active_transactions",
                  lambda d=deployment: d.ndb.active_transactions)
        reg.gauge("ndb.lock.timeouts",
                  lambda d=deployment: sum(
                      dn.locks.timeouts_fired for dn in d.ndb.datanodes.values()))
        reg.gauge("nn.ops_shed",
                  lambda d=deployment: sum(nn.ops_shed for nn in d.namenodes))
        reg.gauge("nn.retry_cache.entries",
                  lambda d=deployment: sum(
                      len(nn.retry_cache) for nn in d.namenodes
                      if nn.retry_cache is not None))
        reg.gauge("net.late_replies",
                  lambda d=deployment: d.network.late_replies)
    cluster = getattr(adapter, "cluster", None)
    if cluster is not None and hasattr(cluster, "mds_list"):  # CephFS
        reg.gauge("mds.ops_served",
                  lambda c=cluster: sum(m.ops_served for m in c.mds_list))
        reg.gauge("mds.journal_flushes",
                  lambda c=cluster: sum(m.journal_flushes for m in c.mds_list))
        reg.gauge("mds.failovers", lambda c=cluster: getattr(c, "failovers", 0))
