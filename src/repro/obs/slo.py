"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SloSpec` declares an objective over one windowed op series
(availability, p99-style latency, or throughput floor) together with an
error budget.  The :class:`SloEngine` subscribes to a
:class:`~repro.obs.timeseries.TimeSeriesHub` and evaluates every sealed
window with the SRE multi-window burn-rate rule: an alert fires only
when *both* a short (fast) and a long (slow) trailing window burn the
error budget faster than ``burn_threshold``, and resolves once the fast
burn drops under ``resolve_threshold``.  The fast window keeps detection
latency low; the slow window suppresses one-window blips, which is what
keeps fault-free baseline runs alert-free.

Budgets are burned ops-weighted: over a span, ``burn = (Σ bad / Σ ops) /
error_budget``.  "Bad" per kind:

* ``availability`` — the op failed.
* ``latency`` — the op took longer than the calibrated threshold
  (baseline p99 × ``latency_mult``, floored at ``latency_floor_ms``); a
  gray-degraded run burns this budget long before ops outright fail.
* ``throughput`` — the *window* carried fewer ops than
  ``drop_fraction`` × the calibrated baseline ops/window (weighted as
  one bad unit per window).  This is the detector for total silence: a
  closed-loop driver whose every request is stuck produces no errors at
  all, only missing completions (see TimelineCollector's caveat).

Calibration is in-band and per-run: the first ``calibration_windows``
traffic-carrying windows (all pre-fault in every chaos scenario — the
earliest fault fires at t=60ms) establish the baseline p99 and
ops/window.  No evaluation happens until calibration completes, so the
engine self-adapts to each of the nine setups' very different latency
profiles instead of hard-coding per-setup thresholds.

Evaluation is *relative*: decisions depend only on the sequence of
window aggregates, never on absolute window indices or wall-clock
anchors — shifting the whole timeline by a constant number of windows
shifts alerts by exactly that constant (pinned by a hypothesis test).

Alerts are observability outputs, not simulation inputs: firing an
alert records spans/counters but never schedules events, so the engine
inherits the hub's schedule-neutrality.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["SloSpec", "Alert", "SloEngine", "default_slos",
           "per_az_slos", "component_liveness_slos"]

_KINDS = ("availability", "latency", "latency_mean", "throughput")


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over a windowed op series.

    Kinds and their "bad/total" budget units:

    * ``availability`` — bad = failed ops, total = ops.
    * ``latency`` — bad = ops slower than the calibrated tail threshold
      (plus failed ops), total = ops.  Catches coarse gray degradation.
    * ``latency_mean`` — bad = excess latency mass above the calibrated
      baseline mean (``max(0, total_ms − baseline_mean·ops)``), total =
      expected mass (``baseline_mean·ops``).  Catches *subtle* gray
      degradation that shifts the whole distribution without growing the
      tail past the p99 threshold (e.g. +5ms on one inter-AZ link).
    * ``throughput`` — bad = 1 per window carrying fewer ops than
      ``drop_fraction`` × baseline, total = 1 per window.  Catches total
      silence, which a closed-loop driver reports as *no* completions
      rather than failed ones.
    """

    name: str
    kind: str                      # availability | latency | latency_mean | throughput
    series: str = "client.ops"
    error_budget: float = 0.01     # allowed bad fraction
    fast_windows: int = 3          # detection window (short)
    slow_windows: int = 12         # confirmation window (long)
    burn_threshold: float = 2.0    # fire when the fast burn exceeds this …
    slow_burn_threshold: Optional[float] = None  # … and the slow burn this
    resolve_threshold: float = 1.0 # resolve when fast burn drops below
    min_ops: int = 4               # spans with fewer ops are inconclusive
    calibration_windows: int = 4   # traffic windows used for baselines
    latency_mult: float = 3.0      # threshold = baseline p99 × mult …
    latency_floor_ms: float = 5.0  # … but never below this
    drop_fraction: float = 0.25    # throughput floor vs baseline ops/window

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not (0.0 < self.error_budget <= 1.0):
            raise ValueError("error_budget must be in (0, 1]")
        if self.fast_windows <= 0 or self.slow_windows < self.fast_windows:
            raise ValueError("need 0 < fast_windows <= slow_windows")

    @property
    def slow_threshold(self) -> float:
        return (self.slow_burn_threshold if self.slow_burn_threshold is not None
                else self.burn_threshold)


@dataclass
class Alert:
    """One fired (and possibly resolved) burn-rate alert."""

    slo: str
    kind: str
    series: str
    fired_index: int
    fired_ms: float
    resolved_index: Optional[int] = None
    resolved_ms: Optional[float] = None
    peak_burn: float = 0.0
    windows: int = 0               # sealed windows spent in the alert
    detail: str = ""

    @property
    def active(self) -> bool:
        return self.resolved_index is None

    def as_dict(self) -> dict:
        return {
            "slo": self.slo,
            "kind": self.kind,
            "series": self.series,
            "fired_ms": self.fired_ms,
            "resolved_ms": self.resolved_ms,
            "peak_burn": round(self.peak_burn, 3),
            "windows": self.windows,
            "detail": self.detail,
        }


class _SpecState:
    """Per-spec trailing-window state."""

    __slots__ = ("spec", "ring", "calibrating", "calib_count", "calib_ops",
                 "calib_total_ms", "calib_p99", "baseline_ops", "baseline_mean_ms",
                 "latency_threshold_ms", "active", "retired")

    def __init__(self, spec: SloSpec):
        self.spec = spec
        # ring rows: (bad_units, total_units, ops) per sealed window.
        self.ring: deque = deque(maxlen=spec.slow_windows)
        self.calibrating = True
        self.calib_count = 0
        self.calib_ops = 0
        self.calib_p99 = 0.0       # max of per-window p99s seen in calibration
        self.calib_total_ms = 0.0
        self.baseline_ops = 0.0
        self.baseline_mean_ms = 0.0
        self.latency_threshold_ms = spec.latency_floor_ms
        self.active: Optional[Alert] = None
        self.retired = False

    def burn(self, span: int) -> float:
        rows = list(self.ring)[-span:]
        if sum(r[2] for r in rows) < self.spec.min_ops:
            return 0.0
        total = sum(r[1] for r in rows)
        if total <= 0:
            return 0.0
        bad = sum(r[0] for r in rows)
        return (bad / total) / self.spec.error_budget


class SloEngine:
    """Evaluates SLO specs against a hub's sealed windows."""

    def __init__(self, specs: List[SloSpec], hub, obs=None,
                 horizon_ms: Optional[float] = None,
                 load_window_ms: Optional[float] = None):
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate SLO names")
        self.specs = list(specs)
        self.hub = hub
        self.obs = obs
        #: Windows ending after the horizon are not evaluated: offered load
        #: stops at the scenario's load_ms, and the quiet drain phase would
        #: otherwise read as a throughput outage.  ``horizon_ms`` pins it
        #: absolutely; ``load_window_ms`` anchors it to the first window
        #: that carries monitored traffic (scenario harnesses don't know
        #: the absolute load start up front — election and seeding run
        #: first).
        self.horizon_ms = horizon_ms
        self.load_window_ms = load_window_ms
        self.alerts: List[Alert] = []
        self._states: Dict[str, _SpecState] = {s.name: _SpecState(s) for s in specs}
        hub.subscribe(self._on_window)

    # -- window evaluation -------------------------------------------------
    def _on_window(self, index: int, start_ms: float, end_ms: float,
                   ops: dict, counters: dict) -> None:
        if self.horizon_ms is None and self.load_window_ms is not None:
            if any(
                ops.get(s.series) is not None and ops[s.series].count > 0
                for s in self.specs
            ):
                self.horizon_ms = start_ms + self.load_window_ms
        if self.horizon_ms is not None and end_ms > self.horizon_ms:
            self._resolve_all(index, end_ms, reason="horizon")
            return
        self._apply_retirements(index, end_ms, counters)
        for state in self._states.values():
            if state.retired:
                continue
            self._eval(state, index, start_ms, end_ms, ops.get(state.spec.series))

    def _apply_retirements(self, index: int, end_ms: float,
                           counters: dict) -> None:
        """Exempt legitimately retired components from their floors.

        A graceful decommission emits ``component.retired.<series>`` (a
        windowed counter) at *decision* time — before the drained server
        goes silent — so its liveness floor stops evaluating instead of
        burning on silence that an operator ordered.  Preemptions emit no
        such signal: a spot kill is a fault the monitor must still catch.
        Retirement is permanent for the run (the handle is never reused).
        """
        prefix = "component.retired."
        retired_series = {name[len(prefix):]
                          for name in counters if name.startswith(prefix)}
        if not retired_series:
            return
        for state in self._states.values():
            if state.retired or state.spec.series not in retired_series:
                continue
            state.retired = True
            alert = state.active
            if alert is not None:
                alert.resolved_index = index
                alert.resolved_ms = end_ms
                alert.detail += " (resolved:retired)"
                state.active = None
                self._emit("slo.alert.resolve", alert, end_ms)
            if self.obs is not None:
                self.obs.registry.counter("slo.spec.retired").inc()

    def _eval(self, state: _SpecState, index: int, start_ms: float,
              end_ms: float, window) -> None:
        spec = state.spec
        count = window.count if window is not None else 0

        if state.calibrating:
            if count >= spec.min_ops:
                state.calib_count += 1
                state.calib_ops += count
                state.calib_total_ms += window.total_ms
                p99 = window.quantile(0.99, self.hub.buckets)
                if p99 > state.calib_p99:
                    state.calib_p99 = p99
                if state.calib_count >= spec.calibration_windows:
                    state.baseline_ops = state.calib_ops / state.calib_count
                    state.baseline_mean_ms = state.calib_total_ms / state.calib_ops
                    state.latency_threshold_ms = max(
                        spec.latency_floor_ms, state.calib_p99 * spec.latency_mult)
                    state.calibrating = False
            return

        # Bad/total/ops units for this window, per kind.
        if spec.kind == "availability":
            bad, total, ops = (window.errors, count, count) if window is not None else (0, 0, 0)
        elif spec.kind == "latency":
            if window is not None:
                slow_ops = self._count_above(window, state.latency_threshold_ms)
                # Failed ops burn the latency budget too: a timed-out op is
                # not "fast", it is missing.
                bad, total, ops = slow_ops + window.errors, count, count
            else:
                bad, total, ops = 0, 0, 0
        elif spec.kind == "latency_mean":
            if window is not None and count:
                expected = state.baseline_mean_ms * count
                bad, total, ops = max(0.0, window.total_ms - expected), expected, count
            else:
                bad, total, ops = 0.0, 0.0, 0
        else:  # throughput
            floor = spec.drop_fraction * state.baseline_ops
            bad, total, ops = (1, 1, count) if count < floor else (0, 1, count)
            ops = max(ops, 1)  # an empty window is itself evidence here
        state.ring.append((bad, total, ops))

        fast = state.burn(spec.fast_windows)
        slow = state.burn(spec.slow_windows)

        if state.active is None:
            if fast >= spec.burn_threshold and slow >= spec.slow_threshold:
                alert = Alert(
                    slo=spec.name, kind=spec.kind, series=spec.series,
                    fired_index=index, fired_ms=end_ms,
                    peak_burn=max(fast, slow), windows=1,
                    detail=(f"fast={fast:.1f}x slow={slow:.1f}x "
                            f"budget={spec.error_budget}"),
                )
                state.active = alert
                self.alerts.append(alert)
                self._emit("slo.alert.fire", alert, end_ms)
        else:
            alert = state.active
            alert.windows += 1
            if fast > alert.peak_burn:
                alert.peak_burn = fast
            if fast < spec.resolve_threshold:
                alert.resolved_index = index
                alert.resolved_ms = end_ms
                state.active = None
                self._emit("slo.alert.resolve", alert, end_ms)

    def _count_above(self, window, threshold_ms: float) -> int:
        """Ops in the window with latency above ``threshold_ms`` (bucketed)."""
        buckets = self.hub.buckets
        n = 0
        for i, c in enumerate(window.bucket_counts):
            if not c:
                continue
            lower = buckets[i - 1] if i > 0 else 0.0
            if lower >= threshold_ms:
                n += c
        return n

    # -- lifecycle ---------------------------------------------------------
    def finalize(self, now: float) -> None:
        """Resolve any still-active alerts at end of run."""
        index = int(now // self.hub.interval_ms)
        self._resolve_all(index, now, reason="finalize")

    def _resolve_all(self, index: int, now_ms: float, reason: str) -> None:
        for state in self._states.values():
            alert = state.active
            if alert is not None:
                alert.resolved_index = index
                alert.resolved_ms = now_ms
                alert.detail += f" (resolved:{reason})"
                state.active = None
                self._emit("slo.alert.resolve", alert, now_ms)

    def _emit(self, event: str, alert: Alert, now_ms: float) -> None:
        obs = self.obs
        if obs is None:
            return
        obs.registry.counter(event).inc()
        obs.tracer.event(event, tags={
            "slo": alert.slo, "kind": alert.kind, "series": alert.series,
            "burn": round(alert.peak_burn, 2), "t_ms": now_ms,
        })

    # -- views -------------------------------------------------------------
    def thresholds(self) -> dict:
        """Calibrated per-spec baselines (for the monitor artifact)."""
        out = {}
        for name, state in sorted(self._states.items()):
            out[name] = {
                "calibrated": not state.calibrating,
                "baseline_ops_per_window": round(state.baseline_ops, 3),
                "baseline_mean_ms": round(state.baseline_mean_ms, 4),
                "latency_threshold_ms": round(state.latency_threshold_ms, 3),
            }
        return out

    def alert_dicts(self) -> List[dict]:
        return [a.as_dict() for a in self.alerts]


def default_slos() -> List[SloSpec]:
    """The monitor's stock objectives over the aggregate client series.

    Tuned against the chaos matrix (see ``repro.obs.detect``): every gray
    and fail-stop scenario trips at least one of these on every setup,
    while fault-free baseline runs stay silent on all nine setups.
    """
    return [
        SloSpec(name="availability", kind="availability",
                error_budget=0.02, burn_threshold=2.0, resolve_threshold=1.0),
        # A true p99 objective: the threshold is the calibrated baseline
        # p99 bucket itself (mult 1.0), and "bad" is any op strictly above
        # that bucket.  By construction ≤1% of baseline ops sit there, so
        # budget 0.01 with burn 2.0 fires when >2% of ops cross it — a
        # whole-distribution shift (degraded link: +5 ms moves ~4% of ops
        # one bucket up) that a mean anchored on cold-cache calibration
        # windows can miss.
        SloSpec(name="latency-p99", kind="latency",
                error_budget=0.01, burn_threshold=2.0, resolve_threshold=1.0,
                latency_mult=1.0, latency_floor_ms=5.0),
        # error_budget 0.25 on excess mean mass ⇒ fast fires at ≥1.5× the
        # baseline mean sustained over the fast span, confirmed by ≥1.25×
        # over the slow span (burn 2.0 / 1.0).  Baseline window means sit
        # within ~1.25× of calibration on every setup; subtle link
        # degradation (+5ms) roughly doubles them.
        SloSpec(name="latency-mean", kind="latency_mean",
                error_budget=0.25, burn_threshold=2.0, slow_burn_threshold=1.0,
                resolve_threshold=1.0),
        # budget 0.25 on bad-window fraction ⇒ fire on 3/3 recent windows
        # under half the baseline op rate, confirmed by ≥3/6 — a sharp
        # collapse detector (partition, AZ outage) that one quiet window
        # cannot trip.
        SloSpec(name="throughput-floor", kind="throughput",
                error_budget=0.25, burn_threshold=2.0, slow_burn_threshold=2.0,
                resolve_threshold=1.0, slow_windows=6,
                drop_fraction=0.5, min_ops=2),
    ]


def _floor_spec(name: str, series: str, drop_fraction: float = 0.5) -> SloSpec:
    return SloSpec(name=name, kind="throughput", series=series,
                   error_budget=0.25, burn_threshold=2.0,
                   slow_burn_threshold=2.0, resolve_threshold=1.0,
                   slow_windows=6, drop_fraction=drop_fraction, min_ops=2)


def per_az_slos(azs: Sequence[int]) -> List[SloSpec]:
    """Throughput floors on each AZ's client series.

    An AZ outage under a closed-loop driver silences that AZ's clients
    without erroring anyone else's — invisible in the aggregate when the
    surviving AZs absorb the head-room, loud in the per-AZ rate.
    Single-AZ setups are covered by the aggregate floor already.
    """
    if len(azs) <= 1:
        return []
    return [_floor_spec(f"throughput-az{az}", f"client.ops.az{az}")
            for az in azs]


def component_liveness_slos(series_names: Sequence[str]) -> List[SloSpec]:
    """Throughput floors on per-component handle series (one per NN/MDS).

    A crashed or isolated server stops *serving* while clients transparently
    fail over around it — e.g. a CephFS client keeps all its ops local to
    the kernel cache and the surviving ranks, so nothing client-visible
    moves.  Components that carried no calibration traffic (standbys)
    never calibrate and therefore never alert.

    The floor is 10% of the calibrated rate, not 50%: per-component
    request rates swing organically (caches warm, subtrees migrate), so
    liveness means *near-silence*, not a rate dip.
    """
    return [_floor_spec(f"liveness-{series}", series, drop_fraction=0.1)
            for series in series_names]
