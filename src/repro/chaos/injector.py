"""The fault injector: a DES process that executes a fault schedule.

Determinism contract: the injector walks the schedule in ``(at_ms,
insertion order)`` order, sleeping to each event's absolute fire time and
executing it synchronously within one simulation instant (node recovery
may itself take simulated time — fragment copies, journal replays — in
which case later events fire no earlier than the recovery completes).
Elastic membership actions (``add_namenode`` / ``decommission_namenode``
/ ``preempt_namenode``) return immediately: drains and preemption
warnings run as background deployment processes so a churn storm never
skews the fire times of later schedule events.
It draws from no RNG, so the same schedule against the same seeded
deployment reproduces a bit-identical kernel dispatch sequence; with
tracing attached it only *records* (``chaos.fault`` spans and per-action
counters), never schedules, keeping traced runs schedule-neutral.
"""

from __future__ import annotations

from .schedule import FaultSchedule
from .targets import ChaosTarget

__all__ = ["FaultInjector"]


class FaultInjector:
    """Executes a :class:`FaultSchedule` against a :class:`ChaosTarget`."""

    def __init__(self, target: ChaosTarget, schedule: FaultSchedule):
        self.target = target
        self.schedule = schedule
        self.env = target.env
        # The executed fault trace: (fire time, action, description).
        self.trace: list[tuple[float, str, str]] = []
        self.process = None

    def start(self):
        """Spawn the injector process; returns it (yieldable to await)."""
        self.process = self.env.process(self.run(), name="chaos-injector")
        return self.process

    def run(self):
        # Event times are relative to injector start: "t=60ms" means 60ms
        # after the load began, regardless of how long election/preload took.
        origin = self.env.now
        for event in self.schedule.events:
            delay = origin + event.at_ms - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            yield from self._execute(event)

    def _execute(self, event):
        obs = self.env.obs
        span = None
        if obs is not None:
            span = obs.tracer.start(
                "chaos.fault",
                action=event.action,
                detail=event.describe(),
                scheduled_ms=event.at_ms,
            )
            obs.registry.counter(f"chaos.fault.{event.action}").inc()
        try:
            detail = yield from self.target.apply(event)
        finally:
            if obs is not None:
                obs.tracer.finish(span)
        self.trace.append((self.env.now, event.action, detail))
