"""Named chaos scenarios: schedule + workload + verification, end to end.

A scenario runs the Spotify mix against a chaos-tuned deployment while a
:class:`FaultInjector` executes its fault schedule, then drains in-flight
work and verifies the full invariant catalogue.  Results carry the
availability timeline, the executed fault trace, the invariant verdicts,
and the kernel dispatch hash (same scenario + setup + seed ⇒ identical
hash, traced or untraced — the determinism contract).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import ReproError
from ..hopsfs.elastic import ElasticConfig, elastic_summary
from ..hopsfs.groupcommit import AsyncCommitConfig
from ..hopsfs.listcache import ListingCacheConfig
from ..hopsfs.robust import RobustConfig
from ..workloads.driver import ClosedLoopDriver
from ..workloads.namespace import generate_namespace
from ..workloads.spotify import SpotifyWorkload
from .injector import FaultInjector
from .invariants import InvariantVerdict, verify_target
from .schedule import FaultSchedule
from .targets import ChaosTarget, build_chaos_target
from .timeline import TimelineCollector

__all__ = [
    "Scenario",
    "SCENARIOS",
    "ChaosRunResult",
    "run_scenario",
    "run_elastic_comparison",
]


@dataclass(frozen=True)
class Scenario:
    """One named fault-injection experiment."""

    name: str
    description: str
    # Builds the schedule against a live target (so it can name that
    # target's AZs and metadata servers).
    schedule_fn: Callable[[ChaosTarget], FaultSchedule]
    load_ms: float = 420.0  # workload runs this long (sim ms)
    drain_ms: float = 400.0  # quiesce window after the workload stops
    clients: int = 12
    bucket_ms: float = 20.0
    seed_large_files: int = 3  # HopsFS: pre-fault block-layer payloads
    # Gray-failure scenarios opt the HopsFS request path into timeouts,
    # deadlines, hedging, the retry cache, and admission control; ``None``
    # keeps the legacy fail-stop path (CephFS targets always ignore it).
    robust: Optional[RobustConfig] = None
    # Async group-commit scenarios opt HopsFS metadata mutations into the
    # early-ack batch path; crashes then race acks against batch commits
    # and the durability-horizon invariant audits every batch's fate.
    async_commit: Optional[AsyncCommitConfig] = None
    # Elastic scenarios opt HopsFS into runtime pool reconfiguration:
    # clients refresh membership from the leader view, and (when
    # ``autoscale``) a load-driven autoscaler grows/shrinks the NN pool.
    elastic: Optional[ElasticConfig] = None
    # Listing-cache scenarios opt HopsFS reads into the pre-materialized
    # listing/attr cache; the listing-consistency invariant then audits
    # every live cache entry against committed NDB state.
    listing_cache: Optional[ListingCacheConfig] = None


def _az_outage_schedule(target: ChaosTarget) -> FaultSchedule:
    az = target.azs[-1]
    return FaultSchedule().az_outage(60.0, az).az_heal(220.0, az)


def _rolling_restarts_schedule(target: ChaosTarget) -> FaultSchedule:
    schedule = FaultSchedule()
    t = 60.0
    for node in target.server_node_ids():
        schedule.crash_node(t, node)
        schedule.recover_node(t + 40.0, node)
        t += 80.0
    return schedule


def _partition_schedule(target: ChaosTarget) -> FaultSchedule:
    if len(target.azs) < 2:
        raise ReproError(f"{target.name} spans one AZ; nothing to partition")
    # Isolate the last AZ; the arbitrator (lowest-loaded AZ, ties to the
    # lowest id) stays on the majority side, which therefore wins.
    minority = (target.azs[-1],)
    majority = tuple(az for az in target.azs if az != target.azs[-1])
    return (
        FaultSchedule()
        .partition(60.0, minority, majority)
        .heal(260.0)
        .recover_all(261.0)
    )


def _degraded_link_schedule(target: ChaosTarget) -> FaultSchedule:
    if len(target.azs) < 2:
        raise ReproError(f"{target.name} spans one AZ; no inter-AZ link to degrade")
    return (
        FaultSchedule()
        .degrade_link(60.0, target.azs[0], target.azs[-1], extra_ms=5.0)
        .restore_links(260.0)
    )


def _gray_degraded_link_schedule(target: ChaosTarget) -> FaultSchedule:
    """A link so slow it looks dead to a bounded RPC, yet never drops."""
    if len(target.azs) < 2:
        raise ReproError(f"{target.name} spans one AZ; no inter-AZ link to degrade")
    return (
        FaultSchedule()
        .degrade_link(60.0, target.azs[0], target.azs[-1], extra_ms=50.0)
        .restore_links(260.0)
    )


def _slow_az_schedule(target: ChaosTarget) -> FaultSchedule:
    """Every link touching one AZ degrades: the AZ is up but sluggish."""
    if len(target.azs) < 2:
        raise ReproError(f"{target.name} spans one AZ; no inter-AZ links to slow")
    slow = target.azs[-1]
    schedule = FaultSchedule()
    for az in target.azs:
        if az != slow:
            schedule.degrade_link(60.0, az, slow, extra_ms=25.0)
    schedule.restore_links(260.0)
    return schedule


def _overload_burst_schedule(target: ChaosTarget) -> FaultSchedule:
    """Crash one metadata server while a client burst saturates the rest."""
    victim = target.server_node_ids()[0]
    return FaultSchedule().crash_node(60.0, victim).recover_node(200.0, victim)


def _async_commit_crash_schedule(target: ChaosTarget) -> FaultSchedule:
    """Crash metadata servers while group-commit batches are lingering.

    Two staggered NN crashes maximise the odds of catching a batch between
    early ack and NDB commit (the ``lost`` state); the durability-horizon
    invariant then audits that every lost batch applied atomically and no
    fsync vouched for an uncommitted horizon.
    """
    servers = target.server_node_ids()
    schedule = FaultSchedule()
    schedule.crash_node(60.0, servers[0]).recover_node(160.0, servers[0])
    if len(servers) > 1:
        schedule.crash_node(230.0, servers[1]).recover_node(330.0, servers[1])
    return schedule


def _nn_churn_schedule(target: ChaosTarget) -> FaultSchedule:
    """Continuous join/leave: grow, then rotate every original NN out."""
    if target.kind != "hopsfs":
        raise ReproError(f"{target.name}: elastic NN membership is HopsFS-only")
    servers = target.server_node_ids()
    schedule = FaultSchedule().add_namenode(40.0)
    schedule.decommission_namenode(90.0, servers[0])
    schedule.add_namenode(140.0)
    if len(servers) > 1:
        schedule.decommission_namenode(190.0, servers[1])
    schedule.add_namenode(240.0)
    if len(servers) > 2:
        schedule.decommission_namenode(290.0, servers[2])
    return schedule


def _spot_preemption_storm_schedule(target: ChaosTarget) -> FaultSchedule:
    """Spot kills take out every original NN, staggered, with 5ms warnings."""
    if target.kind != "hopsfs":
        raise ReproError(f"{target.name}: elastic NN membership is HopsFS-only")
    schedule = FaultSchedule()
    t = 60.0
    for node in target.server_node_ids():
        schedule.preempt_namenode(t, node, warning_ms=5.0)
        t += 90.0
    return schedule


# Elastic scenario configs: fast membership refresh so clients track the
# churn, and (for the storm) an autoscaler whose per-AZ floor provisions
# replacements for preempted capacity.  max == min pins the pool at the
# floor so the storm's only scale-ups are preemption replacements.
_CHURN_ELASTIC = ElasticConfig(autoscale=False, membership_refresh_ms=25.0)
_STORM_ELASTIC = ElasticConfig(
    membership_refresh_ms=25.0,
    autoscale_interval_ms=20.0,
    cooldown_ms=40.0,
    min_nns_per_az=1,
    max_nns_per_az=2,
)


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            "az-outage-under-load",
            "full AZ outage at t=60ms, healed at t=220ms, under the Spotify mix",
            _az_outage_schedule,
        ),
        Scenario(
            "rolling-namenode-restarts",
            "crash and restart each metadata server in turn (40ms outages)",
            _rolling_restarts_schedule,
            load_ms=420.0,
            drain_ms=300.0,
        ),
        Scenario(
            "network-partition",
            "isolate one AZ at t=60ms; heal and recover losers at t=260ms",
            _partition_schedule,
        ),
        Scenario(
            "degraded-link",
            "add 5ms latency on one inter-AZ path between t=60ms and t=260ms",
            _degraded_link_schedule,
            drain_ms=200.0,
        ),
        Scenario(
            "gray-degraded-link",
            "one inter-AZ path gains 50ms (slower than the RPC timeout) "
            "between t=60ms and t=260ms; robust clients time out and route around",
            _gray_degraded_link_schedule,
            drain_ms=300.0,
            robust=RobustConfig(),
        ),
        Scenario(
            "slow-az",
            "every link into one AZ gains 25ms between t=60ms and t=260ms; "
            "hedged reads and breakers keep latency near baseline",
            _slow_az_schedule,
            drain_ms=300.0,
            robust=RobustConfig(),
        ),
        Scenario(
            "overload-burst",
            "a 96-client burst while one metadata server is down; admission "
            "control sheds, retried mutations replay exactly once",
            _overload_burst_schedule,
            clients=96,
            drain_ms=300.0,
            robust=RobustConfig(nn_max_inflight=24),
        ),
        Scenario(
            "async-commit-crash",
            "crash metadata servers mid-linger on the async group-commit "
            "path; acked-but-uncommitted batches settle as lost and the "
            "durability-horizon invariant audits their atomicity",
            _async_commit_crash_schedule,
            drain_ms=300.0,
            robust=RobustConfig(),
            async_commit=AsyncCommitConfig(linger_ms=2.0, max_batch_ops=24),
        ),
        Scenario(
            "nn-churn",
            "NNs join and leave continuously: three adds interleaved with "
            "three graceful decommissions while clients follow the "
            "leader-maintained membership view",
            _nn_churn_schedule,
            drain_ms=400.0,
            robust=RobustConfig(),
            async_commit=AsyncCommitConfig(linger_ms=2.0, max_batch_ops=24),
            elastic=_CHURN_ELASTIC,
        ),
        Scenario(
            "spot-preemption-storm",
            "spot-style preemptions (5ms warning) take out every original "
            "NN in turn; the autoscaler's per-AZ floor provisions "
            "replacements and clients keep availability green via "
            "membership refresh",
            _spot_preemption_storm_schedule,
            drain_ms=400.0,
            robust=RobustConfig(),
            elastic=_STORM_ELASTIC,
        ),
    )
}


@dataclass
class ChaosRunResult:
    """Everything a chaos scenario run produced."""

    scenario: str
    setup: str
    seed: int
    schedule: list[dict]
    fault_trace: list[tuple[float, str, str]]
    timeline: list[dict]
    verdicts: list[InvariantVerdict]
    completed: int
    failed: int
    events: int
    dispatch_hash: str
    # Elastic runs only: reconfiguration log + latency stats and the
    # cost-normalized throughput (ops/s per NN·second provisioned).
    elastic: Optional[dict] = None
    extra: dict = field(default_factory=dict)

    @property
    def all_green(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "setup": self.setup,
            "seed": self.seed,
            "schedule": self.schedule,
            "fault_trace": [list(entry) for entry in self.fault_trace],
            "timeline": self.timeline,
            "invariants": [
                {"name": v.name, "ok": v.ok, "detail": v.detail} for v in self.verdicts
            ],
            "completed": self.completed,
            "failed": self.failed,
            "events": self.events,
            "dispatch_hash": self.dispatch_hash,
            "all_green": self.all_green,
            **({"elastic": self.elastic} if self.elastic is not None else {}),
        }

    def render(self) -> str:
        """Human-readable availability timeline plus invariant verdicts."""
        lines = [
            f"scenario:  {self.scenario}",
            f"setup:     {self.setup} (seed {self.seed})",
            f"ops:       {self.completed} completed, {self.failed} failed",
            f"dispatch:  {self.events} events, hash {self.dispatch_hash[:16]}…",
            "",
            "faults:",
        ]
        for when, action, detail in self.fault_trace:
            lines.append(f"  t={when:8.1f}ms  {action:<14} {detail}")
        lines.append("")
        lines.append("availability timeline:")
        lines.append("  t(ms)      ok fail  avail")
        for row in self.timeline:
            avail = row["availability"]
            if avail is None:
                bar, pct = "(idle)", "  --  "
            else:
                bar = "#" * round(avail * 20)
                pct = f"{avail * 100:5.1f}%"
            lines.append(
                f"  {row['t_ms']:8.0f} {row['ok']:4d} {row['failed']:4d}  {pct} {bar}"
            )
        lines.append("")
        lines.append("invariants:")
        for verdict in self.verdicts:
            lines.append(f"  {verdict}")
        return "\n".join(lines)


def run_scenario(
    scenario: str | Scenario,
    setup: str = "HopsFS-CL (3,3)",
    num_servers: int = 3,
    seed: int = 99,
    obs=None,
    clients: Optional[int] = None,
    load_ms: Optional[float] = None,
) -> ChaosRunResult:
    """Run one named scenario against one setup; returns the full result.

    ``clients`` / ``load_ms`` override the scenario defaults (tests use
    smaller values to keep the suite fast).  Pass an
    :class:`repro.obs.ObsContext` as ``obs`` to trace the run — tracing is
    schedule-neutral, so the dispatch hash must not change.
    """
    if isinstance(scenario, str):
        if scenario not in SCENARIOS:
            raise ReproError(
                f"unknown scenario {scenario!r} (have: {', '.join(sorted(SCENARIOS))})"
            )
        scenario = SCENARIOS[scenario]
    n_clients = clients if clients is not None else scenario.clients
    run_ms = load_ms if load_ms is not None else scenario.load_ms

    target = build_chaos_target(
        setup,
        num_servers=num_servers,
        seed=seed,
        robust=scenario.robust,
        async_commit=scenario.async_commit,
        elastic=scenario.elastic,
        listing_cache=scenario.listing_cache,
    )
    env = target.env
    env.trace = []  # record every dispatched (when, priority, seq)
    if obs is not None:
        obs.attach(env)
        # Callable-backed gauges over live deployment counters; the
        # time-series hub (when present) samples them at window seals.
        from ..obs import register_deployment_metrics

        register_deployment_metrics(obs, target)

    namespace = generate_namespace(
        num_top_dirs=2, dirs_per_top=6, files_per_dir=6, seed=seed
    )
    target.install(namespace)
    schedule = scenario.schedule_fn(target)
    if schedule.end_ms() > run_ms:
        raise ReproError(
            f"{scenario.name}: schedule runs to {schedule.end_ms()}ms "
            f"but the load window is only {run_ms}ms"
        )
    injector = FaultInjector(target, schedule)
    collector = TimelineCollector(bucket_ms=scenario.bucket_ms)
    collector.open_window(0)
    client_list = [target.make_client() for _ in range(n_clients)]
    workload = SpotifyWorkload(namespace, seed=seed)
    driver = ClosedLoopDriver(env, client_list, workload, collector)

    def scenario_proc():
        yield from target.ready()
        yield from target.seed_blocks(scenario.seed_large_files)
        start = env.now
        driver.start()
        fault_proc = injector.start()
        yield fault_proc
        remaining = start + run_ms - env.now
        if remaining > 0:
            yield env.timeout(remaining)
        driver.stop()
        yield env.timeout(scenario.drain_ms)

    env.run_process(scenario_proc(), until=600_000)
    collector.close_window(env.now)
    if obs is not None and obs.timeseries is not None:
        obs.timeseries.finalize(env.now)

    h = hashlib.sha256()
    for when, prio, seq in env.trace:
        h.update(f"{when!r}:{prio}:{seq}\n".encode())

    result = ChaosRunResult(
        scenario=scenario.name,
        setup=target.name,
        seed=seed,
        schedule=schedule.to_dicts(),
        fault_trace=list(injector.trace),
        timeline=collector.timeline(),
        verdicts=verify_target(target),
        completed=collector.completed,
        failed=collector.failed,
        events=env._seq,
        dispatch_hash=h.hexdigest(),
    )
    if scenario.elastic is not None and target.kind == "hopsfs":
        result.elastic = elastic_summary(target.fs, collector.completed, env.now)
    result.extra["target"] = target
    result.extra["collector"] = collector
    return result


def run_elastic_comparison(
    setup: str = "HopsFS-CL (3,3)",
    num_servers: int = 6,
    seed: int = 99,
    clients: int = 6,
    load_ms: float = 300.0,
) -> dict:
    """Fixed-pool vs autoscaled cost-normalized throughput, same workload.

    Both legs run the identical Spotify mix (fault-free) on an
    over-provisioned pool of ``num_servers`` NNs.  The fixed leg keeps
    every NN for the whole run; the autoscaled leg lets the scale-in
    policy retire idle NNs to the per-AZ floor, so the same completed-op
    count is bought with fewer NN·seconds.  Each leg reports its own
    dispatch hash — both are deterministic, rerun-identical artifacts.
    """

    def _no_faults(target: ChaosTarget) -> FaultSchedule:
        if target.kind != "hopsfs":
            raise ReproError(
                f"{target.name}: elastic NN membership is HopsFS-only"
            )
        return FaultSchedule()

    legs = {
        "fixed": Scenario(
            "elastic-fixed",
            "over-provisioned fixed NN pool (cost baseline)",
            _no_faults,
            load_ms=load_ms,
            drain_ms=200.0,
            clients=clients,
            robust=RobustConfig(),
            elastic=ElasticConfig(autoscale=False),
        ),
        "autoscaled": Scenario(
            "elastic-autoscaled",
            "same load; the autoscaler retires idle NNs to the per-AZ floor",
            _no_faults,
            load_ms=load_ms,
            drain_ms=200.0,
            clients=clients,
            robust=RobustConfig(),
            elastic=ElasticConfig(
                autoscale_interval_ms=20.0,
                cooldown_ms=40.0,
                min_nns_per_az=1,
                max_nns_per_az=2,
                scale_down_utilization=0.05,
            ),
        ),
    }
    out = {"setup": setup, "num_servers": num_servers, "seed": seed, "legs": {}}
    for key, leg in legs.items():
        result = run_scenario(
            leg, setup=setup, num_servers=num_servers, seed=seed
        )
        out["legs"][key] = {
            "scenario": leg.name,
            "completed": result.completed,
            "failed": result.failed,
            "all_green": result.all_green,
            "dispatch_hash": result.dispatch_hash,
            "elastic": result.elastic,
        }
        out["setup"] = result.setup
    fixed = out["legs"]["fixed"]["elastic"]
    autoscaled = out["legs"]["autoscaled"]["elastic"]
    if fixed and autoscaled and fixed["ops_per_nn_second"]:
        out["cost_efficiency_gain"] = (
            (autoscaled["ops_per_nn_second"] or 0.0) / fixed["ops_per_nn_second"]
        )
    return out
