"""Deterministic fault injection for both stacks (the chaos layer).

Declarative :class:`FaultSchedule`\\ s of timed :class:`FaultEvent`\\ s —
node crashes/recoveries, AZ outages, network partitions, degraded links —
are executed inside the DES by a :class:`FaultInjector` against a
:class:`ChaosTarget` wrapping either HopsFS/NDB or CephFS.  Runs are
schedule-deterministic (same seed + schedule ⇒ bit-identical kernel
dispatch sequence) and verified against the invariant catalogue in
:mod:`repro.chaos.invariants`.  ``python -m repro chaos`` drives the
named scenarios in :mod:`repro.chaos.scenarios`.
"""

from .injector import FaultInjector
from .invariants import (
    InvariantVerdict,
    verify_cephfs,
    verify_hopsfs,
    verify_target,
)
from .schedule import ACTIONS, FaultEvent, FaultSchedule, parse_node
from .scenarios import (
    SCENARIOS,
    ChaosRunResult,
    Scenario,
    run_elastic_comparison,
    run_scenario,
)
from .targets import (
    CephTarget,
    ChaosTarget,
    HopsFsTarget,
    build_chaos_target,
    resolve_setup,
    setup_slug,
)
from .timeline import TimelineCollector

__all__ = [
    "ACTIONS",
    "FaultEvent",
    "FaultSchedule",
    "parse_node",
    "FaultInjector",
    "InvariantVerdict",
    "verify_hopsfs",
    "verify_cephfs",
    "verify_target",
    "ChaosTarget",
    "HopsFsTarget",
    "CephTarget",
    "build_chaos_target",
    "setup_slug",
    "resolve_setup",
    "TimelineCollector",
    "SCENARIOS",
    "Scenario",
    "ChaosRunResult",
    "run_elastic_comparison",
    "run_scenario",
]
