"""The invariant catalogue: contracts a file system must never violate.

Extracted from the original chaos soak test so experiments, the chaos
matrix, and the ``repro chaos`` CLI all verify the same things.  Each
check returns an :class:`InvariantVerdict`; :func:`verify_target` runs
the full catalogue appropriate to a chaos target's stack.

All checks inspect simulator ground truth (fragment stores, lock tables,
block maps) rather than client-visible state, so they catch corruption
the workload would paper over.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "InvariantVerdict",
    "replica_consistency",
    "namespace_integrity",
    "no_stuck_state",
    "block_durability",
    "block_az_coverage",
    "exactly_once",
    "durability_horizon",
    "drained_ack_integrity",
    "membership_convergence",
    "listing_consistency",
    "deadline_compliance",
    "ceph_namespace_integrity",
    "ceph_subtrees_served",
    "verify_hopsfs",
    "verify_cephfs",
    "verify_target",
]


@dataclass(frozen=True)
class InvariantVerdict:
    """Outcome of one invariant check."""

    name: str
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        return f"[{mark}] {self.name}" + (f": {self.detail}" if self.detail else "")


# ---------------------------------------------------------------- HopsFS/NDB
def replica_consistency(fs) -> InvariantVerdict:
    """All live members of each NDB node group agree on committed rows."""
    pm = fs.ndb.partition_map
    mismatches = []
    for group in pm.node_groups:
        live = [fs.ndb.datanodes[a] for a in group if pm.is_up(a)]
        if len(live) < 2:
            continue
        reference = live[0]
        for table in fs.ndb.schema.tables():
            if table.name == "leader":
                continue  # election rows churn continuously
            ref_rows = dict(reference.store.iter_rows(table.name))
            for other in live[1:]:
                other_rows = dict(other.store.iter_rows(table.name))
                if ref_rows != other_rows:
                    diff = set(ref_rows) ^ set(other_rows)
                    mismatches.append(
                        f"{table.name}: {reference.addr} vs {other.addr} "
                        f"({len(diff)} keys differ)"
                    )
    return InvariantVerdict(
        "replica-consistency", not mismatches, "; ".join(mismatches[:5])
    )


def namespace_integrity(fs) -> InvariantVerdict:
    """Every inode's parent exists (no orphans)."""
    inodes = {}
    for dn in fs.ndb.datanodes.values():
        if not dn.running:
            continue
        for _pk, row in dn.store.iter_rows("inodes"):
            inodes[row.id] = row
    ids = {row.id for row in inodes.values()} | {1}
    orphans = [
        row
        for row in inodes.values()
        if row.parent_id != 0 and row.parent_id not in ids
    ]
    detail = "; ".join(f"inode {r.id} ({r.name!r}) parent {r.parent_id}" for r in orphans[:5])
    return InvariantVerdict("namespace-integrity", not orphans, detail)


def _in_flight_txids(cluster) -> set[int]:
    """Transactions some running TC touched within the inactivity timeout."""
    now = cluster.env.now
    grace = cluster.config.inactive_timeout_ms
    live = set()
    for dn in cluster.datanodes.values():
        if not dn.running:
            continue
        for txid, txn in dn.txns.items():
            if not txn.finished and now - txn.last_active_ms <= grace:
                live.add(txid)
    return live


def no_stuck_state(fs) -> InvariantVerdict:
    """No *stale* prepared rows, held locks, or registered transactions.

    State owned by a transaction that is live right now is in-flight, not
    stuck — HopsFS's leader election commits ``leader`` rows continuously,
    so a snapshot can always catch one mid-2PC.  Stuck means the owning
    transaction is unknown to every running TC or has been inactive past
    the inactivity timeout (i.e. nothing will ever clean it up).
    """
    live = _in_flight_txids(fs.ndb)
    problems = []
    for dn in fs.ndb.datanodes.values():
        if not dn.running:
            continue
        prepared = sum(1 for _key, txid in dn.store.iter_prepared() if txid not in live)
        if prepared:
            problems.append(f"{dn.addr}: {prepared} stale prepared rows")
        locked = sum(
            1
            for _key, txids in dn.locks.active_row_txids().items()
            if not txids <= live
        )
        if locked:
            problems.append(f"{dn.addr}: {locked} stale locked rows")
    stale_txns = [txid for txid in fs.ndb.registered_txids() if txid not in live]
    if stale_txns:
        problems.append(f"{len(stale_txns)} stale registered transactions")
    return InvariantVerdict("no-stuck-state", not problems, "; ".join(problems[:5]))


def _block_replicas(fs):
    """Ground truth: block id -> set of block DNs physically holding it."""
    holders: dict[int, set] = {}
    for dn in fs.block_datanodes:
        for block_id in dn.blocks:
            holders.setdefault(block_id, set()).add(dn)
    return holders


def block_durability(fs) -> InvariantVerdict:
    """Every block ever stored still has at least one live replica."""
    lost = []
    for block_id, dns in sorted(_block_replicas(fs).items()):
        if not any(dn.running for dn in dns):
            lost.append(str(block_id))
    return InvariantVerdict(
        "block-durability", not lost, f"blocks with no live replica: {','.join(lost[:5])}"
        if lost else "",
    )


def block_az_coverage(fs, replication: int = 3) -> InvariantVerdict:
    """AZ-aware placements keep >=1 replica per AZ (up to ``replication``).

    The paper's Section IV-C guarantee: after an AZ outage and the
    leader-driven re-replication, every block again spans
    ``min(replication, num_azs)`` distinct AZs.  Only meaningful for
    AZ-aware deployments spanning more than one AZ.
    """
    if not fs.az_aware or len(fs.azs) < 2:
        return InvariantVerdict("block-az-coverage", True, "n/a (not AZ-aware)")
    want = min(replication, len(fs.azs))
    thin = []
    for block_id, dns in sorted(_block_replicas(fs).items()):
        azs = {dn.az for dn in dns if dn.running}
        if len(azs) < want:
            thin.append(f"block {block_id} only in az{sorted(azs)}")
    return InvariantVerdict("block-az-coverage", not thin, "; ".join(thin[:5]))


def exactly_once(fs) -> InvariantVerdict:
    """No retried mutation was ever applied twice (robust mode).

    Every NN appends ``(retry_id, op)`` to the deployment's shared
    mutation ledger when it *executes* (not replays) a retried mutation;
    a retry id appearing twice means the RetryCache failed and a retry
    re-ran a committed mutation.  Vacuously green when the robust request
    path is off (the ledger stays empty).
    """
    ledger = getattr(fs, "mutation_ledger", None) or []
    seen: dict = {}
    duplicates = []
    for retry_id, op in ledger:
        if retry_id in seen:
            duplicates.append(f"{retry_id} applied twice ({seen[retry_id]}, {op})")
        else:
            seen[retry_id] = op
    detail = "; ".join(duplicates[:5]) if duplicates else f"{len(ledger)} mutations audited"
    return InvariantVerdict("exactly-once", not duplicates, detail)


def durability_horizon(fs) -> InvariantVerdict:
    """Every early-acked group-commit batch's fate matches durable storage.

    The async commit path (``config.async_commit``) acks mutations before
    their batch commits; the contract that keeps the gamble honest:

    - every batch eventually settles (none left ``open`` after a drain);
    - fsync only confirms horizons whose batch actually committed;
    - a *committed* batch's writes are durably visible (unless a later
      committed batch overwrote the same row);
    - an *aborted* batch leaked nothing into the stores;
    - a *lost* batch (crash between ack and commit) applied atomically —
      all of its writes or none, never a torn prefix.

    Audited against fragment-store ground truth on running NDB datanodes,
    restricted to the ``inodes`` and ``retry_cache`` tables (block/lease
    rows interleave with synchronous-path writes).  Rows the synchronous
    path may rewrite later (under-construction or block-bearing inodes)
    are skipped.  Vacuously green without a group ledger (sync path).
    """
    ledger = getattr(fs, "group_ledger", None)
    if ledger is None:
        return InvariantVerdict("durability-horizon", True, "n/a (sync commit path)")
    from ..hopsfs.metadata import INODES_TABLE, RETRY_TABLE, InodeRow
    from ..ndb.schema import TOMBSTONE

    audited_tables = (INODES_TABLE, RETRY_TABLE)
    problems: list[str] = []
    batches = sorted(ledger.batches.values(), key=lambda b: b.batch_id)

    stuck = [b.batch_id for b in batches if b.state == "open"]
    if stuck:
        problems.append(f"batches never settled: {stuck[:5]}")
    committed_ids = {b.batch_id for b in batches if b.state == "committed"}
    phantom = sorted(ledger.confirmed - committed_ids)
    if phantom:
        problems.append(f"fsync confirmed uncommitted horizons: {phantom[:5]}")

    pm = fs.ndb.partition_map

    def ground_truth(table, pk, partition_key):
        """(auditable, found, value) from the row's running replicas."""
        replicas = pm.replicas_for_key(partition_key).all
        any_up = False
        for addr in replicas:
            dn = fs.ndb.datanodes[addr]
            if not dn.running:
                continue
            any_up = True
            found, value = dn.store.lookup(table, pk)
            if found:
                return True, True, value
        return any_up, False, None

    def volatile(value) -> bool:
        """Rows the synchronous path may rewrite after the batch settles."""
        return isinstance(value, InodeRow) and (
            value.under_construction or bool(value.block_ids)
        )

    # Last committed writer per row.  Commit order is settle order, NOT
    # batch-id order: each NN runs its own committer, so a lower-id batch
    # on one NN can reach its NDB commit point after a higher-id batch on
    # another (ids are allocated at open, commits serialize under NDB row
    # locks).
    by_settle = sorted(
        (b for b in batches if b.state == "committed"),
        key=lambda b: (b.settled_ms, b.batch_id),
    )
    last_writer: dict = {}
    for batch in by_settle:
        for table, pk, partition_key, value in batch.writes:
            if table in audited_tables:
                last_writer[(table, pk)] = (batch.batch_id, partition_key, value)

    # A *lost* batch may have applied (the crash was after the NDB commit,
    # the ack just never made it back) and its commit time is unknowable:
    # every row it touched is ambiguous, so not auditable.
    lost_touched: set = set()
    for batch in batches:
        if batch.state != "lost":
            continue
        for table, pk, partition_key, value in batch.writes:
            if table in audited_tables:
                lost_touched.add((table, pk))

    for (table, pk), (bid, partition_key, value) in sorted(
        last_writer.items(), key=lambda item: repr(item[0])
    ):
        if volatile(value):
            continue
        if (table, pk) in lost_touched:
            continue
        auditable, found, actual = ground_truth(table, pk, partition_key)
        if not auditable or volatile(actual):
            continue
        if value is TOMBSTONE:
            if found:
                problems.append(f"batch {bid}: delete of {table}:{pk} not applied")
        elif not found:
            problems.append(f"batch {bid}: write of {table}:{pk} missing")
        elif actual != value:
            problems.append(f"batch {bid}: {table}:{pk} holds a different value")

    for batch in batches:
        if batch.state == "aborted":
            for table, pk, partition_key, value in batch.writes:
                if (
                    table not in audited_tables
                    or value is TOMBSTONE
                    or (table, pk) in last_writer
                    or (table, pk) in lost_touched
                    or volatile(value)
                ):
                    continue
                auditable, found, actual = ground_truth(table, pk, partition_key)
                if auditable and found and actual == value:
                    problems.append(
                        f"aborted batch {batch.batch_id} leaked {table}:{pk}"
                    )
        elif batch.state == "lost":
            applied = 0
            checked = 0
            for table, pk, partition_key, value in batch.writes:
                if (
                    table not in audited_tables
                    or (table, pk) in last_writer
                    or volatile(value)
                ):
                    continue
                auditable, found, actual = ground_truth(table, pk, partition_key)
                if not auditable or volatile(actual):
                    continue
                checked += 1
                if value is TOMBSTONE:
                    applied += 0 if found else 1
                else:
                    applied += 1 if (found and actual == value) else 0
            if 0 < applied < checked:
                problems.append(
                    f"lost batch {batch.batch_id} torn: "
                    f"{applied}/{checked} writes applied"
                )

    detail = (
        "; ".join(problems[:5])
        if problems
        else (
            f"{len(batches)} batches audited "
            f"(horizon {ledger.horizon}, {ledger.lost_acks} lost acks)"
        )
    )
    return InvariantVerdict("durability-horizon", not problems, detail)


def drained_ack_integrity(fs) -> InvariantVerdict:
    """A decommissioned NN acked nothing it didn't commit.

    Graceful drain stops admission, waits out in-flight ops, then flushes
    any open group-commit batch before the NN deregisters and stops.  If
    the drain worked, no early-acked batch owned by the draining NN can
    settle ``lost`` during its drain window — every ack it handed out is
    backed by an NDB commit (or an abort the client saw as an error).
    Vacuously green when no NN was ever decommissioned.
    """
    events = [
        e for e in getattr(fs, "reconfig_log", []) if e.kind == "decommission"
    ]
    if not events:
        return InvariantVerdict(
            "drained-ack-integrity", True, "n/a (no decommissions)"
        )
    problems = []
    for event in events:
        if event.lost_acks_during_drain:
            problems.append(
                f"{event.address}: {event.lost_acks_during_drain} acks "
                f"lost during its drain"
            )
        if event.completed_ms is None:
            problems.append(f"{event.address}: drain never completed")
    detail = (
        "; ".join(problems[:5])
        if problems
        else f"{len(events)} decommissions audited"
    )
    return InvariantVerdict("drained-ack-integrity", not problems, detail)


def membership_convergence(fs) -> InvariantVerdict:
    """After reconfiguration the leader view converged on every running NN.

    Every running NN's election view must list exactly the running NNs
    (departed NNs aged out, joiners registered), and exactly one of them
    must believe it is the leader.  Vacuously green when the pool was
    never reconfigured (static runs already pin election behaviour).
    """
    if not getattr(fs, "reconfig_log", []):
        return InvariantVerdict(
            "membership-convergence", True, "n/a (no reconfigurations)"
        )
    running = [nn for nn in fs.namenodes if nn.running]
    if not running:
        return InvariantVerdict(
            "membership-convergence", False, "no running namenodes"
        )
    expected = sorted(nn.nn_id for nn in running)
    problems = []
    for nn in running:
        view = sorted(entry[0] for entry in nn.election.active)
        if view != expected:
            problems.append(
                f"{nn.addr} sees ids {view}, expected {expected}"
            )
    leaders = [nn.addr for nn in running if nn.election.is_leader]
    if len(leaders) != 1:
        problems.append(f"{len(leaders)} leaders: {leaders}")
    detail = (
        "; ".join(problems[:5])
        if problems
        else f"{len(running)} views converged, leader {leaders[0]}"
    )
    return InvariantVerdict("membership-convergence", not problems, detail)


def listing_consistency(fs) -> InvariantVerdict:
    """No live listing-cache entry diverges from committed NDB state.

    Ground truth is rebuilt from the running NDB datanodes' fragment
    stores (first fragment wins per pk — replica consistency is its own
    invariant).  Every NN's *live* (non-expired) attr entry must equal the
    committed row, and every live listing must equal the committed
    directory's sorted children.  Entries past ``ttl_ms`` are exempt: the
    cache never serves them.  Vacuously green when no NN carries a cache.
    """
    caches = [
        (nn, nn.listing_cache)
        for nn in fs.namenodes
        if nn.listing_cache is not None
    ]
    if not caches:
        return InvariantVerdict(
            "listing-consistency", True, "n/a (listing cache off)"
        )
    truth: dict = {}
    for dn in fs.ndb.datanodes.values():
        if not dn.running:
            continue
        for pk, row in dn.store.iter_rows("inodes"):
            truth.setdefault(pk, row)
    children: dict = {}
    for row in truth.values():
        children.setdefault(row.parent_id, set()).add(row.name)
    now = fs.env.now
    problems = []
    audited = 0
    for nn, cache in caches:
        for pk, row in cache.live_attrs(now):
            audited += 1
            committed = truth.get(pk)
            if committed != row:
                problems.append(
                    f"{nn.addr} attr {pk}: cached {row!r} != committed "
                    f"{committed!r}"
                )
        for dir_id, names in cache.live_listings(now):
            audited += 1
            expected = tuple(sorted(children.get(dir_id, ())))
            if tuple(names) != expected:
                problems.append(
                    f"{nn.addr} listing dir {dir_id}: cached {list(names)} "
                    f"!= committed {list(expected)}"
                )
    detail = (
        "; ".join(problems[:5])
        if problems
        else f"{audited} live entries audited across {len(caches)} NNs"
    )
    return InvariantVerdict("listing-consistency", not problems, detail)


def deadline_compliance(target) -> InvariantVerdict:
    """No op outlived its deadline by more than one hop (robust mode).

    Robust clients record every op that finished later than
    ``deadline + op_timeout_ms`` (one RPC timeout is the allowed slack:
    the last armed timer fires at most one timeout after the deadline).
    Vacuously green for targets whose clients never opted in.
    """
    overruns = []
    audited = 0
    for client in getattr(target, "clients", []):
        recorded = getattr(client, "deadline_overruns", None)
        if recorded is None:
            continue
        audited += 1
        for op, expires_ms, finished_ms in recorded:
            overruns.append(
                f"{client.addr}: {op} finished {finished_ms - expires_ms:.1f}ms "
                f"past its deadline"
            )
    detail = "; ".join(overruns[:5]) if overruns else f"{audited} clients audited"
    return InvariantVerdict("deadline-compliance", not overruns, detail)


# ------------------------------------------------------------------- CephFS
def ceph_namespace_integrity(cluster) -> InvariantVerdict:
    """Every inode on a running MDS has a reachable parent directory."""
    known = set()
    for mds in cluster.mds_list:
        if mds.running:
            known.update(mds.shard.inodes)
    orphans = []
    for mds in cluster.mds_list:
        if not mds.running:
            continue
        for path in mds.shard.inodes:
            parent = path.rsplit("/", 1)[0] or "/"
            if parent != "/" and parent not in known:
                orphans.append(f"{path} (parent {parent} missing)")
    return InvariantVerdict(
        "ceph-namespace-integrity", not orphans, "; ".join(sorted(orphans)[:5])
    )


def ceph_subtrees_served(cluster) -> InvariantVerdict:
    """Every rank resolves (through failover overrides) to a running MDS."""
    unserved = []
    partitioner = cluster.partitioner
    for rank in range(partitioner.num_ranks):
        effective = partitioner._resolve_override(rank)
        mds = cluster.mds_list[effective % len(cluster.mds_list)]
        if not mds.running:
            unserved.append(f"rank {rank} -> {mds.addr} (down)")
    return InvariantVerdict(
        "ceph-subtrees-served", not unserved, "; ".join(unserved[:5])
    )


# ----------------------------------------------------------------- dispatch
def verify_hopsfs(fs) -> list[InvariantVerdict]:
    return [
        replica_consistency(fs),
        namespace_integrity(fs),
        no_stuck_state(fs),
        block_durability(fs),
        block_az_coverage(fs),
        exactly_once(fs),
        durability_horizon(fs),
        drained_ack_integrity(fs),
        membership_convergence(fs),
        listing_consistency(fs),
    ]


def verify_cephfs(cluster) -> list[InvariantVerdict]:
    return [
        ceph_namespace_integrity(cluster),
        ceph_subtrees_served(cluster),
    ]


def verify_target(target) -> list[InvariantVerdict]:
    """Run the invariant catalogue matching a chaos target's stack."""
    if target.kind == "hopsfs":
        return verify_hopsfs(target.fs) + [deadline_compliance(target)]
    if target.kind == "cephfs":
        return verify_cephfs(target.cluster) + [deadline_compliance(target)]
    raise ValueError(f"unknown chaos target kind {target.kind!r}")
