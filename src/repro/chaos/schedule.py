"""Declarative fault schedules: timed fault events against a deployment.

A :class:`FaultSchedule` is a list of :class:`FaultEvent`\\ s, each firing
at a time relative to the moment the injector starts (i.e. when the load
begins, after election/preload).  Schedules are data (they serialize to and
from plain dicts), validated up front, and executed by
:class:`repro.chaos.injector.FaultInjector` — the Jepsen-nemesis shape,
but deterministic: the same schedule against the same seeded deployment
replays a bit-identical DES event sequence (see DESIGN.md
"Fault injection").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import ReproError
from ..types import NodeAddress, NodeKind

__all__ = ["ACTIONS", "FaultEvent", "FaultSchedule", "parse_node"]

# Every action the injector knows how to execute.
ACTIONS = frozenset(
    {
        "crash_node",  # kill one daemon (NDB datanode, NN, block DN, mgmd, MDS, OSD)
        "recover_node",  # restart one crashed daemon (NDB nodes copy fragments)
        "az_outage",  # crash every managed daemon in one AZ
        "az_heal",  # recover every crashed daemon in one AZ
        "partition",  # cut connectivity between two AZ groups
        "heal",  # heal all partitions (and reset NDB arbitration epochs)
        "degrade_link",  # add latency on one inter-AZ path
        "restore_links",  # remove all link degradations
        "recover_all",  # restart every crashed daemon, cluster-wide
        # Elastic serving tier (HopsFS targets only):
        "add_namenode",  # provision a new NN (az= optional placement hint)
        "decommission_namenode",  # gracefully drain an NN out of the pool
        "preempt_namenode",  # spot-style kill: warning window, then the plug
    }
)

# Longest kind prefixes first so "ndb_mgmd1" never parses as "ndbd".
_KIND_PREFIXES = sorted(
    ((kind.value, kind) for kind in NodeKind), key=lambda kv: -len(kv[0])
)


def parse_node(node: str) -> NodeAddress:
    """Parse a node id like ``"ndbd3"`` / ``"nn1"`` into a NodeAddress."""
    for prefix, kind in _KIND_PREFIXES:
        if node.startswith(prefix) and node[len(prefix):].isdigit():
            return NodeAddress(kind, int(node[len(prefix):]))
    raise ReproError(f"unparseable node id {node!r} (expected e.g. 'ndbd1', 'nn2')")


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault.  Which fields apply depends on ``action``."""

    at_ms: float
    action: str
    node: Optional[str] = None  # crash_node / recover_node
    az: Optional[int] = None  # az_outage / az_heal
    groups: Optional[tuple[tuple[int, ...], tuple[int, ...]]] = None  # partition
    az_pair: Optional[tuple[int, int]] = None  # degrade_link
    extra_ms: float = 0.0  # degrade_link latency / preempt_namenode warning

    def __post_init__(self) -> None:
        # Normalize numerics so repr() — and thus fingerprint() — is stable
        # across int/float spellings of the same schedule.
        object.__setattr__(self, "at_ms", float(self.at_ms))
        object.__setattr__(self, "extra_ms", float(self.extra_ms))

    def validate(self) -> None:
        if self.action not in ACTIONS:
            raise ReproError(f"unknown fault action {self.action!r}")
        if self.at_ms < 0:
            raise ReproError(f"{self.action}: negative fire time {self.at_ms!r}")
        if self.action in ("crash_node", "recover_node"):
            if not self.node:
                raise ReproError(f"{self.action} needs node=")
            parse_node(self.node)
        elif self.action in ("az_outage", "az_heal"):
            if self.az is None:
                raise ReproError(f"{self.action} needs az=")
        elif self.action == "partition":
            if not self.groups or len(self.groups) != 2:
                raise ReproError("partition needs groups=((..azs..), (..azs..))")
            a, b = frozenset(self.groups[0]), frozenset(self.groups[1])
            if not a or not b or a & b:
                raise ReproError(f"partition groups invalid: {self.groups!r}")
        elif self.action == "degrade_link":
            if not self.az_pair or len(self.az_pair) != 2:
                raise ReproError("degrade_link needs az_pair=(az_a, az_b)")
            if self.extra_ms <= 0:
                raise ReproError(f"degrade_link needs extra_ms > 0, got {self.extra_ms!r}")
        elif self.action in ("decommission_namenode", "preempt_namenode"):
            if not self.node:
                raise ReproError(f"{self.action} needs node=")
            if parse_node(self.node).kind is not NodeKind.NAMENODE:
                raise ReproError(f"{self.action} targets namenodes, got {self.node!r}")
            if self.action == "preempt_namenode" and self.extra_ms < 0:
                raise ReproError(
                    f"preempt_namenode warning (extra_ms) must be >= 0, "
                    f"got {self.extra_ms!r}"
                )
        # heal / restore_links / recover_all / add_namenode (az optional)
        # take no mandatory operands

    def as_dict(self) -> dict:
        out = {"at_ms": self.at_ms, "action": self.action}
        if self.node is not None:
            out["node"] = self.node
        if self.az is not None:
            out["az"] = self.az
        if self.groups is not None:
            out["groups"] = [list(g) for g in self.groups]
        if self.az_pair is not None:
            out["az_pair"] = list(self.az_pair)
        if self.extra_ms:
            out["extra_ms"] = self.extra_ms
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        groups = data.get("groups")
        az_pair = data.get("az_pair")
        event = cls(
            at_ms=float(data["at_ms"]),
            action=data["action"],
            node=data.get("node"),
            az=data.get("az"),
            groups=tuple(tuple(g) for g in groups) if groups else None,
            az_pair=tuple(az_pair) if az_pair else None,
            extra_ms=float(data.get("extra_ms", 0.0)),
        )
        event.validate()
        return event

    def describe(self) -> str:
        if self.action in ("crash_node", "recover_node", "decommission_namenode"):
            return f"{self.action} {self.node}"
        if self.action == "preempt_namenode":
            return f"preempt_namenode {self.node} warn={self.extra_ms}ms"
        if self.action == "add_namenode":
            return f"add_namenode az{self.az}" if self.az else "add_namenode"
        if self.action in ("az_outage", "az_heal"):
            return f"{self.action} az{self.az}"
        if self.action == "partition":
            a, b = self.groups
            return f"partition az{list(a)}|az{list(b)}"
        if self.action == "degrade_link":
            return f"degrade_link az{self.az_pair[0]}-az{self.az_pair[1]} +{self.extra_ms}ms"
        return self.action


@dataclass
class FaultSchedule:
    """An ordered list of fault events (a nemesis schedule).

    Events fire in ``(at_ms, insertion order)`` order, so two events at
    the same instant execute in the order they were added — schedules are
    fully deterministic data, never consulting an RNG.
    """

    _events: list[FaultEvent] = field(default_factory=list)

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self._events = []
        for event in events:
            self.add(event)

    # -- construction (fluent) ------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultSchedule":
        event.validate()
        self._events.append(event)
        return self

    def crash_node(self, at_ms: float, node: str) -> "FaultSchedule":
        return self.add(FaultEvent(at_ms, "crash_node", node=node))

    def recover_node(self, at_ms: float, node: str) -> "FaultSchedule":
        return self.add(FaultEvent(at_ms, "recover_node", node=node))

    def az_outage(self, at_ms: float, az: int) -> "FaultSchedule":
        return self.add(FaultEvent(at_ms, "az_outage", az=az))

    def az_heal(self, at_ms: float, az: int) -> "FaultSchedule":
        return self.add(FaultEvent(at_ms, "az_heal", az=az))

    def partition(self, at_ms: float, group_a, group_b) -> "FaultSchedule":
        return self.add(
            FaultEvent(at_ms, "partition", groups=(tuple(group_a), tuple(group_b)))
        )

    def heal(self, at_ms: float) -> "FaultSchedule":
        return self.add(FaultEvent(at_ms, "heal"))

    def degrade_link(self, at_ms: float, az_a: int, az_b: int, extra_ms: float) -> "FaultSchedule":
        return self.add(
            FaultEvent(at_ms, "degrade_link", az_pair=(az_a, az_b), extra_ms=extra_ms)
        )

    def restore_links(self, at_ms: float) -> "FaultSchedule":
        return self.add(FaultEvent(at_ms, "restore_links"))

    def recover_all(self, at_ms: float) -> "FaultSchedule":
        return self.add(FaultEvent(at_ms, "recover_all"))

    def add_namenode(self, at_ms: float, az: Optional[int] = None) -> "FaultSchedule":
        return self.add(FaultEvent(at_ms, "add_namenode", az=az))

    def decommission_namenode(self, at_ms: float, node: str) -> "FaultSchedule":
        return self.add(FaultEvent(at_ms, "decommission_namenode", node=node))

    def preempt_namenode(
        self, at_ms: float, node: str, warning_ms: float = 5.0
    ) -> "FaultSchedule":
        """Spot-style preemption: ``warning_ms`` of notice, then a hard kill."""
        return self.add(
            FaultEvent(at_ms, "preempt_namenode", node=node, extra_ms=warning_ms)
        )

    # -- views ----------------------------------------------------------------
    @property
    def events(self) -> tuple[FaultEvent, ...]:
        # sorted() is stable: same-instant events keep insertion order.
        return tuple(sorted(self._events, key=lambda e: e.at_ms))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self.events)

    def end_ms(self) -> float:
        return max((e.at_ms for e in self._events), default=0.0)

    def fingerprint(self) -> str:
        """Content hash of the ordered schedule (for reproducibility logs)."""
        h = hashlib.sha256()
        for event in self.events:
            h.update(repr(event).encode())
            h.update(b"\n")
        return h.hexdigest()

    # -- (de)serialization ------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        return [e.as_dict() for e in self.events]

    @classmethod
    def from_dicts(cls, dicts: Iterable[dict]) -> "FaultSchedule":
        return cls(FaultEvent.from_dict(d) for d in dicts)
