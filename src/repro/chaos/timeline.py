"""Availability timeline: per-interval success/failure during a chaos run.

Extends the benchmark :class:`~repro.metrics.collectors.MetricsCollector`
with fixed-width time buckets, so a scenario can report availability over
the fault timeline (operational before the fault, degraded during, healed
after) the way the paper narrates its AZ-outage story.
"""

from __future__ import annotations

from ..metrics.collectors import MetricsCollector
from ..types import OpResult

__all__ = ["TimelineCollector"]


class TimelineCollector(MetricsCollector):
    """Metrics collector that additionally buckets results by end time."""

    def __init__(self, bucket_ms: float = 20.0):
        super().__init__()
        if bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")
        self.bucket_ms = bucket_ms
        # bucket index -> [ok count, failed count]
        self._buckets: dict[int, list[int]] = {}

    def record(self, result: OpResult) -> None:
        bucket = self._buckets.setdefault(int(result.end_ms // self.bucket_ms), [0, 0])
        bucket[0 if result.ok else 1] += 1
        super().record(result)

    def merge(self, other: "TimelineCollector") -> "TimelineCollector":
        """Return a new collector combining two shards' timelines.

        Same contract as :meth:`MetricsCollector.merge` — associative,
        commutative, deterministic: base aggregates merge via the parent,
        and per-bucket ok/failed pairs add index-wise.  Both sides must
        share ``bucket_ms`` (bucket indices are only comparable on one
        grid).
        """
        if self.bucket_ms != other.bucket_ms:
            raise ValueError(
                f"cannot merge timelines with different bucket widths: "
                f"{self.bucket_ms} vs {other.bucket_ms}"
            )
        base = super().merge(other)
        merged = TimelineCollector(self.bucket_ms)
        merged.window_start = base.window_start
        merged.window_end = base.window_end
        merged.completed = base.completed
        merged.failed = base.failed
        merged.retried = base.retried
        merged.latencies_ms = base.latencies_ms
        merged.failed_latencies_ms = base.failed_latencies_ms
        merged.by_op.update(base.by_op)
        merged.latencies_by_op.update(base.latencies_by_op)
        for source in (self._buckets, other._buckets):
            for index, (ok, failed) in source.items():
                bucket = merged._buckets.setdefault(index, [0, 0])
                bucket[0] += ok
                bucket[1] += failed
        return merged

    def availability_between(self, start_ms: float, end_ms: float):
        """Aggregate availability over ``[start_ms, end_ms)``, or ``None``.

        Sums ok/failed across the buckets overlapping the window — how
        elastic tests assert clients stayed green *while* the NN pool was
        churning, not just on the end-to-end average.  ``None`` when no
        op completed in the window (total outage or idle).
        """
        first = int(start_ms // self.bucket_ms)
        last = int(end_ms // self.bucket_ms)
        ok = failed = 0
        for index in range(first, last + 1):
            bucket_ok, bucket_failed = self._buckets.get(index, (0, 0))
            ok += bucket_ok
            failed += bucket_failed
        total = ok + failed
        return (ok / total) if total else None

    def timeline(self) -> list[dict]:
        """Dense per-bucket rows: ``{"t_ms", "ok", "failed", "availability"}``.

        ``availability`` is ``None`` for buckets with no completions at all
        (total outage looks like silence under a closed-loop driver, not
        failures, so an empty bucket is reported as unavailable-or-idle).
        """
        if not self._buckets:
            return []
        first, last = min(self._buckets), max(self._buckets)
        rows = []
        for index in range(first, last + 1):
            ok, failed = self._buckets.get(index, (0, 0))
            total = ok + failed
            rows.append(
                {
                    "t_ms": index * self.bucket_ms,
                    "ok": ok,
                    "failed": failed,
                    "availability": (ok / total) if total else None,
                }
            )
        return rows
