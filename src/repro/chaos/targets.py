"""Fault-surface adapters: one interface over both stacks.

A chaos target wraps a running deployment (HopsFS/NDB or CephFS) and
exposes the primitives the :class:`~repro.chaos.injector.FaultInjector`
needs — crash/recover a node, take out a whole AZ, partition AZ groups,
degrade links — plus the hooks scenarios use (ready, client factory,
large-file seeding so the block layer is actually exercised).

Everything that touches multiple nodes iterates in sorted address order
so fault execution is deterministic regardless of dict/set history.
"""

from __future__ import annotations

import re
from typing import Optional

from ..cephfs import CephConfig, build_cephfs
from ..errors import ReproError
from ..experiments.setups import SETUPS, SetupSpec
from ..hopsfs import (
    SMALL_FILE_MAX_BYTES,
    AsyncCommitConfig,
    ElasticConfig,
    HopsFsConfig,
    ListingCacheConfig,
    RobustConfig,
    build_hopsfs,
)
from ..ndb import NdbConfig
from ..types import NodeAddress, NodeKind
from ..workloads.namespace import install_cephfs, install_hopsfs
from .schedule import FaultEvent, parse_node

__all__ = [
    "ChaosTarget",
    "HopsFsTarget",
    "CephTarget",
    "build_chaos_target",
    "setup_slug",
    "resolve_setup",
]


def setup_slug(name: str) -> str:
    """CLI-friendly slug for a setup name: ``HopsFS-CL (3,3)`` -> ``hopsfs-cl-3-3``."""
    return re.sub(r"[^a-z0-9]+", "-", name.lower()).strip("-")


_SLUGS = {setup_slug(name): name for name in SETUPS}


def resolve_setup(name: str) -> str:
    """Canonical pretty name for a setup given either that name or its slug."""
    if name in SETUPS:
        return name
    slug = setup_slug(name)
    if slug in _SLUGS:
        return _SLUGS[slug]
    raise ReproError(f"unknown setup {name!r} (try one of: {', '.join(sorted(_SLUGS))})")


class ChaosTarget:
    """Common fault-surface behaviour; subclasses wire in one stack."""

    kind = "abstract"

    def __init__(self, env, network, azs, name: str):
        self.env = env
        self.network = network
        self.azs = tuple(azs)
        self.name = name
        # Every client handed out via make_client(); the deadline-compliance
        # invariant audits their recorded overruns after the run.
        self.clients: list = []

    # -- subclass surface ----------------------------------------------------
    def managed_addrs(self) -> list[NodeAddress]:
        raise NotImplementedError

    def crash(self, addr: NodeAddress) -> None:
        raise NotImplementedError

    def recover(self, addr: NodeAddress):
        """Generator: bring one crashed daemon back."""
        raise NotImplementedError

    def is_running(self, addr: NodeAddress) -> bool:
        raise NotImplementedError

    def on_heal(self) -> None:
        """Stack-specific epilogue to a partition heal."""

    def ready(self):
        yield self.env.timeout(0)

    def make_client(self):
        raise NotImplementedError

    def install(self, namespace) -> int:
        raise NotImplementedError

    def seed_blocks(self, count: int = 0):
        """Generator: create block-layer state pre-fault (no-op by default)."""
        yield self.env.timeout(0)
        return 0

    def server_node_ids(self) -> list[str]:
        """Metadata-server node ids, for rolling-restart schedules."""
        raise NotImplementedError

    # Elastic membership (HopsFS targets only; CephFS has no equivalent of
    # a stateless metadata worker that can join/leave at runtime here).
    def add_namenode(self, az) -> str:
        raise ReproError(f"{self.name}: elastic NN membership not supported")

    def decommission_namenode(self, addr: NodeAddress) -> str:
        raise ReproError(f"{self.name}: elastic NN membership not supported")

    def preempt_namenode(self, addr: NodeAddress, warning_ms: float) -> str:
        raise ReproError(f"{self.name}: elastic NN membership not supported")

    # -- event execution -------------------------------------------------------
    def addrs_in_az(self, az: int) -> list[NodeAddress]:
        topo = self.network.topology
        return [a for a in self.managed_addrs() if topo.az_of(a) == az]

    def apply(self, event: FaultEvent):
        """Generator: execute one fault event; returns a description string."""
        action = event.action
        if action == "crash_node":
            addr = parse_node(event.node)
            self.crash(addr)
            yield self.env.timeout(0)
            return f"crashed {addr}"
        if action == "recover_node":
            addr = parse_node(event.node)
            yield from self.recover(addr)
            return f"recovered {addr}"
        if action == "az_outage":
            crashed = []
            for addr in self.addrs_in_az(event.az):
                if self.is_running(addr):
                    self.crash(addr)
                    crashed.append(str(addr))
            yield self.env.timeout(0)
            return f"az{event.az} down: {','.join(crashed)}"
        if action == "az_heal":
            recovered = []
            for addr in self.addrs_in_az(event.az):
                if not self.is_running(addr):
                    yield from self.recover(addr)
                    recovered.append(str(addr))
            yield self.env.timeout(0)
            return f"az{event.az} healed: {','.join(recovered)}"
        if action == "partition":
            self.network.partition_azs(*event.groups)
            yield self.env.timeout(0)
            a, b = event.groups
            return f"partitioned az{list(a)} | az{list(b)}"
        if action == "heal":
            self.network.heal_partitions()
            self.on_heal()
            yield self.env.timeout(0)
            return "healed partitions"
        if action == "degrade_link":
            az_a, az_b = event.az_pair
            self.network.degrade_link(az_a, az_b, event.extra_ms)
            yield self.env.timeout(0)
            return f"degraded az{az_a}-az{az_b} by {event.extra_ms}ms"
        if action == "restore_links":
            self.network.restore_links()
            yield self.env.timeout(0)
            return "restored links"
        if action == "recover_all":
            recovered = []
            for addr in self.managed_addrs():
                if not self.is_running(addr):
                    yield from self.recover(addr)
                    recovered.append(str(addr))
            yield self.env.timeout(0)
            return f"recovered all: {','.join(recovered) or '(none down)'}"
        # Elastic membership actions return immediately: drains and warning
        # windows run as background processes so a churn storm never skews
        # the firing times of later schedule events.
        if action == "add_namenode":
            detail = self.add_namenode(event.az)
            yield self.env.timeout(0)
            return detail
        if action == "decommission_namenode":
            detail = self.decommission_namenode(parse_node(event.node))
            yield self.env.timeout(0)
            return detail
        if action == "preempt_namenode":
            detail = self.preempt_namenode(parse_node(event.node), event.extra_ms)
            yield self.env.timeout(0)
            return detail
        raise ReproError(f"unknown fault action {action!r}")


class HopsFsTarget(ChaosTarget):
    """HopsFS / HopsFS-CL deployment as a fault surface."""

    kind = "hopsfs"

    def __init__(self, deployment, name: str = "HopsFS"):
        super().__init__(deployment.env, deployment.network, deployment.azs, name)
        self.fs = deployment
        self._by_addr = {}
        for addr, dn in deployment.ndb.datanodes.items():
            self._by_addr[addr] = dn
        for mgmt in deployment.ndb.mgmt_nodes:
            self._by_addr[mgmt.addr] = mgmt
        for nn in deployment.namenodes:
            self._by_addr[nn.addr] = nn
        for bdn in deployment.block_datanodes:
            self._by_addr[bdn.addr] = bdn

    def _refresh_nodes(self) -> None:
        """Pick up NNs the elastic lifecycle added after construction."""
        for nn in self.fs.namenodes:
            if nn.addr not in self._by_addr:
                self._by_addr[nn.addr] = nn

    def managed_addrs(self) -> list[NodeAddress]:
        self._refresh_nodes()
        return sorted(self._by_addr)

    def is_running(self, addr: NodeAddress) -> bool:
        self._refresh_nodes()
        return self._by_addr[addr].running

    def crash(self, addr: NodeAddress) -> None:
        self._refresh_nodes()
        node = self._by_addr.get(addr)
        if node is None:
            raise ReproError(f"{self.name}: no such node {addr}")
        if addr.kind is NodeKind.NDB_DATANODE:
            # Detection comes from the heartbeat ring, as in production.
            self.fs.ndb.crash_datanode(addr)
        else:
            node.shutdown()

    def recover(self, addr: NodeAddress):
        self._refresh_nodes()
        node = self._by_addr.get(addr)
        if node is None:
            raise ReproError(f"{self.name}: no such node {addr}")
        if addr in self.fs.decommissioned:
            # A gracefully retired NN stays retired: recover_all after an
            # elastic scale-down must not resurrect it.
            yield self.env.timeout(0)
            return
        if addr.kind is NodeKind.NDB_DATANODE:
            yield from self.fs.ndb.restart_datanode(addr)
        else:
            node.restart()
            if addr in self.fs.preempted:
                # Spot capacity came back: it heartbeats again, so it is no
                # longer exempt from anything.
                self.fs.preempted.discard(addr)
            yield self.env.timeout(0)

    def on_heal(self) -> None:
        # Reset arbitration epochs so the next partition is judged afresh.
        self.fs.ndb.heal()

    def ready(self):
        yield from self.fs.await_election()

    def make_client(self):
        client = self.fs.client()
        self.clients.append(client)
        return client

    def install(self, namespace) -> int:
        return install_hopsfs(self.fs, namespace)

    def seed_blocks(self, count: int = 4):
        """Create large files pre-fault so re-replication has work to do.

        Small files live inline in NDB (Section II-A3); without these the
        block-layer AZ-coverage invariant would be vacuously green.
        """
        if count <= 0 or not self.fs.block_datanodes:
            yield self.env.timeout(0)
            return 0
        client = self.make_client()
        payload = b"x" * (SMALL_FILE_MAX_BYTES + 1024)
        yield from client.mkdirs("/chaos")
        created = 0
        for i in range(count):
            yield from client.create(f"/chaos/big{i}", data=payload)
            created += 1
        return created

    def server_node_ids(self) -> list[str]:
        return [str(nn.addr) for nn in self.fs.namenodes]

    # -- elastic membership ---------------------------------------------------
    def add_namenode(self, az) -> str:
        nn = self.fs.add_namenode(az=az, reason="chaos")
        self._by_addr[nn.addr] = nn
        return f"added {nn.addr} in az{nn.az}"

    def decommission_namenode(self, addr: NodeAddress) -> str:
        self.env.process(
            self.fs.decommission_namenode(addr, reason="chaos"),
            name=f"{addr}:decommission",
        )
        return f"decommissioning {addr} (draining)"

    def preempt_namenode(self, addr: NodeAddress, warning_ms: float) -> str:
        self.env.process(
            self.fs.preempt_namenode(addr, warning_ms=warning_ms),
            name=f"{addr}:preempt",
        )
        return f"preempting {addr} (warning {warning_ms}ms)"


class CephTarget(ChaosTarget):
    """CephFS cluster as a fault surface (MDS ranks + OSDs)."""

    kind = "cephfs"

    def __init__(self, cluster, name: str = "CephFS"):
        super().__init__(cluster.env, cluster.network, cluster.azs, name)
        self.cluster = cluster
        self._by_addr = {}
        for mds in cluster.mds_list:
            self._by_addr[mds.addr] = mds
        for osd in cluster.osds:
            self._by_addr[osd.addr] = osd

    def managed_addrs(self) -> list[NodeAddress]:
        return sorted(self._by_addr)

    def is_running(self, addr: NodeAddress) -> bool:
        return self._by_addr[addr].running

    def crash(self, addr: NodeAddress) -> None:
        node = self._by_addr.get(addr)
        if node is None:
            raise ReproError(f"{self.name}: no such node {addr}")
        node.shutdown()

    def recover(self, addr: NodeAddress):
        node = self._by_addr.get(addr)
        if node is None:
            raise ReproError(f"{self.name}: no such node {addr}")
        node.restart()
        yield self.env.timeout(0)

    def make_client(self):
        client = self.cluster.client()
        self.clients.append(client)
        return client

    def install(self, namespace) -> int:
        return install_cephfs(self.cluster, namespace)

    def server_node_ids(self) -> list[str]:
        return [str(mds.addr) for mds in self.cluster.mds_list]


def build_chaos_target(
    setup: str,
    num_servers: int = 3,
    seed: int = 99,
    env=None,
    robust: "RobustConfig | None" = None,
    async_commit: "AsyncCommitConfig | None" = None,
    elastic: "ElasticConfig | None" = None,
    listing_cache: "ListingCacheConfig | None" = None,
) -> ChaosTarget:
    """Build a chaos-tuned deployment of any of the nine setups.

    Same layouts as :mod:`repro.experiments.setups`, but with failure
    detection cranked down (millisecond heartbeats, fast elections and
    failover detection) so fault scenarios resolve within short simulated
    horizons, and with a block-storage layer attached to HopsFS setups so
    AZ-aware re-replication is exercised.

    ``robust`` opts the HopsFS request path into gray-failure hardening
    (timeouts, deadlines, hedging, retry cache, admission control);
    ``async_commit`` opts it into the group-commit metadata path (early
    acks, durability horizons).  CephFS targets ignore both.
    """
    setup = resolve_setup(setup)
    spec = SETUPS[setup]
    if spec.kind == "hopsfs":
        deployment = build_hopsfs(
            num_namenodes=num_servers,
            azs=spec.azs,
            az_aware=spec.az_aware,
            num_block_datanodes=2 * len(spec.azs),
            env=env,
            ndb_config=NdbConfig(
                num_datanodes=6,
                replication=spec.replication,
                az_aware=spec.az_aware,
                heartbeat_interval_ms=10.0,
                deadlock_timeout_ms=100.0,
                inactive_timeout_ms=120.0,
            ),
            hopsfs_config=HopsFsConfig(
                election_period_ms=50.0,
                op_cost_read_ms=0.02,
                op_cost_mutation_ms=0.04,
                dn_heartbeat_interval_ms=10.0,
                robust=robust,
                async_commit=async_commit,
                elastic=elastic,
                listing_cache=listing_cache,
            ),
            heartbeats=True,
            seed=seed,
        )
        return HopsFsTarget(deployment, name=spec.name)
    cluster = build_cephfs(
        num_mds=num_servers,
        azs=spec.azs,
        config=CephConfig(
            osd_replication=spec.replication,
            dir_pinning=spec.dir_pinning,
            kclient_cache=spec.kclient_cache,
            mds_failover_detect_ms=20.0,
        ),
        env=env,
        seed=seed,
    )
    return CephTarget(cluster, name=spec.name)
