"""Payload types for the NDB wire protocol.

The message kinds mirror Figure 2 of the paper: Prepare/Prepared,
Commit/Committed, Complete/Completed, plus the client-facing TCKEYREQ-style
requests and the heartbeat/arbitration control plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

from ..types import AzId, NodeAddress
from .schema import LockMode

__all__ = [
    "TcReadReq",
    "TcScanReq",
    "TcWriteReq",
    "TcCommitReq",
    "TcAbortReq",
    "LdmReadReq",
    "LdmScanReq",
    "ChainPrepare",
    "ChainCommit",
    "CompleteMsg",
    "ReleaseLocksMsg",
    "PreparedMsg",
    "CommittedMsg",
    "CompletedMsg",
    "PrepareFailedMsg",
    "HeartbeatMsg",
    "ArbitrationReq",
]


# -- client -> TC -------------------------------------------------------------
@dataclass
class TcReadReq:
    txid: int
    table: str
    pk: Hashable
    partition_key: Hashable
    lock: LockMode = LockMode.NONE
    client_az: AzId = 0


@dataclass
class TcScanReq:
    txid: int
    table: str
    partition_key: Hashable
    client_az: AzId = 0


@dataclass
class TcWriteReq:
    txid: int
    table: str
    pk: Hashable
    partition_key: Hashable
    value: Any  # TOMBSTONE for deletes
    client_az: AzId = 0


@dataclass
class TcCommitReq:
    txid: int


@dataclass
class TcAbortReq:
    txid: int


# -- TC -> LDM (reads) ---------------------------------------------------------
@dataclass
class LdmReadReq:
    txid: int
    table: str
    pk: Hashable
    partition_key: Hashable
    partition: int
    lock: LockMode
    role: int  # replica role of the serving node (0 = primary)
    client_az: AzId


@dataclass
class LdmScanReq:
    txid: int
    table: str
    partition_key: Hashable
    partition: int
    role: int
    client_az: AzId


# -- linear 2PC chain (one-way messages) ----------------------------------------
@dataclass
class ChainPrepare:
    """Travels TC -> primary -> backups; the last hop reports Prepared."""

    txid: int
    seq: int  # operation sequence within the transaction
    table: str
    pk: Hashable
    partition_key: Hashable
    partition: int
    value: Any
    chain: tuple[NodeAddress, ...]
    hop: int  # index of the node processing this message
    tc: NodeAddress


@dataclass
class ChainCommit:
    """Travels TC -> last backup -> ... -> primary (reverse order)."""

    txid: int
    seq: int
    table: str
    pk: Hashable
    partition: int
    chain: tuple[NodeAddress, ...]
    hop: int  # position from the END of the chain
    tc: NodeAddress


@dataclass
class CompleteMsg:
    txid: int
    seq: int
    table: str
    pk: Hashable
    partition: int
    tc: NodeAddress
    want_completed: bool  # TC waits for Completed (Read Backup / FR tables)


@dataclass
class ReleaseLocksMsg:
    """Release read locks held at a node for a finished transaction.

    ``keys`` lists the specific row keys to unlock (commit path: rows that
    were only read).  ``keys=None`` means full rollback: abort prepared
    rows and release every lock of the transaction (abort path).
    """

    txid: int
    # Ordered tuple (not a set): the receiving LDM releases in this order,
    # which must be deterministic across processes.
    keys: Optional[tuple] = None


# -- chain acknowledgements (one-way, back to the TC) -----------------------------
@dataclass
class PreparedMsg:
    txid: int
    seq: int


@dataclass
class CommittedMsg:
    txid: int
    seq: int


@dataclass
class CompletedMsg:
    txid: int
    seq: int


@dataclass
class PrepareFailedMsg:
    txid: int
    seq: int
    error: str


# -- control plane -----------------------------------------------------------------
@dataclass
class HeartbeatMsg:
    sender: NodeAddress
    epoch: int = 0


@dataclass
class ArbitrationReq:
    """A partitioned component asks the arbitrator for the right to live."""

    requester: NodeAddress
    component: frozenset = field(default_factory=frozenset)
    epoch: int = 0
