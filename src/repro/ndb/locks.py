"""Row-level locking with strict two-phase locking semantics.

NDB uses strict 2PL (Section II-B2): locks are acquired as operations
execute and released only at commit/abort.  Deadlocks are broken by
``TransactionDeadlockDetectionTimeout`` — a waiter that cannot get the lock
in time aborts its transaction, and the application (HopsFS) retries.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Hashable

from ..errors import LockTimeoutError
from ..sim import Environment, Event
from .schema import LockMode

__all__ = ["LockTable"]


@dataclass
class _LockRequest:
    txid: int
    mode: LockMode
    event: Event
    granted: bool = False
    abandoned: bool = False
    # Tracing only (set when queued under an active ObsContext): when the
    # request started waiting, and the span the wait reports under.
    queued_at: float = -1.0
    obs_parent: object = None


@dataclass
class _RowLock:
    holders: dict[int, LockMode] = field(default_factory=dict)
    queue: Deque[_LockRequest] = field(default_factory=deque)

    @property
    def idle(self) -> bool:
        return not self.holders and not self.queue


class LockTable:
    """Per-datanode lock manager for the rows it stores."""

    def __init__(self, env: Environment, deadlock_timeout_ms: float = 1200.0):
        self.env = env
        self.deadlock_timeout_ms = deadlock_timeout_ms
        self._rows: dict[Hashable, _RowLock] = {}
        # txid -> row keys it holds or waits on (for release_all).  Stored
        # as an insertion-ordered dict-of-None rather than a set so that
        # release order is deterministic across processes (set iteration
        # order depends on PYTHONHASHSEED; lock hand-off order must not).
        self._by_txn: dict[int, dict[Hashable, None]] = {}
        self.timeouts_fired = 0
        self._expire_cb = self._expire

    # -- public API -----------------------------------------------------------
    def acquire(self, txid: int, key: Hashable, mode: LockMode, parent=None) -> Event:
        """Request ``mode`` on row ``key``; returns an event granted later.

        Fails with :class:`LockTimeoutError` if the deadlock-detection
        timeout fires first.  ``parent`` (tracing only) nests the recorded
        wait span under the caller's span; contended waits are recorded
        retrospectively at grant/timeout time, immediate grants record
        nothing.
        """
        if mode is LockMode.NONE:
            raise ValueError("LockMode.NONE is not a lock")
        row = self._rows.setdefault(key, _RowLock())
        event = self.env.event()
        held = row.holders.get(txid)
        if held is not None and self._covers(held, mode):
            event.succeed()
            return event
        request = _LockRequest(txid=txid, mode=mode, event=event)
        if self._grantable(row, request):
            self._grant(row, request, key)
            return event
        if self.env.obs is not None:
            request.queued_at = self.env.now
            request.obs_parent = parent
        if held is not None:
            # Lock upgrade (S -> X): goes to the front of the queue so the
            # holder is not starved behind newcomers.
            row.queue.appendleft(request)
        else:
            row.queue.append(request)
        self._by_txn.setdefault(txid, {})[key] = None
        self.env.schedule_after(self.deadlock_timeout_ms, self._expire_cb, (request, key))
        return event

    def release(self, txid: int, key: Hashable) -> None:
        """Release one row lock held by ``txid`` (commit applies per-row)."""
        row = self._rows.get(key)
        if row is None:
            return
        if row.holders.pop(txid, None) is not None:
            keys = self._by_txn.get(txid)
            if keys is not None:
                keys.pop(key, None)
                if not keys:
                    del self._by_txn[txid]
        self._pump(row, key)

    def release_all(self, txid: int) -> None:
        """Release every lock held (or awaited) by ``txid``."""
        keys = self._by_txn.pop(txid, ())
        for key in keys:
            row = self._rows.get(key)
            if row is None:
                continue
            row.holders.pop(txid, None)
            for request in row.queue:
                if request.txid == txid and not request.abandoned:
                    request.abandoned = True
                    if not request.event.triggered:
                        request.event.fail(
                            LockTimeoutError(
                                f"txn {txid} aborted while waiting for {key!r}"
                            )
                        )
            self._pump(row, key)

    def holds(self, txid: int, key: Hashable, mode: LockMode) -> bool:
        row = self._rows.get(key)
        if row is None:
            return False
        held = row.holders.get(txid)
        return held is not None and self._covers(held, mode)

    def held_keys(self, txid: int) -> set[Hashable]:
        return set(self._by_txn.get(txid, ()))

    @property
    def active_rows(self) -> int:
        return sum(1 for row in self._rows.values() if not row.idle)

    def active_row_txids(self) -> dict[Hashable, set[int]]:
        """Per non-idle row: the txids holding or waiting on it."""
        return {
            key: set(row.holders)
            | {req.txid for req in row.queue if not req.abandoned}
            for key, row in self._rows.items()
            if not row.idle
        }

    # -- internals --------------------------------------------------------------
    @staticmethod
    def _covers(held: LockMode, wanted: LockMode) -> bool:
        if held is LockMode.EXCLUSIVE:
            return True
        return wanted is LockMode.SHARED

    @staticmethod
    def _compatible(holders: dict[int, LockMode], request: _LockRequest) -> bool:
        others = {t: m for t, m in holders.items() if t != request.txid}
        if not others:
            return True
        if request.mode is LockMode.EXCLUSIVE:
            return False
        return all(m is LockMode.SHARED for m in others.values())

    def _grantable(self, row: _RowLock, request: _LockRequest) -> bool:
        # FIFO fairness: cannot jump a non-empty queue unless upgrading.
        if row.queue and request.txid not in row.holders:
            return False
        return self._compatible(row.holders, request)

    def _grant(self, row: _RowLock, request: _LockRequest, key: Hashable) -> None:
        request.granted = True
        row.holders[request.txid] = request.mode
        self._by_txn.setdefault(request.txid, {})[key] = None
        if not request.event.triggered:
            request.event.succeed()
        if request.queued_at >= 0.0:
            self._record_wait(request, key, timed_out=False)

    def _record_wait(self, request: _LockRequest, key: Hashable, timed_out: bool) -> None:
        """Record a contended wait's span + histogram sample (tracing only)."""
        obs = self.env.obs
        if obs is None:
            return
        now = self.env.now
        obs.tracer.record(
            "ndb.lock.wait", request.queued_at, now,
            parent=request.obs_parent,
            key=str(key), mode=request.mode.value, timed_out=timed_out,
        )
        obs.registry.histogram("ndb.lock.wait_ms").observe(now - request.queued_at)
        if timed_out:
            obs.registry.counter("ndb.lock.timeouts_fired").inc()

    def _pump(self, row: _RowLock, key: Hashable) -> None:
        while row.queue:
            head = row.queue[0]
            if head.abandoned or head.event.triggered:
                row.queue.popleft()
                continue
            if not self._compatible(row.holders, head):
                break
            row.queue.popleft()
            self._grant(row, head, key)
        if row.idle:
            self._rows.pop(key, None)

    def _expire(self, timer: tuple) -> None:
        request, key = timer
        if request.granted or request.abandoned or request.event.triggered:
            return
        request.abandoned = True
        self.timeouts_fired += 1
        if request.queued_at >= 0.0:
            self._record_wait(request, key, timed_out=True)
        row = self._rows.get(key)
        if row is not None:
            try:
                row.queue.remove(request)
            except ValueError:
                pass
            self._pump(row, key)
        request.event.fail(
            LockTimeoutError(
                f"txn {request.txid} timed out waiting for {request.mode.value} on {key!r}"
            )
        )
