"""NDB cluster assembly: datanodes, management nodes, placement and failures.

Deployment layouts follow Figures 3 and 4 of the paper: replica *blocks*
are assigned AZ by AZ so that the members of every node group land in
different AZs (N1/N3/N5 one group, N2/N4/N6 another), management nodes run
one per AZ, and the first management node acts as arbitrator.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Optional, Sequence

from ..errors import ConfigError
from ..net.network import Network
from ..sim import Environment, RngRegistry
from ..types import AzId, NodeAddress, NodeKind
from .changelog import ChangelogBus
from .client import NdbApi
from .config import NdbConfig
from .datanode import NdbDatanode
from .failure import HeartbeatProtocol
from .management import ManagementNode
from .partitioning import PartitionMap
from .schema import Schema
from .store import ReadStats

__all__ = ["NdbCluster", "az_assignment_for"]


def az_assignment_for(num_datanodes: int, replication: int, azs: Sequence[AzId]) -> list[AzId]:
    """AZ per datanode such that node-group members span different AZs.

    Node groups are formed round-robin (``datanodes[g::num_groups]``), so
    assigning whole replica blocks to AZs guarantees each group has at most
    one member per AZ when ``len(azs) >= replication``.
    """
    if not azs:
        raise ConfigError("need at least one AZ")
    num_groups = num_datanodes // replication
    assignment = []
    for index in range(num_datanodes):
        block = index // num_groups  # which replica block this node is in
        assignment.append(azs[block % len(azs)])
    return assignment


class NdbCluster:
    """A running NDB cluster inside one simulation environment."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        config: NdbConfig,
        schema: Schema,
        datanode_azs: Sequence[AzId],
        mgmt_azs: Sequence[AzId] = (1,),
        rng: Optional[RngRegistry] = None,
    ):
        if len(datanode_azs) != config.num_datanodes:
            raise ConfigError(
                f"az assignment has {len(datanode_azs)} entries for "
                f"{config.num_datanodes} datanodes"
            )
        self.env = env
        self.network = network
        self.config = config
        self.schema = schema
        self.rng = rng or RngRegistry()
        self.read_stats = ReadStats()
        self._txids = itertools.count(1)
        self._txn_tc: dict[int, NodeAddress] = {}
        self.started = False

        self.datanodes: dict[NodeAddress, NdbDatanode] = {}
        for i, az in enumerate(datanode_azs, start=1):
            addr = NodeAddress(NodeKind.NDB_DATANODE, i)
            network.topology.add_host(addr, az=az, cores=32)
            self.datanodes[addr] = NdbDatanode(env, network, self, addr, az)

        self.partition_map = PartitionMap(
            list(self.datanodes.keys()), config.replication, config.num_partitions
        )

        self.mgmt_nodes: list[ManagementNode] = []
        for i, az in enumerate(mgmt_azs, start=1):
            addr = NodeAddress(NodeKind.NDB_MGMT, i)
            network.topology.add_host(addr, az=az, cores=2)
            self.mgmt_nodes.append(ManagementNode(env, network, addr, az))

        self.heartbeats = HeartbeatProtocol(self)
        self._heartbeats_started = False
        # Committed-mutation stream for subscriber caches (listing cache).
        # With no subscribers every publish is a pure no-op, so legacy
        # schedules stay bit-identical.
        self.changelog = ChangelogBus(network)

    # ------------------------------------------------------------------ life
    def start(self, heartbeats: bool = True) -> None:
        if self.started:
            return
        self.started = True
        for dn in self.datanodes.values():
            dn.start()
            self.env.process(self._checkpoint_loop(dn), name=f"{dn.addr}:gcp")
        for mgmt in self.mgmt_nodes:
            mgmt.start()
        if heartbeats:
            self.heartbeats.start()
            self._heartbeats_started = True

    def _checkpoint_loop(self, dn: NdbDatanode):
        """Global checkpoint: periodic redo/checkpoint flush to disk."""
        interval = self.config.global_checkpoint_interval_ms
        while dn.running:
            yield self.env.timeout(interval)
            if not dn.running:
                return
            dn.io_pool.submit(self.config.costs.send_msg)
            dn.disk.write(self.config.checkpoint_bytes)

    def is_operational(self) -> bool:
        return self.partition_map.cluster_viable() and any(
            dn.running for dn in self.datanodes.values()
        )

    # --------------------------------------------------------------- sessions
    def api(self, addr: NodeAddress) -> NdbApi:
        return NdbApi(self, addr)

    def next_txid(self) -> int:
        return next(self._txids)

    def register_txn(self, txid: int, tc: NodeAddress) -> None:
        self._txn_tc[txid] = tc

    def unregister_txn(self, txid: int) -> None:
        self._txn_tc.pop(txid, None)

    @property
    def active_transactions(self) -> int:
        return len(self._txn_tc)

    def registered_txids(self) -> tuple[int, ...]:
        return tuple(sorted(self._txn_tc))

    # ---------------------------------------------------------------- preload
    def preload(self, table_name: str, rows: Iterable[tuple[Hashable, Hashable, object]]) -> int:
        """Bulk-load committed rows, bypassing the commit protocol.

        ``rows`` yields ``(pk, partition_key, value)``.  Used to install the
        benchmark namespace before measurements start.
        """
        table = self.schema.table(table_name)
        count = 0
        for pk, partition_key, value in rows:
            partition = self.partition_map.partition_of(partition_key)
            replicas = self.partition_map.replicas(partition, table.fully_replicated)
            for node in replicas.all:
                self.datanodes[node].store.load(table_name, pk, partition_key, value)
            count += 1
        return count

    # ---------------------------------------------------------------- failures
    def arbitrator(self) -> Optional[ManagementNode]:
        for mgmt in self.mgmt_nodes:
            if mgmt.running and self.network.is_up(mgmt.addr):
                return mgmt
        return None

    def crash_datanode(self, addr: NodeAddress, detect_now: bool = False) -> None:
        """Kill a datanode.  Detection normally comes from heartbeats."""
        dn = self.datanodes[addr]
        dn.shutdown("crashed")
        if detect_now:
            self.on_node_failed(addr)

    def on_node_failed(self, dead: NodeAddress) -> None:
        """The cluster-wide node failure protocol (Section IV-A2).

        Survivors in the dead node's group promote their backup fragments
        (via :class:`PartitionMap`), pending chain operations through the
        dead node abort, and transactions whose TC died are rolled back on
        the survivors — the observable effect of NDB's take-over protocol.
        """
        if not self.partition_map.is_up(dead):
            return
        self.partition_map.mark_down(dead)
        self.datanodes[dead].shutdown("declared failed")
        if not self.partition_map.cluster_viable():
            self.shutdown_component(
                {dn.addr for dn in self.datanodes.values() if dn.running},
                "a whole node group failed: metadata lost",
            )
            return
        survivors = [dn for _, dn in sorted(self.datanodes.items()) if dn.running]
        for dn in survivors:
            dn.on_peer_failed(dead)
        self._take_over_orphans({dead}, survivors)

    def _take_over_orphans(self, dead_addrs, survivors) -> None:
        """Settle transactions whose TC died (NDB take-over, Section IV-A2).

        Covers both txids still registered here and txids the dead TC had
        already unregistered but whose release/complete messages died on
        its send queue (survivors still hold their locks).  A transaction
        rolls *forward* when any survivor saw its ChainCommit pass through
        — the commit point was reached and the client may already hold a
        success reply — and rolls back otherwise.
        """
        orphaned = {txid for txid, tc in self._txn_tc.items() if tc in dead_addrs}
        for dn in survivors:
            for dead in sorted(dead_addrs):
                orphaned |= dn.txids_coordinated_by(dead)
        rolled_forward = False
        for txid in sorted(orphaned):
            commit = any(dn.has_commit_evidence(txid) for dn in survivors)
            rolled_forward = rolled_forward or commit
            for dn in survivors:
                dn.take_over(txid, commit)
            self.unregister_txn(txid)
        # A roll-forward commits rows without the dead TC's op images, so
        # the changelog cannot itemize them; bump the epoch and subscriber
        # caches flush wholesale instead of trusting stale entries.
        if rolled_forward and survivors:
            self.changelog.bump_epoch(survivors[0].addr)

    def restart_datanode(self, addr: NodeAddress):
        """Node recovery: rejoin a failed datanode (generator).

        Mirrors NDB's node-recovery phases: the starting node comes back
        up, copies its fragments from the live members of its node group
        (time proportional to the data volume), and only then rejoins the
        partition map so it can serve replicas again.
        """
        dn = self.datanodes[addr]
        if dn.running:
            return
        self.network.set_up(addr)
        dn.running = True
        dn.shutdown_reason = None
        # All volatile state died with the process.
        dn.store = type(dn.store)()  # fresh fragment store
        dn.locks = type(dn.locks)(self.env, self.config.deadlock_timeout_ms)
        for txid in list(dn.txns):
            self.unregister_txn(txid)
        dn.txns.clear()
        dn.last_heartbeat_from.clear()
        self.env.process(dn._dispatch_loop(), name=f"{addr}:dispatch")
        self.env.process(dn._inactivity_reaper(), name=f"{addr}:txn-reaper")
        self.env.process(self._checkpoint_loop(dn), name=f"{addr}:gcp")
        if self._heartbeats_started:
            self.env.process(self.heartbeats._sender(dn), name=f"{addr}:hb-send")
            self.env.process(self.heartbeats._checker(dn), name=f"{addr}:hb-check")

        # Copy fragments from a live peer in each owned node group.
        copied_rows = 0
        group_index = next(
            g for g, group in enumerate(self.partition_map.node_groups) if addr in group
        )
        donors = [
            m
            for m in self.partition_map.node_groups[group_index]
            if m != addr and self.partition_map.is_up(m)
        ]
        if donors:
            donor_store = self.datanodes[donors[0]].store
            for table in self.schema.tables():
                for pk, value in list(donor_store.iter_rows(table.name)):
                    row = donor_store._rows.get((table.name, pk))
                    if row is None:
                        continue
                    dn.store.load(table.name, pk, row.partition_key, value)
                    copied_rows += 1
        # Recovery time: fragment copy over the network (modelled in bulk).
        copy_ms = copied_rows * self.config.costs.ldm_read
        if copy_ms:
            yield self.env.timeout(copy_ms)
        else:
            yield self.env.timeout(0)
        self.partition_map.mark_up(addr)
        # Transactions already in flight computed their replica chains while
        # this node was down; their commits land only on the old replicas.
        # NDB's synchronization phase covers that tail — modelled as a
        # reconciliation sweep once every straddling transaction has ended.
        self.env.process(self._reconcile(addr), name=f"{addr}:recovery-sync")
        return copied_rows

    def _reconcile(self, addr: NodeAddress):
        """Copy any rows that in-flight transactions changed during rejoin."""
        horizon = self.config.deadlock_timeout_ms + 10 * self.config.heartbeat_interval_ms
        yield self.env.timeout(horizon)
        dn = self.datanodes[addr]
        if not dn.running or not self.partition_map.is_up(addr):
            return
        group_index = next(
            g for g, group in enumerate(self.partition_map.node_groups) if addr in group
        )
        donors = [
            m
            for m in self.partition_map.node_groups[group_index]
            if m != addr and self.partition_map.is_up(m) and self.datanodes[m].running
        ]
        if not donors:
            return
        donor_store = self.datanodes[donors[0]].store
        for table in self.schema.tables():
            donor_rows = dict(donor_store.iter_rows(table.name))
            local_rows = dict(dn.store.iter_rows(table.name))
            for pk, value in donor_rows.items():
                if local_rows.get(pk) != value:
                    row = donor_store._rows.get((table.name, pk))
                    if row is not None:
                        dn.store.load(table.name, pk, row.partition_key, value)
            from .schema import TOMBSTONE

            for pk in local_rows:
                if pk not in donor_rows:
                    row = dn.store._rows.get((table.name, pk))
                    if row is not None:
                        dn.store.load(table.name, pk, row.partition_key, TOMBSTONE)

    def shutdown_component(self, addrs: set[NodeAddress], reason: str) -> None:
        # Sorted so shutdown order is deterministic across processes (the
        # caller passes a set, whose iteration order is hash-seed dependent).
        for addr in sorted(addrs):
            dn = self.datanodes.get(addr)
            if dn is not None and dn.running:
                dn.shutdown(reason)
            if self.partition_map.is_up(addr):
                self.partition_map.mark_down(addr)
        # The surviving component runs its node-failure handling for every
        # departed node: fail pending chain operations through them and roll
        # back transactions they coordinated.  This cannot ride on
        # on_node_failed — the departed nodes are already marked down, so
        # its is_up() idempotence guard would skip the take-over work.
        survivors = [
            dn
            for a, dn in sorted(self.datanodes.items())
            if dn.running and a not in addrs
        ]
        if not survivors:
            return
        for addr in sorted(addrs):
            for dn in survivors:
                dn.on_peer_failed(addr)
        self._take_over_orphans(set(addrs), survivors)

    def heal(self) -> None:
        """Heal partitions and reset arbitration epochs (not node restarts)."""
        self.network.heal_partitions()
        for mgmt in self.mgmt_nodes:
            mgmt.reset_arbitration()

    # ------------------------------------------------------------------ stats
    def thread_busy(self) -> dict[str, tuple[float, int]]:
        """Aggregate (busy_ms, cores) per NDB thread type, for Figure 11."""
        totals: dict[str, tuple[float, int]] = {}

        def add(name: str, busy: float, cores: int) -> None:
            b, c = totals.get(name, (0.0, 0))
            totals[name] = (b + busy, c + cores)

        for dn in self.datanodes.values():
            for pool in dn.ldm_pools:
                add("ldm", pool.busy_time, pool.cores)
            add("tc", dn.tc_pool.busy_time, dn.tc_pool.cores)
            add("recv", dn.recv_pool.busy_time, dn.recv_pool.cores)
            add("send", dn.send_pool.busy_time, dn.send_pool.cores)
            add("rep", dn.rep_pool.busy_time, dn.rep_pool.cores)
            add("io", dn.io_pool.busy_time, dn.io_pool.cores)
            add("main", dn.main_pool.busy_time, dn.main_pool.cores)
        return totals

    def disk_stats(self) -> dict[NodeAddress, tuple[int, int]]:
        """(bytes_read, bytes_written) per datanode disk."""
        return {
            dn.addr: (dn.disk.bytes_read, dn.disk.bytes_written)
            for dn in self.datanodes.values()
        }
