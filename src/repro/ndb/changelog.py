"""NDB changelog: committed-row-mutation stream for subscriber caches.

The listing cache (``repro.hopsfs.listcache``) pre-materializes directory
listings and inode attributes in NN memory; its invalidation signal is
this changelog.  When a transaction coordinator reaches the commit point
(all ChainCommits applied), it publishes the transaction's row images —
``(table, pk, partition_key, value)`` with :data:`~repro.ndb.schema.TOMBSTONE`
values for deletes — to the cluster's :class:`ChangelogBus`, which fans
them out as one-way ``ndb_changelog`` messages to every subscribed NN.

Delivery is fire-and-forget: messages to crashed or partitioned NNs are
silently dropped by the network.  Correctness therefore rests on two
gates carried in every batch:

* **sequence** — the bus stamps batches with a globally monotonically
  increasing ``seq``.  A subscriber that sees a gap (it missed a batch)
  flushes its cache rather than applying the batch over stale state.
* **epoch** — TC failure take-over can roll a transaction *forward* on a
  survivor without the TC-side op images, so its row mutations cannot be
  itemized.  The take-over protocol bumps the bus epoch instead; any
  batch carrying a new epoch makes subscribers flush wholesale.

With zero subscribers (``HopsFsConfig.listing_cache=None`` — the
default), ``publish`` is a pure no-op: no messages, no events, no state,
so every legacy schedule stays bit-identical to the pinned goldens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..net.network import Message
from ..types import NodeAddress

__all__ = ["ChangelogBatch", "ChangelogBus", "CHANGELOG_KIND"]

CHANGELOG_KIND = "ndb_changelog"

# Wire-size model: batch header plus one row image per record.
_BATCH_HEADER_BYTES = 96
_RECORD_BYTES = 64


@dataclass(frozen=True)
class ChangelogBatch:
    """One committed transaction's row mutations, sequence- and epoch-stamped."""

    epoch: int
    seq: int
    # (table, pk, partition_key, value) per committed row op; ``value`` is
    # TOMBSTONE for deletes.  Rows of tables a subscriber does not cache
    # still advance its applied sequence.
    records: tuple

    @property
    def size(self) -> int:
        return _BATCH_HEADER_BYTES + _RECORD_BYTES * len(self.records)


class ChangelogBus:
    """Cluster-level fan-out of committed row mutations to subscriber NNs."""

    def __init__(self, network):
        self.network = network
        self.epoch = 0
        self.seq = 0
        # Sorted for deterministic fan-out order (schedule determinism).
        self._subscribers: list[NodeAddress] = []
        self.published = 0  # batches published (counts epoch bumps too)

    @property
    def subscribers(self) -> tuple[NodeAddress, ...]:
        return tuple(self._subscribers)

    def subscribe(self, addr: NodeAddress) -> None:
        if addr not in self._subscribers:
            self._subscribers.append(addr)
            self._subscribers.sort()

    def unsubscribe(self, addr: NodeAddress) -> None:
        if addr in self._subscribers:
            self._subscribers.remove(addr)

    def publish(self, src: NodeAddress, records: Sequence[tuple]) -> None:
        """Fan out one committed transaction's row images from TC ``src``."""
        if not self._subscribers or not records:
            return
        self.seq += 1
        self.published += 1
        batch = ChangelogBatch(epoch=self.epoch, seq=self.seq, records=tuple(records))
        self._fan_out(src, batch)

    def bump_epoch(self, src: NodeAddress) -> None:
        """Invalidate every subscriber cache wholesale (take-over roll-forward).

        The surviving datanode that rolled the orphaned transaction forward
        cannot itemize its row images, so subscribers must not trust any
        cached entry from the old epoch.
        """
        self.epoch += 1
        if not self._subscribers:
            return
        self.seq += 1
        self.published += 1
        batch = ChangelogBatch(epoch=self.epoch, seq=self.seq, records=())
        self._fan_out(src, batch)

    def _fan_out(self, src: NodeAddress, batch: ChangelogBatch) -> None:
        for addr in self._subscribers:
            self.network.send(
                Message(
                    src=src,
                    dst=addr,
                    kind=CHANGELOG_KIND,
                    payload=batch,
                    size=batch.size,
                )
            )
