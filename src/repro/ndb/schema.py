"""Table definitions and the paper's new table options.

The two options introduced by the paper (Section IV-A3):

* ``read_backup`` — committed reads may be served by backup replicas; the
  commit protocol delays the client ACK until every backup has completed,
  so read-your-writes holds on any replica.
* ``fully_replicated`` — every datanode stores a copy of the table; writes
  run linear 2PC across all replicas, reads can be AZ-local everywhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError

__all__ = ["LockMode", "TableDef", "Schema", "TOMBSTONE"]

# Marker for deletes travelling through the prepare/commit pipeline.
TOMBSTONE = object()


class LockMode(enum.Enum):
    """Lock modes for NDB reads (writes always take EXCLUSIVE)."""

    NONE = "committed"  # read committed, no lock
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass(frozen=True)
class TableDef:
    """One NDB table.

    ``row_bytes`` sizes the messages that carry rows of this table, which
    feeds the network-utilization figures.
    """

    name: str
    read_backup: bool = False
    fully_replicated: bool = False
    row_bytes: int = 192

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("table needs a name")
        if self.row_bytes <= 0:
            raise ConfigError("row_bytes must be positive")


class Schema:
    """The set of tables in one NDB cluster."""

    def __init__(self) -> None:
        self._tables: dict[str, TableDef] = {}

    def define(
        self,
        name: str,
        read_backup: bool = False,
        fully_replicated: bool = False,
        row_bytes: int = 192,
    ) -> TableDef:
        if name in self._tables:
            raise ConfigError(f"table {name!r} already defined")
        table = TableDef(
            name=name,
            read_backup=read_backup,
            fully_replicated=fully_replicated,
            row_bytes=row_bytes,
        )
        self._tables[name] = table
        return table

    def table(self, name: str) -> TableDef:
        try:
            return self._tables[name]
        except KeyError:
            raise ConfigError(f"unknown table {name!r}") from None

    def get(self, name: str) -> Optional[TableDef]:
        return self._tables.get(name)

    def tables(self) -> list[TableDef]:
        return list(self._tables.values())

    def with_read_backup_everywhere(self) -> "Schema":
        """Clone with ``read_backup`` forced on for every table.

        HopsFS-CL "ensures that all the tables are Read Backup enabled"
        (Section IV-A5); this is the switch that does it.
        """
        clone = Schema()
        for table in self._tables.values():
            clone.define(
                table.name,
                read_backup=True,
                fully_replicated=table.fully_replicated,
                row_bytes=table.row_bytes,
            )
        return clone

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)
