"""Application-defined partitioning (ADP) and replica placement.

NDB datanodes are organized into node groups of ``replication`` members; a
partition is owned by one node group; each member stores a replica, one of
which is the primary (Section II-B1).  On node failure the surviving
members promote their backup fragments to primary (Section IV-A2).

Fully-replicated tables have a copy on every datanode; their write chain
spans the primary replicas of all node groups (Section IV-A3).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

from ..errors import ConfigError, NoDatanodesError
from ..types import NodeAddress

__all__ = ["stable_hash", "ReplicaSet", "PartitionMap"]


def stable_hash(key: Hashable) -> int:
    """Deterministic cross-run hash for partition keys."""
    return zlib.crc32(repr(key).encode("utf-8", "surrogatepass"))


@dataclass(frozen=True)
class ReplicaSet:
    """Replicas of one partition, primary first."""

    primary: NodeAddress
    backups: tuple[NodeAddress, ...]

    @property
    def chain(self) -> tuple[NodeAddress, ...]:
        """Linear-2PC prepare order: primary, then backups (Fig. 2)."""
        return (self.primary,) + self.backups

    @property
    def all(self) -> tuple[NodeAddress, ...]:
        return self.chain

    def role_of(self, node: NodeAddress) -> Optional[int]:
        """0 for primary, 1.. for backups, None if not a replica."""
        if node == self.primary:
            return 0
        try:
            return self.backups.index(node) + 1
        except ValueError:
            return None


class PartitionMap:
    """Partition → node-group → replica assignment with failure promotion."""

    def __init__(
        self,
        datanodes: Sequence[NodeAddress],
        replication: int,
        num_partitions: int,
    ):
        if replication < 1:
            raise ConfigError("replication must be >= 1")
        if len(datanodes) % replication != 0:
            raise ConfigError("datanode count must be divisible by replication")
        if not datanodes:
            raise ConfigError("need at least one datanode")
        self.datanodes = tuple(datanodes)
        self.replication = replication
        self.num_partitions = num_partitions
        self.num_groups = len(datanodes) // replication
        # Node groups are formed round-robin so that consecutive indices land
        # in different groups — matching the paper's Figures 3/4 where
        # (N1, N3, N5) form one group and (N2, N4, N6) the other.
        self.node_groups: list[tuple[NodeAddress, ...]] = [
            tuple(self.datanodes[g::self.num_groups]) for g in range(self.num_groups)
        ]
        self._down: set[NodeAddress] = set()
        # Memo caches: partition_of is a pure function of the key;
        # replica sets only change when the down-set changes.
        self._partition_cache: dict = {}
        self._replica_cache: dict = {}

    # -- liveness -----------------------------------------------------------
    def mark_down(self, node: NodeAddress) -> None:
        if node not in self.datanodes:
            raise ConfigError(f"{node} is not an NDB datanode")
        self._down.add(node)
        self._replica_cache.clear()

    def mark_up(self, node: NodeAddress) -> None:
        self._down.discard(node)
        self._replica_cache.clear()

    def is_up(self, node: NodeAddress) -> bool:
        return node not in self._down

    def live_datanodes(self) -> list[NodeAddress]:
        return [n for n in self.datanodes if n not in self._down]

    def group_is_viable(self, group_index: int) -> bool:
        """A node group with all members dead loses data: cluster down."""
        return any(n not in self._down for n in self.node_groups[group_index])

    def cluster_viable(self) -> bool:
        return all(self.group_is_viable(g) for g in range(self.num_groups))

    # -- placement ------------------------------------------------------------
    def partition_of(self, partition_key: Hashable) -> int:
        try:
            return self._partition_cache[partition_key]
        except KeyError:
            partition = stable_hash(partition_key) % self.num_partitions
            self._partition_cache[partition_key] = partition
            return partition

    def group_of(self, partition: int) -> int:
        return partition % self.num_groups

    def _ordered_group_members(self, partition: int, group_index: int) -> list[NodeAddress]:
        """Group members in primary-preference order for ``partition``.

        Primaries rotate across group members so load is balanced (NDB
        assigns one primary fragment per partition round-robin).
        """
        group = self.node_groups[group_index]
        offset = (partition // self.num_groups) % len(group)
        return [group[(offset + i) % len(group)] for i in range(len(group))]

    def replicas(self, partition: int, fully_replicated: bool = False) -> ReplicaSet:
        """Current replica set (failure promotions applied), primary first."""
        key = (partition, fully_replicated)
        try:
            return self._replica_cache[key]
        except KeyError:
            pass
        result = self._replicas_uncached(partition, fully_replicated)
        self._replica_cache[key] = result
        return result

    def _replicas_uncached(self, partition: int, fully_replicated: bool) -> ReplicaSet:
        if fully_replicated:
            chain: list[NodeAddress] = []
            for g in range(self.num_groups):
                members = self._ordered_group_members(partition, g)
                chain.extend(m for m in members if m not in self._down)
            if not chain:
                raise NoDatanodesError(f"no live replica for FR partition {partition}")
            return ReplicaSet(primary=chain[0], backups=tuple(chain[1:]))
        group_index = self.group_of(partition)
        members = self._ordered_group_members(partition, group_index)
        live = [m for m in members if m not in self._down]
        if not live:
            raise NoDatanodesError(
                f"node group {group_index} entirely down; partition {partition} lost"
            )
        return ReplicaSet(primary=live[0], backups=tuple(live[1:]))

    def replicas_for_key(self, partition_key: Hashable, fully_replicated: bool = False) -> ReplicaSet:
        return self.replicas(self.partition_of(partition_key), fully_replicated)

    def partitions_on(self, node: NodeAddress) -> list[int]:
        """All partitions for which ``node`` stores a (non-FR) replica."""
        owned = []
        for partition in range(self.num_partitions):
            group = self.node_groups[self.group_of(partition)]
            if node in group:
                owned.append(partition)
        return owned
