"""NDB management nodes and split-brain arbitration.

A management node's role during network partitions (Section IV-A2): the
arbitrator "accepts the first set of database nodes to contact it and tells
the remaining set to shutdown"; nodes that cannot contact the arbitrator
assume they are partitioned and shut down gracefully.
"""

from __future__ import annotations

from typing import Optional

from ..net.network import Message, Network
from ..sim import Environment
from ..types import AzId, NodeAddress
from .messages import ArbitrationReq

__all__ = ["ManagementNode"]


class ManagementNode:
    """One ndb_mgmd process; at most one is the active arbitrator."""

    def __init__(self, env: Environment, network: Network, addr: NodeAddress, az: AzId):
        self.env = env
        self.network = network
        self.addr = addr
        self.az = az
        self.mailbox = network.register(addr)
        self.running = False
        # Arbitration state: the component granted the right to continue in
        # the current partition epoch.
        self.granted_component: Optional[frozenset[NodeAddress]] = None
        self.arbitration_epoch = 0
        self.grants = 0
        self.denials = 0
        self._loop_proc = None

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        if self._loop_proc is None or not self._loop_proc.is_alive:
            self._loop_proc = self.env.process(self._loop(), name=f"{self.addr}:mgmd")

    def shutdown(self) -> None:
        self.running = False
        self.network.set_down(self.addr)

    def restart(self) -> None:
        """Bring the mgmd back; arbitration state restarts at a fresh epoch."""
        if self.running:
            return
        self.reset_arbitration()
        self.network.set_up(self.addr)
        self.start()

    def reset_arbitration(self) -> None:
        """Called when partitions heal; the next partition is a new epoch."""
        self.granted_component = None
        self.arbitration_epoch += 1

    def _loop(self):
        while True:
            msg = yield self.mailbox.get()
            if not self.running:
                continue
            if msg.kind == "arbitration_req":
                self._arbitrate(msg)

    def _arbitrate(self, msg: Message) -> None:
        req: ArbitrationReq = msg.payload
        if self.granted_component is None:
            # First component to reach the arbitrator wins.
            self.granted_component = frozenset(req.component)
            self.grants += 1
            self.network.reply(msg, payload=True)
            return
        if req.requester in self.granted_component:
            self.grants += 1
            self.network.reply(msg, payload=True)
        else:
            self.denials += 1
            self.network.reply(msg, payload=False)
