"""Per-datanode fragment store and cluster-wide read statistics.

Each NDB datanode stores the fragments (partition replicas) assigned to its
node group.  A prepared-but-uncommitted version sits next to the committed
one until Commit/Complete applies it — this is what makes the short
"backup replicas might be out of date" window of Section II-B2 observable,
and what the Read Backup delayed-ACK change closes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Hashable, Iterator, Optional

from ..errors import NdbError
from ..types import NodeAddress
from .schema import TOMBSTONE

__all__ = ["FragmentStore", "ReadStats"]


@dataclass
class _Row:
    value: Any
    partition_key: Hashable


@dataclass
class _Prepared:
    txid: int
    value: Any  # TOMBSTONE for deletes
    partition_key: Hashable


class FragmentStore:
    """Committed rows + prepared (in-flight) versions on one datanode."""

    def __init__(self) -> None:
        self._rows: dict[tuple[str, Hashable], _Row] = {}
        # (table, partition_key) -> set of pks, for partition-pruned scans.
        self._index: dict[tuple[str, Hashable], set[Hashable]] = defaultdict(set)
        self._prepared: dict[tuple[str, Hashable], _Prepared] = {}

    # -- reads ------------------------------------------------------------
    def read(self, table: str, pk: Hashable) -> Optional[Any]:
        row = self._rows.get((table, pk))
        return row.value if row is not None else None

    def lookup(self, table: str, pk: Hashable) -> tuple[bool, Optional[Any]]:
        """Committed read distinguishing absent from present: (found, value).

        The durability-horizon invariant audits whether specific batch
        writes (including deletes) landed; ``read`` alone cannot tell an
        absent row from one whose value is None.
        """
        row = self._rows.get((table, pk))
        if row is None:
            return False, None
        return True, row.value

    def read_for(self, txid: int, table: str, pk: Hashable) -> Optional[Any]:
        """Read seeing the transaction's own prepared (uncommitted) version."""
        prepared = self._prepared.get((table, pk))
        if prepared is not None and prepared.txid == txid:
            return None if prepared.value is TOMBSTONE else prepared.value
        return self.read(table, pk)

    def scan(self, table: str, partition_key: Hashable) -> list[tuple[Hashable, Any]]:
        """All committed rows of ``table`` with the given partition key."""
        result = []
        for pk in self._index.get((table, partition_key), ()):
            row = self._rows.get((table, pk))
            if row is not None:
                result.append((pk, row.value))
        result.sort(key=lambda item: repr(item[0]))
        return result

    def has_prepared(self, table: str, pk: Hashable) -> bool:
        return (table, pk) in self._prepared

    # -- write pipeline -----------------------------------------------------
    def prepare(self, txid: int, table: str, pk: Hashable, partition_key: Hashable, value: Any) -> None:
        key = (table, pk)
        existing = self._prepared.get(key)
        if existing is not None and existing.txid != txid:
            raise NdbError(
                f"row {key} already prepared by txn {existing.txid} (lock protocol violated)"
            )
        self._prepared[key] = _Prepared(txid=txid, value=value, partition_key=partition_key)

    def commit_prepared(self, txid: int, table: str, pk: Hashable) -> None:
        key = (table, pk)
        prepared = self._prepared.pop(key, None)
        if prepared is None or prepared.txid != txid:
            raise NdbError(f"no prepared version of {key} for txn {txid}")
        self._apply(table, pk, prepared.partition_key, prepared.value)

    def abort_prepared(self, txid: int, table: str, pk: Hashable) -> None:
        key = (table, pk)
        prepared = self._prepared.get(key)
        if prepared is not None and prepared.txid == txid:
            del self._prepared[key]

    def abort_all(self, txid: int) -> None:
        doomed = [k for k, p in self._prepared.items() if p.txid == txid]
        for key in doomed:
            del self._prepared[key]

    def commit_all(self, txid: int) -> None:
        """Apply every prepared version of ``txid`` (take-over roll-forward)."""
        decided = [k for k, p in self._prepared.items() if p.txid == txid]
        for table, pk in decided:
            self.commit_prepared(txid, table, pk)

    # -- bulk load (preloading namespaces without the protocol) -----------------
    def load(self, table: str, pk: Hashable, partition_key: Hashable, value: Any) -> None:
        self._apply(table, pk, partition_key, value)

    def _apply(self, table: str, pk: Hashable, partition_key: Hashable, value: Any) -> None:
        key = (table, pk)
        old = self._rows.get(key)
        if value is TOMBSTONE:
            if old is not None:
                del self._rows[key]
                self._index[(table, old.partition_key)].discard(pk)
            return
        if old is not None and old.partition_key != partition_key:
            self._index[(table, old.partition_key)].discard(pk)
        self._rows[key] = _Row(value=value, partition_key=partition_key)
        self._index[(table, partition_key)].add(pk)

    # -- introspection -------------------------------------------------------
    def row_count(self, table: Optional[str] = None) -> int:
        if table is None:
            return len(self._rows)
        return sum(1 for t, _pk in self._rows if t == table)

    def prepared_count(self) -> int:
        return len(self._prepared)

    def iter_prepared(self) -> Iterator[tuple[tuple[str, Hashable], int]]:
        """Each prepared-but-uncommitted version as ``((table, pk), txid)``."""
        for key, prepared in self._prepared.items():
            yield key, prepared.txid

    def iter_rows(self, table: str) -> Iterator[tuple[Hashable, Any]]:
        for (t, pk), row in self._rows.items():
            if t == table:
                yield pk, row.value


class ReadStats:
    """Cluster-wide counters of which replica served each committed read.

    Figure 14 of the paper plots, per partition, the fraction of reads that
    hit the primary vs each backup replica with Read Backup on and off.
    """

    def __init__(self) -> None:
        # (table, partition, replica_role) -> count;  role 0 = primary.
        self.by_replica: dict[tuple[str, int, int], int] = defaultdict(int)
        # AZ locality accounting: were reader and serving node in the same AZ?
        self.az_local_reads = 0
        self.az_remote_reads = 0

    def record(
        self,
        table: str,
        partition: int,
        role: int,
        node: NodeAddress,
        same_az: bool,
    ) -> None:
        self.by_replica[(table, partition, role)] += 1
        if same_az:
            self.az_local_reads += 1
        else:
            self.az_remote_reads += 1

    def partition_distribution(self, partition: int) -> dict[int, int]:
        """role -> reads for one partition, summed over tables."""
        out: dict[int, int] = defaultdict(int)
        for (table, part, role), count in self.by_replica.items():
            if part == partition:
                out[role] += count
        return dict(out)

    def total_reads(self) -> int:
        return sum(self.by_replica.values())

    def primary_fraction(self) -> float:
        total = self.total_reads()
        if not total:
            return 0.0
        primary = sum(c for (t, p, role), c in self.by_replica.items() if role == 0)
        return primary / total

    def az_local_fraction(self) -> float:
        total = self.az_local_reads + self.az_remote_reads
        return self.az_local_reads / total if total else 0.0
