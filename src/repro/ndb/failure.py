"""Heartbeats, failure detection and the partition/arbitration protocol.

NDB datanodes heartbeat in a ring; a node that misses
``heartbeat_misses_for_failure`` intervals from its predecessor starts the
failure protocol (Section II-B2).  If the suspect is truly down, surviving
node-group members promote their backup fragments; if the suspect is alive
but unreachable (a network partition), the detector's connected component
asks the arbitrator for permission to continue and shuts down when denied
or when the arbitrator is unreachable (Section IV-A2).

Simplification vs. real NDB: agreement among survivors uses the simulator's
ground-truth reachability instead of a gossip round; the outcome (which
side survives, who aborts what) is identical.
"""

from __future__ import annotations

from ..net.network import Message
from ..types import NodeAddress
from .messages import ArbitrationReq, HeartbeatMsg

__all__ = ["HeartbeatProtocol"]


class HeartbeatProtocol:
    """Drives heartbeat rings and failure detection for one NDB cluster."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.env = cluster.env
        self.network = cluster.network
        self.config = cluster.config
        # Suspicions already being handled (avoid duplicate protocols).
        self._handling: set[NodeAddress] = set()

    def start(self) -> None:
        for datanode in self.cluster.datanodes.values():
            self.env.process(self._sender(datanode), name=f"{datanode.addr}:hb-send")
            self.env.process(self._checker(datanode), name=f"{datanode.addr}:hb-check")

    # -- ring topology ---------------------------------------------------------
    def _ring(self) -> list[NodeAddress]:
        # Membership is what the cluster *believes*: a crashed node stays in
        # the ring until the failure protocol declares it down — that's what
        # its successor's missed heartbeats are for.
        return [
            dn.addr
            for dn in self.cluster.datanodes.values()
            if self.cluster.partition_map.is_up(dn.addr)
        ]

    def _successor(self, addr: NodeAddress) -> NodeAddress | None:
        ring = self._ring()
        if addr not in ring or len(ring) < 2:
            return None
        return ring[(ring.index(addr) + 1) % len(ring)]

    def _predecessor(self, addr: NodeAddress) -> NodeAddress | None:
        ring = self._ring()
        if addr not in ring or len(ring) < 2:
            return None
        return ring[(ring.index(addr) - 1) % len(ring)]

    # -- processes -----------------------------------------------------------
    def _sender(self, datanode):
        interval = self.config.heartbeat_interval_ms
        while datanode.running:
            successor = self._successor(datanode.addr)
            if successor is not None:
                self.network.send(
                    Message(
                        src=datanode.addr,
                        dst=successor,
                        kind="heartbeat",
                        payload=HeartbeatMsg(sender=datanode.addr),
                        size=64,
                    )
                )
            yield self.env.timeout(interval)

    def _checker(self, datanode):
        interval = self.config.heartbeat_interval_ms
        deadline = interval * self.config.heartbeat_misses_for_failure
        watch_since: dict[NodeAddress, float] = {}
        while datanode.running:
            yield self.env.timeout(interval)
            if not datanode.running:
                return
            predecessor = self._predecessor(datanode.addr)
            if predecessor is None:
                continue
            if predecessor not in watch_since:
                watch_since.clear()
                watch_since[predecessor] = self.env.now
            last = datanode.last_heartbeat_from.get(predecessor, watch_since[predecessor])
            last = max(last, watch_since[predecessor])
            if self.env.now - last > deadline:
                self._suspect(datanode, predecessor)
                watch_since.clear()

    # -- failure / partition protocol -------------------------------------------
    def _suspect(self, detector, suspect: NodeAddress) -> None:
        if suspect in self._handling or not self.cluster.partition_map.is_up(suspect):
            return
        if not self.network.is_up(suspect):
            # Crash failure: run the node-failure protocol (synchronous).
            self._handling.add(suspect)
            try:
                self.cluster.on_node_failed(suspect)
            finally:
                self._handling.discard(suspect)
            return
        # Suspect is alive but unreachable: network partition.  The suspect
        # stays in ``_handling`` for the whole arbitration round trip so the
        # checker (which keeps missing heartbeats every interval) does not
        # pile up duplicate protocols for the same suspicion.
        self._handling.add(suspect)
        self.env.process(
            self._guarded_partition_protocol(detector, suspect),
            name=f"{detector.addr}:arbitration",
        )

    def _guarded_partition_protocol(self, detector, suspect: NodeAddress):
        try:
            yield from self._partition_protocol(detector)
        finally:
            self._handling.discard(suspect)

    def _component_of(self, detector) -> list:
        component = []
        for dn in self.cluster.datanodes.values():
            if not dn.running:
                continue
            if dn.addr == detector.addr or self.network.reachable(detector.addr, dn.addr):
                component.append(dn)
        return component

    def _component_viable(self, component_addrs: set[NodeAddress]) -> bool:
        pmap = self.cluster.partition_map
        for group in pmap.node_groups:
            if not any(member in component_addrs for member in group):
                return False
        return True

    def _partition_protocol(self, detector):
        component = self._component_of(detector)
        component_addrs = {dn.addr for dn in component}
        if not self._component_viable(component_addrs):
            # Cannot form a complete cluster: shut down gracefully.
            self.cluster.shutdown_component(component_addrs, "incomplete component")
            return
        arbitrator = self.cluster.arbitrator()
        granted = False
        if arbitrator is not None:
            try:
                granted = yield self.network.call(
                    detector.addr,
                    arbitrator.addr,
                    "arbitration_req",
                    ArbitrationReq(
                        requester=detector.addr, component=frozenset(component_addrs)
                    ),
                    size=128,
                )
            except Exception:
                granted = False
        if not granted:
            # Failed to contact the arbitrator (or denied): assume we are on
            # the losing side of the partition and shut down (Section IV-A2).
            self.cluster.shutdown_component(component_addrs, "lost arbitration")
            return
        # We won arbitration: declare the unreachable nodes failed.
        for dn in self.cluster.datanodes.values():
            if dn.addr not in component_addrs and self.cluster.partition_map.is_up(dn.addr):
                self.cluster.on_node_failed(dn.addr)
