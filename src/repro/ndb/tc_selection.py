"""Transaction-coordinator selection and read-replica routing.

Implements Section IV-A4/IV-A5 of the paper: nodes are ordered by the
AZ-aware proximity score (same host < same AZ < other AZ) and the TC is
chosen by one of four cases depending on the table options and the hint.

Without AZ awareness (vanilla HopsFS), selection degrades to plain
distribution-aware transactions (DAT): the primary replica of the hinted
partition, or a random node when there is no hint.
"""

from __future__ import annotations

import random
from typing import Hashable, Optional, Sequence

from ..errors import NoDatanodesError
from ..net.topology import Topology
from ..types import NodeAddress
from .partitioning import PartitionMap
from .schema import TableDef

__all__ = ["select_tc", "select_read_replica"]


def _best_by_proximity(
    topology: Topology,
    caller: NodeAddress,
    candidates: Sequence[NodeAddress],
    rng: random.Random,
) -> NodeAddress:
    """Pick the candidate with the best (lowest) proximity rank.

    Ties are broken uniformly at random to spread load across equally-near
    nodes, as the NDB API does.
    """
    if not candidates:
        raise ValueError("no candidates")
    best_rank = min(topology.proximity_rank(caller, node) for node in candidates)
    best = [n for n in candidates if topology.proximity_rank(caller, n) == best_rank]
    return best[0] if len(best) == 1 else rng.choice(best)


def select_tc(
    topology: Topology,
    partition_map: PartitionMap,
    table: Optional[TableDef],
    hint_partition_key: Optional[Hashable],
    caller: NodeAddress,
    az_aware: bool,
    rng: random.Random,
) -> NodeAddress:
    """Choose the datanode whose TC thread will coordinate a transaction."""
    live = partition_map.live_datanodes()
    if not live:
        raise NoDatanodesError("no live NDB datanodes")

    if not az_aware:
        # Vanilla DAT: primary replica of the hinted partition, else random.
        if table is not None and hint_partition_key is not None:
            replicas = partition_map.replicas_for_key(
                hint_partition_key, table.fully_replicated
            )
            return replicas.primary
        return rng.choice(live)

    # AZ-aware policy (the four cases of Section IV-A5).
    if table is not None and hint_partition_key is not None:
        replicas = partition_map.replicas_for_key(hint_partition_key, table.fully_replicated)
        candidates = [n for n in replicas.all if partition_map.is_up(n)]
        if table.read_backup and candidates:
            # Case 1: read-backup table: the replica local to our AZ,
            # primary or backup.
            return _best_by_proximity(topology, caller, candidates, rng)
        if table.fully_replicated:
            # Case 2: fully replicated: every node has the data.
            return _best_by_proximity(topology, caller, live, rng)
        if candidates:
            # Case 3: default: a replica in our AZ if any, else the primary
            # (reads will be rerouted to the primary regardless).
            same_az = [
                n
                for n in candidates
                if topology.az_of(n) == topology.az_of(caller)
            ]
            if same_az:
                return same_az[0] if len(same_az) == 1 else rng.choice(same_az)
            return replicas.primary
    # Case 4: no nodes found for the hint (or no hint): all datanodes by
    # proximity score.
    return _best_by_proximity(topology, caller, live, rng)


def select_read_replica(
    topology: Topology,
    partition_map: PartitionMap,
    table: TableDef,
    partition: int,
    reader: NodeAddress,
    az_aware: bool,
    rng: random.Random,
) -> tuple[NodeAddress, int]:
    """Route a committed (unlocked) read; returns ``(node, replica_role)``.

    Default NDB routes all committed reads to the primary replica (the
    backups may briefly lag, Section II-B2).  With ``read_backup`` the read
    may be served by any replica, and with AZ awareness we prefer the
    replica closest to the reader — the mechanism behind Figure 14.
    """
    replicas = partition_map.replicas(partition, table.fully_replicated)
    if not (table.read_backup or table.fully_replicated):
        return replicas.primary, 0
    candidates = list(replicas.all)
    if az_aware:
        chosen = _best_by_proximity(topology, reader, candidates, rng)
    else:
        chosen = rng.choice(candidates)
    role = replicas.role_of(chosen)
    assert role is not None
    return chosen, role
