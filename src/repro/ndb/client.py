"""Client-side NDB API: sessions, transactions and the retry loop.

The API mirrors what HopsFS uses from ClusterJ/the NDB API: begin a
transaction with a partition-key *hint* (distribution-aware transactions),
primary-key reads at a chosen lock level, partition-pruned index scans,
writes, and commit/abort.  Transient failures surface as
:class:`TransactionAbortedError` with ``retryable=True``; HopsFS wraps
operations in :func:`run_transaction` which retries with backoff,
providing backpressure to NDB (Section II-B2).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional

from ..errors import (
    DeadlineExceededError,
    HostUnreachableError,
    NdbError,
    TransactionAbortedError,
)
from ..types import AzId, NodeAddress
from .messages import TcAbortReq, TcCommitReq, TcReadReq, TcScanReq, TcWriteReq
from .schema import TOMBSTONE, LockMode
from .tc_selection import select_tc

__all__ = ["NdbApi", "NdbTransaction", "run_transaction"]


class NdbApi:
    """A per-host handle to the NDB cluster (one per metadata server)."""

    def __init__(self, cluster, addr: NodeAddress):
        self.cluster = cluster
        self.addr = addr
        self.az: AzId = cluster.network.topology.az_of(addr)
        self._rng = cluster.rng.stream(f"ndbapi:{addr}")

    def transaction(
        self,
        hint_table: Optional[str] = None,
        hint_key: Optional[Hashable] = None,
    ) -> "NdbTransaction":
        """Open a transaction; the TC is chosen now, from the hint."""
        table = self.cluster.schema.get(hint_table) if hint_table else None
        tc = select_tc(
            self.cluster.network.topology,
            self.cluster.partition_map,
            table,
            hint_key,
            self.addr,
            self.cluster.config.az_aware,
            self._rng,
        )
        return NdbTransaction(self, tc)


class NdbTransaction:
    """One open transaction, pinned to a transaction coordinator."""

    def __init__(self, api: NdbApi, tc: NodeAddress):
        self.api = api
        self.tc = tc
        self.txid = api.cluster.next_txid()
        self.finished = False
        self.mutated = False
        # Rows written/deleted so far: group-commit spans report it as the
        # batch's redo-log size.
        self.write_count = 0
        # Set by run_transaction when tracing: the attempt span every RPC of
        # this transaction parents under.
        self.obs_span = None

    # -- plumbing ---------------------------------------------------------
    def _call(self, kind: str, payload: Any, size: int = 192):
        if self.finished:
            raise NdbError(f"transaction {self.txid} already finished")
        network = self.api.cluster.network
        try:
            result = yield network.call(
                self.api.addr, self.tc, kind, payload, size=size,
                parent_span=self.obs_span,
            )
        except HostUnreachableError as exc:
            # The TC died (or we got partitioned from it).  NDB's take-over
            # protocol rebuilds/aborts the transaction on another TC; from
            # the client's perspective the transaction aborted, retryable.
            self.finished = True
            raise TransactionAbortedError(f"TC {self.tc} unreachable: {exc}") from exc
        return result

    # -- operations -----------------------------------------------------------
    def read(
        self,
        table: str,
        pk: Hashable,
        partition_key: Optional[Hashable] = None,
        lock: LockMode = LockMode.NONE,
    ):
        """Primary-key read.  ``lock`` NONE = read committed."""
        req = TcReadReq(
            txid=self.txid,
            table=table,
            pk=pk,
            partition_key=pk if partition_key is None else partition_key,
            lock=lock,
            client_az=self.api.az,
        )
        value = yield from self._call("tc_read", req)
        return value

    def scan(self, table: str, partition_key: Hashable):
        """Partition-pruned index scan: all rows with ``partition_key``."""
        req = TcScanReq(
            txid=self.txid,
            table=table,
            partition_key=partition_key,
            client_az=self.api.az,
        )
        rows = yield from self._call("tc_scan", req)
        return rows

    def write(
        self,
        table: str,
        pk: Hashable,
        value: Any,
        partition_key: Optional[Hashable] = None,
        size_hint: Optional[int] = None,
    ):
        """Insert or update a row (prepared on all replicas before return).

        ``size_hint`` sizes the wire message — used for small files whose
        payload travels inside the metadata row (Section II-A3).
        """
        req = TcWriteReq(
            txid=self.txid,
            table=table,
            pk=pk,
            partition_key=pk if partition_key is None else partition_key,
            value=value,
            client_az=self.api.az,
        )
        self.mutated = True
        self.write_count += 1
        yield from self._call("tc_write", req, size=max(128, size_hint or 256))

    def delete(self, table: str, pk: Hashable, partition_key: Optional[Hashable] = None):
        req = TcWriteReq(
            txid=self.txid,
            table=table,
            pk=pk,
            partition_key=pk if partition_key is None else partition_key,
            value=TOMBSTONE,
            client_az=self.api.az,
        )
        self.mutated = True
        self.write_count += 1
        yield from self._call("tc_write", req, size=128)

    def commit(self):
        yield from self._call("tc_commit", TcCommitReq(txid=self.txid), size=96)
        self.finished = True

    def abort(self):
        if self.finished:
            return
        try:
            yield from self._call("tc_abort", TcAbortReq(txid=self.txid), size=96)
        except TransactionAbortedError:
            pass  # TC already gone; the take-over/failure path cleans up
        self.finished = True


def run_transaction(
    api: NdbApi,
    body: Callable[[NdbTransaction], Any],
    hint_table: Optional[str] = None,
    hint_key: Optional[Hashable] = None,
    max_retries: int = 12,
    base_backoff_ms: float = 2.0,
    max_backoff_ms: float = 200.0,
    parent_span=None,
    deadline: Optional[float] = None,
):
    """Run ``body(txn)`` (a generator function) with commit and retries.

    This is HopsFS's transaction retry mechanism: aborted transactions are
    retried with exponential backoff, which provides backpressure to NDB.
    Non-retryable errors (application errors) abort and propagate.

    ``deadline`` (absolute sim ms) is the enclosing op's budget: expired
    before an attempt, or an attempt whose backoff would sleep past it,
    fails fast with :class:`DeadlineExceededError` instead of starting
    doomed work.

    When tracing, each attempt gets its own ``ndb.txn`` span under
    ``parent_span``, tagged with the attempt index, the selected TC and its
    AZ, and the outcome — TC selection and retry behaviour then read
    directly off the trace.
    """
    env = api.cluster.env
    rng = api.cluster.rng.stream(f"txnretry:{api.addr}")
    obs = env.obs
    attempt = 0
    while True:
        if deadline is not None and env.now >= deadline:
            raise DeadlineExceededError("op deadline expired before NDB attempt")
        txn = api.transaction(hint_table=hint_table, hint_key=hint_key)
        span = None
        if obs is not None:
            span = obs.tracer.start(
                "ndb.txn", parent=parent_span,
                host=str(api.addr), tc=str(txn.tc),
                tc_az=api.cluster.network.topology.az_of(txn.tc),
                attempt=attempt,
            )
            txn.obs_span = span
        try:
            result = yield from body(txn)
            yield from txn.commit()
            if span is not None:
                obs.tracer.finish(span, outcome="committed")
                if obs.timeseries is not None:
                    obs.timeseries.inc("ndb.txn.committed", env.now)
            return result
        except TransactionAbortedError as exc:
            yield from txn.abort()
            if span is not None:
                obs.tracer.finish(span, outcome="aborted", retryable=exc.retryable)
                obs.registry.counter("ndb.txn.aborts").inc()
                if obs.timeseries is not None:
                    obs.timeseries.inc("ndb.txn.aborted", env.now)
            if not exc.retryable or attempt >= max_retries:
                raise
            attempt += 1
            backoff = min(max_backoff_ms, base_backoff_ms * (2 ** (attempt - 1)))
            delay = backoff * (0.5 + rng.random())
            if deadline is not None and env.now + delay >= deadline:
                raise DeadlineExceededError(
                    "op deadline would expire during NDB retry backoff"
                ) from exc
            yield env.timeout(delay)
        except GeneratorExit:
            raise  # closing a simulation generator must not yield again
        except BaseException:
            yield from txn.abort()
            if span is not None:
                obs.tracer.finish(span, outcome="error")
            raise
