"""NDB cluster configuration, thread layout (Table II) and service costs.

The thread configuration reproduces Table II of the paper: each NDB
datanode pins 27 threads — 12 LDM (data shards), 7 TC (transaction
coordination), 3 RECV, 2 SEND, 1 REP, 1 IO, 1 MAIN.

Service costs are the per-message CPU times of the simulation's performance
model.  They were calibrated so that a 12-datanode cluster saturates at the
paper's observed ~1.6M file-system ops/s (Fig. 5); see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError

__all__ = ["ThreadConfig", "NdbCosts", "NdbConfig", "TABLE2_THREADS"]

# Table II: thread type -> count.
TABLE2_THREADS: dict[str, int] = {
    "ldm": 12,
    "tc": 7,
    "recv": 3,
    "send": 2,
    "rep": 1,
    "io": 1,
    "main": 1,
}


@dataclass(frozen=True)
class ThreadConfig:
    """Per-datanode CPU thread counts (defaults = Table II, 27 threads)."""

    ldm: int = 12
    tc: int = 7
    recv: int = 3
    send: int = 2
    rep: int = 1
    io: int = 1
    main: int = 1

    @property
    def total(self) -> int:
        return self.ldm + self.tc + self.recv + self.send + self.rep + self.io + self.main

    def counts(self) -> dict[str, int]:
        return {
            "ldm": self.ldm,
            "tc": self.tc,
            "recv": self.recv,
            "send": self.send,
            "rep": self.rep,
            "io": self.io,
            "main": self.main,
        }


@dataclass(frozen=True)
class NdbCosts:
    """Per-event CPU service times in milliseconds.

    Calibrated against the paper's absolute numbers; the *relative* results
    are insensitive to moderate changes in these values because every setup
    shares them.
    """

    recv_msg: float = 0.0008  # RECV thread work per inbound message
    send_msg: float = 0.0006  # SEND thread work per outbound message
    tc_step: float = 0.0045  # TC thread work per protocol step
    ldm_read: float = 0.044  # LDM read (committed or locked)
    ldm_prepare: float = 0.055  # LDM prepare (lock + buffer redo)
    ldm_commit: float = 0.022  # LDM apply on commit/complete
    ldm_scan_base: float = 0.044  # partition-pruned index scan, fixed part
    ldm_scan_row: float = 0.0055  # per row returned by a scan
    redo_bytes_per_write: int = 512  # redo-log bytes per committed row


@dataclass(frozen=True)
class NdbConfig:
    """Deployment-level NDB configuration."""

    num_datanodes: int = 12
    replication: int = 2  # NoOfReplicas
    # Partitions per table; NDB uses #LDM-threads x #node-groups fragments,
    # 144 keeps every LDM thread of every node loaded for R in {2, 3}.
    num_partitions: int = 288
    threads: ThreadConfig = field(default_factory=ThreadConfig)
    costs: NdbCosts = field(default_factory=NdbCosts)
    # Timeouts (ms).  NDB defaults are 1200ms both; kept low enough that
    # failure tests converge quickly but high enough not to fire in steady
    # state.
    deadlock_timeout_ms: float = 1200.0
    inactive_timeout_ms: float = 5000.0
    heartbeat_interval_ms: float = 100.0
    heartbeat_misses_for_failure: int = 3
    global_checkpoint_interval_ms: float = 2000.0
    checkpoint_bytes: int = 256 * 1024
    disk_bandwidth_bytes_per_ms: float = 200_000.0  # ~200 MB/s
    az_aware: bool = False  # HopsFS-CL: LocationDomainId honoured

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ConfigError("replication must be >= 1")
        if self.num_datanodes % self.replication != 0:
            raise ConfigError(
                f"{self.num_datanodes} datanodes not divisible by replication "
                f"{self.replication} (NDB requires N % R == 0)"
            )
        if self.num_partitions < 1:
            raise ConfigError("need at least one partition")

    @property
    def num_node_groups(self) -> int:
        return self.num_datanodes // self.replication
