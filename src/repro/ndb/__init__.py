"""The metadata storage layer: an NDB (MySQL Cluster) model.

Implements the paper's Section II-B substrate and the Section IV-A
AZ-awareness features: node groups, ADP partitioning, strict-2PL row
locks, the linear-2PC commit protocol of Figure 2, Read Backup and Fully
Replicated table options with the delayed-ACK commit variant, AZ-aware
proximity ordering, the 4-case TC selection policy, heartbeat failure
detection, and split-brain arbitration.
"""

from .changelog import CHANGELOG_KIND, ChangelogBatch, ChangelogBus
from .client import NdbApi, NdbTransaction, run_transaction
from .cluster import NdbCluster, az_assignment_for
from .config import TABLE2_THREADS, NdbConfig, NdbCosts, ThreadConfig
from .locks import LockTable
from .management import ManagementNode
from .partitioning import PartitionMap, ReplicaSet, stable_hash
from .schema import TOMBSTONE, LockMode, Schema, TableDef
from .store import FragmentStore, ReadStats
from .tc_selection import select_read_replica, select_tc

__all__ = [
    "CHANGELOG_KIND",
    "ChangelogBatch",
    "ChangelogBus",
    "NdbApi",
    "NdbTransaction",
    "run_transaction",
    "NdbCluster",
    "az_assignment_for",
    "TABLE2_THREADS",
    "NdbConfig",
    "NdbCosts",
    "ThreadConfig",
    "LockTable",
    "ManagementNode",
    "PartitionMap",
    "ReplicaSet",
    "stable_hash",
    "TOMBSTONE",
    "LockMode",
    "Schema",
    "TableDef",
    "FragmentStore",
    "ReadStats",
    "select_read_replica",
    "select_tc",
]
