"""The NDB datanode: Table II thread pools, LDM execution and the TC.

One :class:`NdbDatanode` hosts:

* the **LDM threads** (12 by default) owning this node's fragment replicas,
  with partitions statically mapped to LDM threads;
* the **TC threads** (7) coordinating transactions started here, running
  the linear-2PC commit protocol of Figure 2 — including the paper's
  delayed-ACK variant for Read Backup / Fully Replicated tables, where the
  client ACK waits for the Completed messages (message 14 instead of 10);
* RECV/SEND/REP/IO/MAIN threads for message handling, replication (redo
  shipping) and disk I/O, matching the paper's CPU accounting (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

from ..errors import (
    HostUnreachableError,
    NdbError,
    NoDatanodesError,
    NodeFailedError,
    TransactionAbortedError,
)
from ..net.network import Message, Network
from ..sim import Environment, Event
from ..types import AzId, NodeAddress
from .locks import LockTable
from .messages import (
    ChainCommit,
    ChainPrepare,
    CommittedMsg,
    CompletedMsg,
    CompleteMsg,
    HeartbeatMsg,
    LdmReadReq,
    LdmScanReq,
    PrepareFailedMsg,
    PreparedMsg,
    ReleaseLocksMsg,
    TcAbortReq,
    TcCommitReq,
    TcReadReq,
    TcScanReq,
    TcWriteReq,
)
from .schema import LockMode
from .store import FragmentStore
from .tc_selection import select_read_replica
from ..sim.resources import CorePool, Disk

__all__ = ["NdbDatanode"]

_CHAIN_OVERHEAD_BYTES = 96


@dataclass
class _RowOp:
    """TC-side state of one row write inside a transaction."""

    seq: int
    table: str
    pk: Hashable
    partition_key: Hashable
    partition: int
    value: Any
    chain: tuple[NodeAddress, ...]
    want_completed: bool
    prepared: Optional[Event] = None
    committed: Optional[Event] = None
    completed_pending: int = 0
    all_completed: Optional[Event] = None


@dataclass
class _TcTxn:
    """TC-side state of one open transaction."""

    txid: int
    client_az: AzId
    ops: dict[int, _RowOp] = field(default_factory=dict)
    # Nodes where LDM threads hold read locks on our behalf -> row keys.
    # Keys are stored as an insertion-ordered dict-of-None (not a set) so
    # that release order — and therefore message order — is deterministic
    # regardless of PYTHONHASHSEED.
    read_locks: dict[NodeAddress, dict] = field(default_factory=dict)
    next_seq: int = 0
    finished: bool = False
    last_active_ms: float = 0.0


class NdbDatanode:
    """One NDB datanode process."""

    def __init__(self, env: Environment, network: Network, cluster, addr: NodeAddress, az: AzId):
        self.env = env
        self.network = network
        self.cluster = cluster
        self.addr = addr
        self.az = az
        config = cluster.config
        costs = config.costs
        threads = config.threads
        self.costs = costs
        self.running = False
        self.shutdown_reason: Optional[str] = None

        self.mailbox = network.register(addr)
        self.store = FragmentStore()
        self.locks = LockTable(env, deadlock_timeout_ms=config.deadlock_timeout_ms)

        # Table II thread pools.  LDM threads are individual single-core
        # pools because partitions are pinned to specific LDM threads.
        self.ldm_pools = [
            CorePool(env, 1, name=f"{addr}:ldm{i}") for i in range(threads.ldm)
        ]
        self.tc_pool = CorePool(env, threads.tc, name=f"{addr}:tc")
        self.recv_pool = CorePool(env, threads.recv, name=f"{addr}:recv")
        self.send_pool = CorePool(env, threads.send, name=f"{addr}:send")
        self.rep_pool = CorePool(env, threads.rep, name=f"{addr}:rep")
        self.io_pool = CorePool(env, threads.io, name=f"{addr}:io")
        self.main_pool = CorePool(env, threads.main, name=f"{addr}:main")
        self.disk = Disk(env, config.disk_bandwidth_bytes_per_ms, name=f"{addr}:disk")

        self.txns: dict[int, _TcTxn] = {}
        # Txids the inactivity reaper rolled back.  A later operation on
        # such a txid must fail (real NDB: "unknown transaction"), not
        # silently re-create TC state — the reaper already released the
        # transaction's locks, so resurrecting it would let two
        # transactions commit against the same exclusively-read rows.
        self._reaped: dict[int, None] = {}
        # Which TC is behind each txid holding locks/prepared rows here.
        # When that TC dies, its release/complete messages may have died
        # on its send queue — the cluster take-over sweeps these txids so
        # their locks cannot leak (NDB's take-over protocol, LDM side).
        self._lock_tc: dict[int, NodeAddress] = {}
        # Txids whose ChainCommit passed through this node as a backup:
        # local evidence that the TC reached the commit point.  The
        # take-over protocol rolls such transactions *forward* (their
        # client may already hold a success reply), everything else back.
        self._commit_decided: dict[int, None] = {}
        self.last_heartbeat_from: dict[NodeAddress, float] = {}
        self._rng = cluster.rng.stream(f"ndbd:{addr}")

    # ------------------------------------------------------------------ setup
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.env.process(self._dispatch_loop(), name=f"{self.addr}:dispatch")
        self.env.process(self._inactivity_reaper(), name=f"{self.addr}:txn-reaper")

    def shutdown(self, reason: str) -> None:
        """Stop serving; used for both crashes and arbitration losses."""
        if not self.running:
            return
        self.running = False
        self.shutdown_reason = reason
        self.network.set_down(self.addr)

    def _ldm_pool_for(self, partition: int) -> CorePool:
        # Partitions are pinned to LDM threads.  A node-group member holds
        # the partitions congruent to its group index, and is *primary* for
        # every R-th of those; dividing by groups*R decorrelates the thread
        # index from both patterns so all LDM threads serve primary load.
        config = self.cluster.config
        local_index = partition // (config.num_node_groups * config.replication)
        return self.ldm_pools[local_index % len(self.ldm_pools)]

    # --------------------------------------------------------------- dispatch
    def _dispatch_loop(self):
        while True:
            msg = yield self.mailbox.get()
            if not self.running:
                continue
            self.env.process(self._handle(msg), name=f"{self.addr}:{msg.kind}")

    # RPC-shaped message kinds that get a server-side span when tracing.
    # Chain/ack traffic is fire-and-forget and already visible through the
    # TC span's duration; tracing it individually would double the span
    # volume for little attribution value.
    _TRACED_KINDS = frozenset(
        {"tc_read", "tc_scan", "tc_write", "tc_commit", "tc_abort", "ldm_read", "ldm_scan"}
    )

    def _handle(self, msg: Message):
        yield self.recv_pool.submit(self.costs.recv_msg)
        if not self.running:
            return
        handler = self._HANDLERS.get(msg.kind)
        if handler is None:
            raise NdbError(f"{self.addr}: unknown message kind {msg.kind!r}")
        obs = self.env.obs
        if obs is not None and msg.kind in self._TRACED_KINDS:
            span = obs.tracer.start(
                f"ndb.{msg.kind}", parent=msg.extra.get("span_id"),
                host=str(self.addr), az=self.az,
            )
            # Stashed so the handler can parent replica round-trips and
            # lock waits under this server span.
            msg.extra["server_span"] = span
            try:
                yield from handler(self, msg)
            finally:
                obs.tracer.finish(span)
        else:
            yield from handler(self, msg)

    def _send(self, dst: NodeAddress, kind: str, payload: Any, size: int):
        """Charge the SEND thread, then put the message on the wire."""
        done = self.send_pool.submit(self.costs.send_msg)
        done.add_callback(
            lambda _e: self.network.send(
                Message(src=self.addr, dst=dst, kind=kind, payload=payload, size=size)
            )
            if self.running
            else None
        )

    def _reply(self, request: Message, payload: Any = None, ok: bool = True, size: int = 128):
        done = self.send_pool.submit(self.costs.send_msg)
        done.add_callback(
            lambda _e: self.network.reply(request, payload=payload, ok=ok, size=size)
            if self.running
            else None
        )

    # ------------------------------------------------------------- TC helpers
    def _txn(self, txid: int, client_az: AzId) -> _TcTxn:
        txn = self.txns.get(txid)
        if txn is None:
            txn = _TcTxn(txid=txid, client_az=client_az)
            self.txns[txid] = txn
            self.cluster.register_txn(txid, self.addr)
        txn.last_active_ms = self.env.now
        return txn

    def _inactivity_reaper(self):
        """TransactionInactiveTimeout: abort client-abandoned transactions.

        A client that dies mid-transaction leaves prepared rows and locks
        behind; NDB's inactivity timeout rolls them back (Section II-B2).
        """
        timeout = self.cluster.config.inactive_timeout_ms
        interval = max(1.0, timeout / 2)
        while self.running:
            yield self.env.timeout(interval)
            if not self.running:
                return
            now = self.env.now
            for txid, txn in list(self.txns.items()):
                if txn.finished or now - txn.last_active_ms <= timeout:
                    continue
                self._reaped[txid] = None
                self._abort_cleanup(txn)
                self._drop_txn(txid)
            while len(self._reaped) > 65536:
                del self._reaped[next(iter(self._reaped))]

    def _drop_txn(self, txid: int) -> None:
        txn = self.txns.pop(txid, None)
        if txn is not None:
            txn.finished = True
        self.cluster.unregister_txn(txid)

    def _reject_reaped(self, msg: Message, txid: int) -> bool:
        """Fail an operation on a transaction the reaper rolled back."""
        if txid not in self._reaped:
            return False
        self._reply(
            msg,
            TransactionAbortedError(f"txn {txid} aborted by inactivity timeout"),
            ok=False,
        )
        return True

    def _remember_lock_tc(self, txid: int, tc: NodeAddress) -> None:
        """Record which TC is behind a txid that holds state on this node."""
        self._lock_tc[txid] = tc
        while len(self._lock_tc) > 65536:
            del self._lock_tc[next(iter(self._lock_tc))]

    # ------------------------------------------------------------- TC: reads
    def _tc_read(self, msg: Message):
        req: TcReadReq = msg.payload
        yield self.tc_pool.submit(self.costs.tc_step)
        if self._reject_reaped(msg, req.txid):
            return
        table = self.cluster.schema.table(req.table)
        pmap = self.cluster.partition_map
        partition = pmap.partition_of(req.partition_key)
        try:
            if req.lock is LockMode.NONE:
                node, role = select_read_replica(
                    self.network.topology,
                    pmap,
                    table,
                    partition,
                    self.addr,
                    self.cluster.config.az_aware,
                    self._rng,
                )
            else:
                replicas = pmap.replicas(partition, table.fully_replicated)
                node, role = replicas.primary, 0
        except NoDatanodesError as exc:
            self._reply(msg, TransactionAbortedError(str(exc)), ok=False)
            return
        ldm_req = LdmReadReq(
            txid=req.txid,
            table=req.table,
            pk=req.pk,
            partition_key=req.partition_key,
            partition=partition,
            lock=req.lock,
            role=role,
            client_az=req.client_az,
        )
        if req.lock is not LockMode.NONE:
            txn = self._txn(req.txid, req.client_az)  # refreshes last_active
            txn.read_locks.setdefault(node, {})[(req.table, req.pk)] = None
        server_span = msg.extra.get("server_span") if self.env.obs is not None else None
        if node == self.addr:
            try:
                value = yield from self._ldm_read_local(ldm_req, parent=server_span)
            except NdbError as exc:
                self._reply(msg, exc, ok=False)
                return
            self._reply(msg, value, size=table.row_bytes)
            return
        try:
            value = yield self.network.call(
                self.addr, node, "ldm_read", ldm_req, size=_CHAIN_OVERHEAD_BYTES,
                parent_span=server_span,
            )
        except (HostUnreachableError, NdbError) as exc:
            self._reply(msg, TransactionAbortedError(str(exc)), ok=False)
            return
        self._reply(msg, value, size=table.row_bytes)

    def _tc_scan(self, msg: Message):
        req: TcScanReq = msg.payload
        yield self.tc_pool.submit(self.costs.tc_step)
        if self._reject_reaped(msg, req.txid):
            return
        table = self.cluster.schema.table(req.table)
        pmap = self.cluster.partition_map
        partition = pmap.partition_of(req.partition_key)
        try:
            node, role = select_read_replica(
                self.network.topology,
                pmap,
                table,
                partition,
                self.addr,
                self.cluster.config.az_aware,
                self._rng,
            )
        except NoDatanodesError as exc:
            self._reply(msg, TransactionAbortedError(str(exc)), ok=False)
            return
        ldm_req = LdmScanReq(
            txid=req.txid,
            table=req.table,
            partition_key=req.partition_key,
            partition=partition,
            role=role,
            client_az=req.client_az,
        )
        server_span = msg.extra.get("server_span") if self.env.obs is not None else None
        if node == self.addr:
            rows = yield from self._ldm_scan_local(ldm_req)
        else:
            try:
                rows = yield self.network.call(
                    self.addr, node, "ldm_scan", ldm_req, size=_CHAIN_OVERHEAD_BYTES,
                    parent_span=server_span,
                )
            except (HostUnreachableError, NdbError) as exc:
                self._reply(msg, TransactionAbortedError(str(exc)), ok=False)
                return
        self._reply(msg, rows, size=max(128, len(rows) * table.row_bytes))

    # ------------------------------------------------------------ TC: writes
    def _tc_write(self, msg: Message):
        req: TcWriteReq = msg.payload
        yield self.tc_pool.submit(self.costs.tc_step)
        if self._reject_reaped(msg, req.txid):
            return
        table = self.cluster.schema.table(req.table)
        pmap = self.cluster.partition_map
        partition = pmap.partition_of(req.partition_key)
        txn = self._txn(req.txid, req.client_az)
        try:
            replicas = pmap.replicas(partition, table.fully_replicated)
        except NoDatanodesError as exc:
            self._reply(msg, TransactionAbortedError(str(exc)), ok=False)
            return
        op = _RowOp(
            seq=txn.next_seq,
            table=req.table,
            pk=req.pk,
            partition_key=req.partition_key,
            partition=partition,
            value=req.value,
            chain=replicas.chain,
            want_completed=table.read_backup or table.fully_replicated,
        )
        txn.next_seq += 1
        txn.ops[op.seq] = op
        op.prepared = self.env.event()
        prepare = ChainPrepare(
            txid=req.txid,
            seq=op.seq,
            table=op.table,
            pk=op.pk,
            partition_key=op.partition_key,
            partition=op.partition,
            value=op.value,
            chain=op.chain,
            hop=0,
            tc=self.addr,
        )
        self._dispatch_chain_prepare(prepare)
        try:
            yield op.prepared
        except NdbError as exc:
            self._reply(msg, TransactionAbortedError(str(exc)), ok=False)
            return
        self._reply(msg, True)

    def _dispatch_chain_prepare(self, prepare: ChainPrepare) -> None:
        target = prepare.chain[prepare.hop]
        size = _CHAIN_OVERHEAD_BYTES + self.cluster.schema.table(prepare.table).row_bytes
        if target == self.addr:
            self.env.process(self._chain_prepare_body(prepare))
        else:
            self._send(target, "chain_prepare", prepare, size)

    # ---------------------------------------------------------- LDM: chains
    def _chain_prepare(self, msg: Message):
        yield from self._chain_prepare_body(msg.payload)

    def _chain_prepare_body(self, cp: ChainPrepare):
        if not self.running:
            return
        if cp.txid in self._reaped:
            return  # TC died; the rollback already ran here
        self._remember_lock_tc(cp.txid, cp.tc)
        pool = self._ldm_pool_for(cp.partition)
        # NDB locks the row on the primary replica first, then on the backup
        # replicas (Section II-B2) — the chain order guarantees exactly that.
        # Backup locks are released by the Complete message.
        try:
            yield self.locks.acquire(cp.txid, (cp.table, cp.pk), LockMode.EXCLUSIVE)
        except NdbError as exc:
            self._send(
                cp.tc,
                "prepare_failed",
                PrepareFailedMsg(txid=cp.txid, seq=cp.seq, error=str(exc)),
                size=128,
            )
            return
        yield pool.submit(self.costs.ldm_prepare)
        if not self.running:
            return
        if cp.txid in self._reaped:
            # Rolled back while we queued for the lock: let go of it.
            self.locks.release_all(cp.txid)
            return
        self.store.prepare(cp.txid, cp.table, cp.pk, cp.partition_key, cp.value)
        size = _CHAIN_OVERHEAD_BYTES + self.cluster.schema.table(cp.table).row_bytes
        if cp.hop == len(cp.chain) - 1:
            self._send(cp.tc, "prepared", PreparedMsg(txid=cp.txid, seq=cp.seq), size=128)
        else:
            nxt = ChainPrepare(**{**cp.__dict__, "hop": cp.hop + 1})
            self._send(cp.chain[nxt.hop], "chain_prepare", nxt, size)

    def _chain_commit(self, msg: Message):
        yield from self._chain_commit_body(msg.payload)

    def _chain_commit_body(self, cc: ChainCommit):
        if not self.running or cc.txid in self._reaped:
            return
        pool = self._ldm_pool_for(cc.partition)
        yield pool.submit(self.costs.ldm_commit)
        if not self.running or cc.txid in self._reaped:
            # The take-over already settled this transaction (roll-forward
            # applied the prepared version, rollback dropped it): a late
            # ChainCommit must not re-apply or forward.
            return
        if cc.hop == 0:
            # Primary: apply, release the row lock, report Committed.
            self.store.commit_prepared(cc.txid, cc.table, cc.pk)
            self.locks.release(cc.txid, (cc.table, cc.pk))
            self._write_redo()
            self._send(cc.tc, "committed", CommittedMsg(txid=cc.txid, seq=cc.seq), size=128)
        else:
            # Backup hop: the pass-through is commit-point evidence the
            # take-over protocol consults if the TC dies before Complete.
            self._commit_decided[cc.txid] = None
            while len(self._commit_decided) > 65536:
                del self._commit_decided[next(iter(self._commit_decided))]
            nxt = ChainCommit(**{**cc.__dict__, "hop": cc.hop - 1})
            target = cc.chain[nxt.hop]
            if target == self.addr:
                self.env.process(self._chain_commit_body(nxt))
            else:
                self._send(target, "chain_commit", nxt, size=128)

    def _complete(self, msg: Message):
        yield from self._complete_body(msg.payload)

    def _complete_body(self, cm: CompleteMsg):
        if not self.running:
            return
        # The Complete applies the prepared version on the backup replica and
        # frees transaction memory (Section II-B2).
        yield self._ldm_pool_for(cm.partition).submit(self.costs.ldm_commit)
        if not self.running:
            return
        try:
            self.store.commit_prepared(cm.txid, cm.table, cm.pk)
        except NdbError:
            pass  # already applied (e.g. retried Complete)
        self.locks.release(cm.txid, (cm.table, cm.pk))
        if not self.locks.held_keys(cm.txid):
            self._lock_tc.pop(cm.txid, None)
            self._commit_decided.pop(cm.txid, None)
        self._write_redo()
        if cm.want_completed:
            self._send(cm.tc, "completed", CompletedMsg(txid=cm.txid, seq=cm.seq), size=128)

    def _write_redo(self) -> None:
        """Asynchronously append to the redo log (REP/IO threads + disk)."""
        self.rep_pool.submit(self.costs.send_msg)
        self.io_pool.submit(self.costs.send_msg)
        self.disk.write(self.costs.redo_bytes_per_write)

    # ------------------------------------------------------------ TC: commit
    def _tc_commit(self, msg: Message):
        req: TcCommitReq = msg.payload
        yield self.tc_pool.submit(self.costs.tc_step)
        if self._reject_reaped(msg, req.txid):
            return
        txn = self.txns.get(req.txid)
        if txn is not None:
            txn.last_active_ms = self.env.now
        if txn is None or not txn.ops:
            # Read-only (or empty) transaction: just release read locks.
            if txn is not None:
                self._release_read_locks(txn)
                self._drop_txn(req.txid)
            self._reply(msg, True)
            return
        ops = list(txn.ops.values())
        # A chain participant may have been declared failed since we
        # prepared; NDB aborts such transactions (the client retries).
        pmap = self.cluster.partition_map
        dead = [n for op in ops for n in op.chain if not pmap.is_up(n)]
        if dead:
            self._abort_cleanup(txn)
            self._drop_txn(req.txid)
            self._reply(
                msg,
                TransactionAbortedError(f"replica {dead[0]} failed before commit"),
                ok=False,
            )
            return
        for op in ops:
            op.committed = self.env.event()
            commit = ChainCommit(
                txid=req.txid,
                seq=op.seq,
                table=op.table,
                pk=op.pk,
                partition=op.partition,
                chain=op.chain,
                hop=len(op.chain) - 1,
                tc=self.addr,
            )
            target = op.chain[commit.hop]
            if target == self.addr:
                self.env.process(self._chain_commit_body(commit))
            else:
                self._send(target, "chain_commit", commit, size=128)
        # Strict 2PL: the commit point has been reached, read locks go now.
        self._release_read_locks(txn)
        try:
            yield self.env.all_of([op.committed for op in ops])
        except NdbError as exc:
            self._abort_cleanup(txn)
            self._drop_txn(req.txid)
            self._reply(msg, TransactionAbortedError(str(exc)), ok=False)
            return
        # Commit point reached: publish the transaction's row images on the
        # changelog so subscriber caches (listing cache) can invalidate.
        # A pure no-op with zero subscribers (listing_cache=None).
        self.cluster.changelog.publish(
            self.addr,
            [(op.table, op.pk, op.partition_key, op.value) for op in ops],
        )
        # Send Complete to every backup replica.  For Read Backup / Fully
        # Replicated tables the paper delays the client ACK until all
        # Completed messages arrive (message 14 instead of 10 in Fig. 2).
        waiters = []
        for op in ops:
            backups = op.chain[1:]
            op.completed_pending = len(backups) if op.want_completed else 0
            if op.completed_pending:
                op.all_completed = self.env.event()
                waiters.append(op.all_completed)
            for backup in backups:
                complete = CompleteMsg(
                    txid=req.txid,
                    seq=op.seq,
                    table=op.table,
                    pk=op.pk,
                    partition=op.partition,
                    tc=self.addr,
                    want_completed=op.want_completed,
                )
                if backup == self.addr:
                    self.env.process(self._complete_body(complete))
                else:
                    self._send(backup, "complete", complete, size=128)
        if waiters:
            try:
                yield self.env.all_of(waiters)
            except NdbError as exc:
                self._drop_txn(req.txid)
                self._reply(msg, TransactionAbortedError(str(exc)), ok=False)
                return
        self._drop_txn(req.txid)
        self._reply(msg, True)

    def _tc_abort(self, msg: Message):
        req: TcAbortReq = msg.payload
        yield self.tc_pool.submit(self.costs.tc_step)
        txn = self.txns.get(req.txid)
        if txn is not None:
            self._abort_cleanup(txn)
            self._drop_txn(req.txid)
        self._reply(msg, True)

    def _release_read_locks(self, txn: _TcTxn) -> None:
        # Rows in the write set keep their X locks until the commit chain
        # applies them at the primary; only read-only locks go now.
        written = {(op.table, op.pk) for op in txn.ops.values()}
        for node, held in txn.read_locks.items():
            keys = [k for k in held if k not in written]
            if not keys:
                continue
            if node == self.addr:
                for key in keys:
                    self.locks.release(txn.txid, key)
            else:
                release = ReleaseLocksMsg(txid=txn.txid, keys=tuple(keys))
                self._send(node, "release_locks", release, size=64)
        txn.read_locks.clear()

    def _abort_cleanup(self, txn: _TcTxn) -> None:
        """Undo prepared rows and release all locks for an aborted txn."""
        touched: dict[NodeAddress, None] = dict.fromkeys(txn.read_locks)
        for op in txn.ops.values():
            touched.update(dict.fromkeys(op.chain))
        for node in touched:
            if node == self.addr:
                self.store.abort_all(txn.txid)
                self.locks.release_all(txn.txid)
            else:
                self._send(node, "release_locks", ReleaseLocksMsg(txid=txn.txid), size=64)
        txn.read_locks.clear()

    # ------------------------------------------------------- TC: chain acks
    def _on_prepared(self, msg: Message):
        ack: PreparedMsg = msg.payload
        yield self.tc_pool.submit(self.costs.tc_step)
        op = self._op_for(ack.txid, ack.seq)
        if op is not None and op.prepared is not None and not op.prepared.triggered:
            op.prepared.succeed()

    def _on_prepare_failed(self, msg: Message):
        fail: PrepareFailedMsg = msg.payload
        yield self.tc_pool.submit(self.costs.tc_step)
        op = self._op_for(fail.txid, fail.seq)
        if op is not None and op.prepared is not None and not op.prepared.triggered:
            op.prepared.fail(TransactionAbortedError(fail.error))

    def _on_committed(self, msg: Message):
        ack: CommittedMsg = msg.payload
        yield self.tc_pool.submit(self.costs.tc_step)
        op = self._op_for(ack.txid, ack.seq)
        if op is not None and op.committed is not None and not op.committed.triggered:
            op.committed.succeed()

    def _on_completed(self, msg: Message):
        ack: CompletedMsg = msg.payload
        yield self.tc_pool.submit(self.costs.tc_step)
        op = self._op_for(ack.txid, ack.seq)
        if op is None or op.all_completed is None:
            return
        op.completed_pending -= 1
        if op.completed_pending == 0 and not op.all_completed.triggered:
            op.all_completed.succeed()

    def _op_for(self, txid: int, seq: int) -> Optional[_RowOp]:
        txn = self.txns.get(txid)
        if txn is None:
            return None
        return txn.ops.get(seq)

    # ----------------------------------------------------------- LDM: reads
    def _ldm_read(self, msg: Message):
        req: LdmReadReq = msg.payload
        try:
            parent = msg.extra.get("server_span") if self.env.obs is not None else None
            value = yield from self._ldm_read_local(req, parent=parent, tc=msg.src)
        except NdbError as exc:
            self._reply(msg, exc, ok=False)
            return
        size = self.cluster.schema.table(req.table).row_bytes
        self._reply(msg, value, size=size)

    def _ldm_read_local(self, req: LdmReadReq, parent=None, tc=None):
        pool = self._ldm_pool_for(req.partition)
        if req.lock is not LockMode.NONE:
            if req.txid in self._reaped:
                raise TransactionAbortedError(f"txn {req.txid} already rolled back")
            self._remember_lock_tc(req.txid, tc or self.addr)
            # Locked reads always run on the primary replica.
            yield self.locks.acquire(req.txid, (req.table, req.pk), req.lock, parent=parent)
            if req.txid in self._reaped:
                # Rolled back while we queued for the lock: let go of it.
                self.locks.release_all(req.txid)
                raise TransactionAbortedError(f"txn {req.txid} already rolled back")
        yield pool.submit(self.costs.ldm_read)
        if not self.running:
            raise NodeFailedError(f"{self.addr} shut down mid-read")
        if req.lock is not LockMode.NONE:
            value = self.store.read_for(req.txid, req.table, req.pk)
        else:
            value = self.store.read(req.table, req.pk)
        self.cluster.read_stats.record(
            req.table,
            req.partition,
            req.role,
            self.addr,
            same_az=(self.az == req.client_az),
        )
        return value

    def _ldm_scan(self, msg: Message):
        req: LdmScanReq = msg.payload
        rows = yield from self._ldm_scan_local(req)
        size = max(128, len(rows) * self.cluster.schema.table(req.table).row_bytes)
        self._reply(msg, rows, size=size)

    def _ldm_scan_local(self, req: LdmScanReq):
        pool = self._ldm_pool_for(req.partition)
        rows = self.store.scan(req.table, req.partition_key)
        cost = self.costs.ldm_scan_base + self.costs.ldm_scan_row * len(rows)
        yield pool.submit(cost)
        if not self.running:
            raise NodeFailedError(f"{self.addr} shut down mid-scan")
        self.cluster.read_stats.record(
            req.table,
            req.partition,
            req.role,
            self.addr,
            same_az=(self.az == req.client_az),
        )
        return rows

    def _release_locks_handler(self, msg: Message):
        release: ReleaseLocksMsg = msg.payload
        yield self._ldm_pool_for(0).submit(self.costs.ldm_commit)
        self._lock_tc.pop(release.txid, None)
        self._commit_decided.pop(release.txid, None)
        if release.keys is None:
            # Abort path: roll back prepared rows and drop every lock.
            self.store.abort_all(release.txid)
            self.locks.release_all(release.txid)
        else:
            for key in release.keys:
                self.locks.release(release.txid, key)

    # ------------------------------------------------------------- heartbeat
    def _heartbeat(self, msg: Message):
        hb: HeartbeatMsg = msg.payload
        yield self.main_pool.submit(self.costs.recv_msg)
        self.last_heartbeat_from[hb.sender] = self.env.now

    # --------------------------------------------------------------- failure
    def on_peer_failed(self, dead: NodeAddress) -> None:
        """React to the cluster-level failure protocol declaring ``dead``.

        As a TC we fail pending chain events touching the dead node so that
        transactions abort promptly (clients retry).  LDM-side settlement
        of transactions the dead TC coordinated happens afterwards via the
        cluster's take-over sweep (:meth:`take_over`), which needs commit
        evidence from *all* survivors before deciding roll-forward vs
        rollback.
        """
        for txn in list(self.txns.values()):
            for op in txn.ops.values():
                if dead not in op.chain:
                    continue
                error = NodeFailedError(f"{dead} failed during transaction {txn.txid}")
                for event in (op.prepared, op.committed, op.all_completed):
                    if event is not None and not event.triggered:
                        event.fail(error)
    def txids_coordinated_by(self, dead: NodeAddress) -> set[int]:
        """Txids holding local locks/prepared rows whose TC is ``dead``.

        These include transactions the dead TC already *unregistered* —
        its release/complete messages may have died on its send queue, so
        the cluster's registered-orphan list alone would leak their locks.
        """
        return {txid for txid, tc in self._lock_tc.items() if tc == dead}

    def has_commit_evidence(self, txid: int) -> bool:
        """Did a ChainCommit for ``txid`` pass through this backup?"""
        return txid in self._commit_decided

    def take_over(self, txid: int, commit: bool) -> None:
        """Settle local state of a transaction whose TC died.

        ``commit`` reflects the cluster-wide take-over decision: roll the
        prepared rows forward when any survivor saw the commit point
        (the client may already hold a success reply), roll them back
        otherwise.  The txid is also remembered as dead: a lock/prepare
        message the dying TC put on the wire can still arrive *after*
        this settlement, and granting it would leak a lock no one will
        ever release (the same reason the inactivity reaper records what
        it reaped).
        """
        self._reaped[txid] = None
        self._lock_tc.pop(txid, None)
        self._commit_decided.pop(txid, None)
        if commit:
            self.store.commit_all(txid)
            self._write_redo()
        else:
            self.store.abort_all(txid)
        self.locks.release_all(txid)

    # ----------------------------------------------------------- dispatch map
    _HANDLERS = {
        "tc_read": _tc_read,
        "tc_scan": _tc_scan,
        "tc_write": _tc_write,
        "tc_commit": _tc_commit,
        "tc_abort": _tc_abort,
        "ldm_read": _ldm_read,
        "ldm_scan": _ldm_scan,
        "chain_prepare": _chain_prepare,
        "chain_commit": _chain_commit,
        "complete": _complete,
        "release_locks": _release_locks_handler,
        "prepared": _on_prepared,
        "prepare_failed": _on_prepare_failed,
        "committed": _on_committed,
        "completed": _on_completed,
        "heartbeat": _heartbeat,
    }
