"""Command-line interface: regenerate any table/figure or run one point.

Usage:
    python -m repro fig5                 # print Figure 5's series
    python -m repro table1 table2        # multiple at once
    python -m repro all                  # everything (slow)
    python -m repro point "HopsFS-CL (3,3)" --servers 24
    python -m repro point "HopsFS-CL (3,3)" --trace out.json   # Perfetto trace
    python -m repro report               # per-phase latency breakdown
    python -m repro chaos list           # fault-injection scenarios
    python -m repro chaos az-outage-under-load --setup hopsfs-cl-3-3
    python -m repro monitor              # SLO monitor vs every chaos scenario
    python -m repro monitor slow-az --setup cephfs --json detect.json
    python -m repro scale --population 1000000 --shards 12   # million-client run
    python -m repro scale --smoke        # canonical golden-gated smoke config
    python -m repro list                 # available targets and setups

Scale knobs are the same as the benchmark suite's: REPRO_BENCH_FULL=1 for
the paper's full server grid, REPRO_BENCH_SCALE for window scaling.

``python -m repro perf`` runs the kernel performance harness (events/sec
microbenchmark plus one timed Figure 5 point) and writes BENCH_kernel.json;
see DESIGN.md's "Kernel performance" section.
"""

from __future__ import annotations

import argparse
import sys

from .experiments import SETUPS, RunConfig, run_point
from .experiments import figures

_TARGETS = [
    "table1",
    "table2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig_async",
]


def _run_target(name: str) -> None:
    fn = getattr(figures, name)
    table = fn()
    print()
    print(table.render())


def _cmd_point(args) -> int:
    if args.setup not in SETUPS:
        print(f"unknown setup {args.setup!r}; see `python -m repro list`", file=sys.stderr)
        return 2
    obs = None
    if args.trace or args.trace_jsonl:
        from .obs import ObsContext

        obs = ObsContext()
    async_commit = None
    if args.async_commit:
        from .hopsfs.groupcommit import AsyncCommitConfig

        kwargs = {}
        if args.linger is not None:
            kwargs["linger_ms"] = args.linger
        if args.batch_ops is not None:
            kwargs["max_batch_ops"] = args.batch_ops
        async_commit = AsyncCommitConfig(**kwargs)
    listing_cache = None
    if args.listing_cache:
        from .hopsfs.listcache import ListingCacheConfig

        listing_cache = ListingCacheConfig()
    config = RunConfig(warmup_ms=args.warmup, window_ms=args.window,
                       async_commit=async_commit,
                       listing_cache=listing_cache)
    point = run_point(args.setup, args.servers, config=config, obs=obs)
    print(f"setup:          {point.setup}")
    print(f"servers:        {point.servers}")
    if async_commit is not None:
        print(f"commit path:    async group commit "
              f"(linger {async_commit.linger_ms}ms, "
              f"max {async_commit.max_batch_ops} ops/batch)")
    if listing_cache is not None:
        print(f"read path:      pre-materialized listing cache "
              f"(ttl {listing_cache.ttl_ms}ms, "
              f"hit cost {listing_cache.hit_cost_frac:.2f}x)")
    print(f"throughput:     {point.throughput_ops_s:,.0f} ops/s")
    print(f"avg latency:    {point.avg_latency_ms:.2f} ms")
    print(f"p50/p90/p99:    {point.p50_ms:.2f} / {point.p90_ms:.2f} / {point.p99_ms:.2f} ms")
    print(f"completed:      {point.completed} ops ({point.failed} failed)")
    r = point.resource
    print(f"storage CPU:    {r.storage_cpu_pct:.1f} %")
    print(f"server CPU:     {r.server_cpu_pct:.1f} %")
    print(f"cross-AZ bytes: {r.cross_az_mb:.2f} MB  (intra-AZ {r.intra_az_mb:.2f} MB)")
    if obs is not None:
        from .obs import breakdown_table, chrome_trace, validate_chrome_trace
        from .obs import write_chrome_trace, write_spans_jsonl

        if args.trace:
            doc = chrome_trace(obs.tracer, metadata={"setup": point.setup,
                                                     "servers": point.servers})
            problems = validate_chrome_trace(doc)
            if problems:
                print("trace validation FAILED:", file=sys.stderr)
                for p in problems[:10]:
                    print(f"  - {p}", file=sys.stderr)
                return 1
            write_chrome_trace(obs.tracer, args.trace,
                               metadata={"setup": point.setup,
                                         "servers": point.servers})
            print(f"trace:          {args.trace} "
                  f"({len(obs.tracer.spans)} spans; load in ui.perfetto.dev)")
        if args.trace_jsonl:
            write_spans_jsonl(obs.tracer, args.trace_jsonl)
            print(f"spans jsonl:    {args.trace_jsonl}")
        breakdown_table(obs.tracer, title=f"Latency breakdown - {point.setup}").print()
    return 0


# Setups for `python -m repro report` (one per paper family; Table 1 style).
_REPORT_SETUPS = [
    "HopsFS (3,3)",
    "HopsFS-CL (2,3)",
    "HopsFS-CL (3,3)",
    "CephFS",
]


def _cmd_report(args) -> int:
    from .obs import ObsContext, breakdown_table, phase_breakdown_json

    setups = args.setups or _REPORT_SETUPS
    for setup in setups:
        if setup not in SETUPS:
            print(f"unknown setup {setup!r}; see `python -m repro list`",
                  file=sys.stderr)
            return 2
    doc = {}
    for setup in setups:
        obs = ObsContext()
        config = RunConfig(warmup_ms=args.warmup, window_ms=args.window)
        point = run_point(setup, args.servers, config=config, obs=obs)
        table = breakdown_table(
            obs.tracer,
            title=(f"Latency breakdown - {setup} @ {point.servers} servers "
                   f"({point.throughput_ops_s:,.0f} ops/s)"),
        )
        table.print()
        if args.json:
            entry = phase_breakdown_json(obs.tracer)
            entry["servers"] = point.servers
            entry["throughput_ops_s"] = point.throughput_ops_s
            doc[setup] = entry
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_perf(args) -> int:
    # Imported lazily: the perf harness pulls in the whole experiment stack.
    from .experiments.perf import run_perf

    baseline = None
    if args.baseline:
        import json

        try:
            with open(args.baseline) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"python -m repro perf: cannot read --baseline {args.baseline}: {exc}")
            return 2
        baseline = data.get("pre_pr_baseline", data)
    report = run_perf(out_path=args.out, baseline=baseline)
    micro = report["microbench"]
    fig5 = report["fig5_point"]
    point = report["scale_point"]
    print(f"microbench:  {micro['events_per_sec']:,} events/s "
          f"({micro['events']:,} events in {micro['wall_s']:.2f}s, best of "
          f"{len(micro['events_per_sec_runs'])})")
    print(f"fig5 point:  {fig5['events_per_sec']:,} events/s "
          f"({fig5['setup']} @ {fig5['servers']} servers, "
          f"{fig5['throughput_ops_s']:,.0f} simulated ops/s)")
    print(f"scale point: {point['aggregate_events_per_sec']:,} events/s aggregate "
          f"({point['population']:,} clients over {point['shards']} shards, "
          f"{point['offered_ops_per_s']:,.0f} offered ops/s, "
          f"{point['aggregate_speedup_vs_microbench']:.2f}x microbench)")
    commit = report["async_point"]
    print(f"async point: {commit['async']['throughput_ops_s']:,.0f} ops/s async vs "
          f"{commit['sync']['throughput_ops_s']:,.0f} sync "
          f"({commit['op']} on {commit['setup']}, "
          f"{commit['async_speedup']:.2f}x throughput, "
          f"{commit['async_latency_ratio']:.2f}x latency)")
    listing = report["listing_point"]
    print(f"listing pt:  {listing['on']['throughput_ops_s']:,.0f} ops/s cached vs "
          f"{listing['off']['throughput_ops_s']:,.0f} transactional "
          f"({listing['workload']} on {listing['setup']}, "
          f"{listing['listing_speedup']:.2f}x throughput, "
          f"{listing['listing_latency_ratio']:.2f}x latency)")
    print(f"peak RSS:    {report['peak_rss_mb']:.1f} MB "
          f"(peak shard RSS {point['peak_shard_rss_mb']:.1f} MB)")
    for key in ("microbench_speedup_vs_pre_pr", "fig5_speedup_vs_pre_pr"):
        if key in report:
            print(f"{key}: {report[key]:.2f}x")
    if args.out:
        print(f"wrote {args.out}")
    return 0


def _cmd_scale(args) -> int:
    # Imported lazily: the scale runner pulls in the experiment stack.
    from .chaos import resolve_setup
    from .errors import ReproError
    from .experiments.scale import SMOKE_CONFIG, ScaleConfig, run_scale

    try:
        setup = resolve_setup(args.setup)
    except ReproError as exc:
        print(f"{exc}; see `python -m repro list`", file=sys.stderr)
        return 2
    if args.smoke:
        from dataclasses import replace

        config = replace(SMOKE_CONFIG, setup=setup, workers=args.workers or 0)
    else:
        config = ScaleConfig(
            setup=setup,
            servers=args.servers,
            population=args.population,
            rate_ops_per_ms=args.rate,
            duration_ms=args.duration,
            warmup_ms=args.warmup,
            seed=args.seed,
            shards=args.shards or 0,
            workers=args.workers or 0,
            zipf_s=args.zipf_s,
            detail_every=args.detail_every,
            scenario=args.scenario,
        )
    try:
        artifact = run_scale(config)
    except ReproError as exc:
        print(f"python -m repro scale: {exc}", file=sys.stderr)
        return 2
    merged = artifact["merged"]
    timing = artifact["timing"]
    cfg = artifact["config"]
    print(f"setup:            {cfg['setup']} @ {cfg['servers']} servers")
    print(f"population:       {cfg['population']:,} virtual clients "
          f"(zipf s={cfg['zipf_s']}, max sampled id {merged['max_client_id']:,})")
    print(f"shards:           {cfg['shards']} ({timing['workers']} worker "
          f"process{'es' if timing['workers'] != 1 else ''})")
    print(f"offered load:     {merged['offered_ops_per_s']:,.0f} ops/s "
          f"({merged['arrivals']:,} arrivals in {cfg['duration_ms']:.0f} ms)")
    print(f"detailed ops:     {merged['detailed']:,} sampled 1-in-{cfg['detail_every']} "
          f"({merged['shed']} shed)")
    col = merged["collector"]
    print(f"detail latency:   avg {col['avg_latency_ms']:.2f} ms, "
          f"p50/p90/p99 {col['p50_ms']:.2f}/{col['p90_ms']:.2f}/{col['p99_ms']:.2f} ms "
          f"({col['failed']} failed)")
    print(f"events:           {merged['events']:,} "
          f"({timing['aggregate_events_per_sec']:,} events/s aggregate over shards, "
          f"{timing['wall_events_per_sec']:,} events/s wall)")
    print(f"peak shard RSS:   {timing['peak_shard_rss_mb']:.1f} MB")
    print(f"merged dispatch:  {merged['dispatch_hash'][:16]}…")
    print(f"artifact hash:    {artifact['artifact_hash'][:16]}…")
    if "all_green" in merged:
        print(f"scenario:         {cfg['scenario']} "
              f"({'all invariants green' if merged['all_green'] else 'INVARIANT RED'})")
    if "availability_timeline" in merged:
        rows = merged["availability_timeline"]
        degraded = [r for r in rows
                    if r["availability"] is not None and r["availability"] < 1.0]
        silent = sum(1 for r in rows if r["availability"] is None)
        print(f"availability:     {len(rows)} buckets merged across shards, "
              f"{len(degraded)} degraded, {silent} silent")
        for r in degraded[:8]:
            print(f"    t={r['t_ms']:6.0f}ms ok={r['ok']:5d} failed={r['failed']:4d} "
                  f"avail={r['availability']:.3f}")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if "all_green" in merged and not merged["all_green"]:
        return 1
    return 0


def _cmd_chaos(args) -> int:
    # Imported lazily: the chaos layer pulls in both full stacks.
    from .chaos import SCENARIOS, resolve_setup, run_scenario, setup_slug
    from .errors import ReproError

    # Positional and --scenario flag forms are both accepted.
    if args.scenario is None:
        args.scenario = args.scenario_flag
    if args.scenario is None:
        print("no scenario given; see `python -m repro chaos list`", file=sys.stderr)
        return 2
    if args.scenario == "list":
        print("scenarios:")
        for scenario in SCENARIOS.values():
            print(f"  {scenario.name:28s} {scenario.description}")
        print("  elastic-compare              fixed-pool vs autoscaled "
              "cost-normalized throughput (HopsFS setups)")
        print("setups (pretty name or slug):")
        for name in SETUPS:
            print(f"  {setup_slug(name):20s} {name}")
        return 0
    if args.scenario == "elastic-compare":
        return _chaos_elastic_compare(args)
    if args.scenario not in SCENARIOS:
        print(
            f"unknown scenario {args.scenario!r}; see `python -m repro chaos list`",
            file=sys.stderr,
        )
        return 2
    try:
        setup = resolve_setup(args.setup)
    except ReproError as exc:
        print(f"{exc}; see `python -m repro chaos list`", file=sys.stderr)
        return 2
    scenario = SCENARIOS[args.scenario]
    try:
        scenario = _apply_elastic_overrides(scenario, args)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if getattr(args, "listing_cache", False):
        import dataclasses

        from .hopsfs.listcache import ListingCacheConfig

        scenario = dataclasses.replace(
            scenario, listing_cache=ListingCacheConfig()
        )
    obs = None
    if args.trace:
        from .obs import ObsContext

        obs = ObsContext()
    result = run_scenario(
        scenario, setup=setup, num_servers=args.servers, seed=args.seed, obs=obs
    )
    print(result.render())
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(result.to_json(), fh, indent=2)
        print(f"\nwrote {args.json}")
    if obs is not None:
        faults = [s for s in obs.tracer.spans if s.name == "chaos.fault"]
        print(f"traced: {len(obs.tracer.spans)} spans ({len(faults)} chaos.fault)")
    return 0 if result.all_green else 1


def _apply_elastic_overrides(scenario, args):
    """Rebuild a scenario with the CLI's autoscaler overrides applied."""
    import dataclasses

    from .errors import ReproError

    overrides = {}
    if getattr(args, "autoscale_min", None) is not None:
        overrides["min_nns_per_az"] = args.autoscale_min
    if getattr(args, "autoscale_max", None) is not None:
        overrides["max_nns_per_az"] = args.autoscale_max
    if getattr(args, "autoscale_cooldown", None) is not None:
        overrides["cooldown_ms"] = args.autoscale_cooldown
    if getattr(args, "membership_refresh", None) is not None:
        overrides["membership_refresh_ms"] = args.membership_refresh
    if not overrides:
        return scenario
    if scenario.elastic is None:
        raise ReproError(
            f"{scenario.name} is not an elastic scenario; autoscaler flags "
            f"only apply to scenarios with runtime NN membership"
        )
    return dataclasses.replace(
        scenario, elastic=dataclasses.replace(scenario.elastic, **overrides)
    )


def _chaos_elastic_compare(args) -> int:
    """Fixed-pool vs autoscaled comparison artifact (``chaos elastic-compare``)."""
    from .chaos import resolve_setup, run_elastic_comparison
    from .errors import ReproError

    try:
        setup = resolve_setup(args.setup)
    except ReproError as exc:
        print(f"{exc}; see `python -m repro chaos list`", file=sys.stderr)
        return 2
    # 6 NNs (2/AZ on 3-AZ setups) leaves the autoscaler real headroom to
    # shed; the stock --servers default of 3 is already at the floor.
    servers = args.servers if args.servers != 3 else 6
    try:
        out = run_elastic_comparison(
            setup=setup, num_servers=servers, seed=args.seed
        )
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"elastic comparison on {out['setup']} "
          f"({servers} NNs, seed {args.seed}):")
    for key, leg in out["legs"].items():
        el = leg["elastic"]
        print(f"  {key:<11} completed={leg['completed']:<6} "
              f"nn_seconds={el['nn_seconds_provisioned']:.3f}  "
              f"ops/NN-s={el['ops_per_nn_second']:.1f}  "
              f"pool {el['pool_size_peak']}->{el['pool_size_final']}  "
              f"green={leg['all_green']}")
    gain = out.get("cost_efficiency_gain")
    if gain is not None:
        print(f"  cost-normalized throughput gain: {gain:.2f}x")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(out, fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0 if all(leg["all_green"] for leg in out["legs"].values()) else 1


def _cmd_monitor(args) -> int:
    # Imported lazily: the detector harness pulls in both full stacks.
    from .chaos import resolve_setup
    from .errors import ReproError
    from .obs.detect import SCENARIOS, run_monitor, monitor_table

    if args.scenario == "list":
        print("scenarios (plus 'baseline' and 'all'):")
        for scenario in SCENARIOS.values():
            print(f"  {scenario.name:28s} {scenario.description}")
        return 0
    try:
        setup = resolve_setup(args.setup)
    except ReproError as exc:
        print(f"{exc}; see `python -m repro list`", file=sys.stderr)
        return 2
    if args.scenario == "all":
        names = ["baseline"] + sorted(SCENARIOS)
    elif args.scenario == "baseline" or args.scenario in SCENARIOS:
        names = [args.scenario]
    else:
        print(f"unknown scenario {args.scenario!r}; "
              "see `python -m repro monitor list`", file=sys.stderr)
        return 2

    results = []
    for name in names:
        results.append(run_monitor(
            name, setup=setup, num_servers=args.servers, seed=args.seed,
            interval_ms=args.interval, grace_ms=args.grace,
        ))
    if len(results) == 1:
        print(results[0].render())
    else:
        print()
        monitor_table(results, title=f"Detection scores - {setup}").print()
    if args.json:
        import json

        doc = {"setup": setup, "seed": args.seed,
               "runs": [r.to_json() for r in results]}
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if args.html:
        with open(args.html, "w") as fh:
            for r in results:
                fh.write(r.render_html())
        print(f"wrote {args.html}")
    return 0 if all(r.ok for r in results) else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command")

    point = sub.add_parser("point", help="run one (setup, servers) measurement")
    point.add_argument("setup")
    point.add_argument("--servers", type=int, default=6)
    point.add_argument("--warmup", type=float, default=15.0)
    point.add_argument("--window", type=float, default=15.0)
    point.add_argument("--trace", default=None, metavar="PATH",
                       help="trace the run and write a Chrome trace_event "
                            "JSON file (load in ui.perfetto.dev)")
    point.add_argument("--trace-jsonl", default=None, metavar="PATH",
                       help="also write raw spans as JSON Lines")
    point.add_argument("--async-commit", action="store_true",
                       help="opt HopsFS setups into the async group-commit "
                            "metadata path (early acks + fsync durability "
                            "horizon); no-op on CephFS")
    point.add_argument("--linger", type=float, default=None, metavar="MS",
                       help="async group-commit linger window in ms "
                            "(default 1.0; needs --async-commit)")
    point.add_argument("--batch-ops", type=int, default=None, metavar="N",
                       help="async group-commit max ops per batch "
                            "(default 16; needs --async-commit)")
    point.add_argument("--listing-cache", action="store_true",
                       help="opt HopsFS setups into the pre-materialized "
                            "listing/attr cache (changelog-invalidated reads "
                            "served from NN memory); no-op on CephFS")
    point.set_defaults(func=_cmd_point)

    report = sub.add_parser(
        "report", help="per-phase latency breakdown across setups (Table 1 style)"
    )
    report.add_argument("--setups", nargs="*", default=None,
                        help=f"setups to run (default: {', '.join(_REPORT_SETUPS)})")
    report.add_argument("--servers", type=int, default=3)
    report.add_argument("--warmup", type=float, default=10.0)
    report.add_argument("--window", type=float, default=10.0)
    report.add_argument("--json", default=None, metavar="PATH",
                        help="write the per-setup phase breakdown as JSON")
    report.set_defaults(func=_cmd_report)

    perf = sub.add_parser("perf", help="run the kernel perf harness")
    perf.add_argument("--out", default="BENCH_kernel.json",
                      help="output JSON path (default BENCH_kernel.json)")
    perf.add_argument("--baseline", default=None,
                      help="existing BENCH_kernel.json whose pre_pr_baseline to carry over")
    perf.set_defaults(func=_cmd_perf)

    scale = sub.add_parser(
        "scale", help="sharded aggregated-arrival run over a huge client population"
    )
    scale.add_argument("--setup", default="hopsfs-cl-3-3",
                       help="setup slug or pretty name (default hopsfs-cl-3-3)")
    scale.add_argument("--servers", type=int, default=3,
                       help="metadata servers per shard DES (default 3)")
    scale.add_argument("--population", type=int, default=1_000_000,
                       help="virtual clients (default 1,000,000)")
    scale.add_argument("--rate", type=float, default=2000.0,
                       help="total offered load, ops per simulated ms (default 2000)")
    scale.add_argument("--duration", type=float, default=200.0,
                       help="measurement window, simulated ms (default 200)")
    scale.add_argument("--warmup", type=float, default=20.0)
    scale.add_argument("--seed", type=int, default=0)
    scale.add_argument("--shards", type=int, default=None,
                       help="request-stream partitions (default: 4 per AZ); "
                            "part of the determinism key")
    scale.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: min(shards, CPUs)); "
                            "never affects the merged artifact")
    scale.add_argument("--zipf-s", type=float, default=1.05,
                       help="population skew exponent (default 1.05)")
    scale.add_argument("--detail-every", type=int, default=64,
                       help="execute 1-in-K arrivals in full detail (default 64)")
    scale.add_argument("--scenario", default=None, metavar="NAME",
                       help="run a chaos scenario inside every shard")
    scale.add_argument("--smoke", action="store_true",
                       help="run the canonical CI smoke config "
                            "(100k clients, 2 shards, golden-gated hash)")
    scale.add_argument("--json", default=None, metavar="PATH",
                       help="write the merged artifact as JSON")
    scale.set_defaults(func=_cmd_scale)

    chaos = sub.add_parser(
        "chaos", help="run a named fault-injection scenario ('list' to enumerate)"
    )
    chaos.add_argument("scenario", nargs="?", default=None,
                       help="scenario name, or 'list'")
    chaos.add_argument("--scenario", dest="scenario_flag", default=None,
                       metavar="NAME", help="scenario name (flag form)")
    chaos.add_argument("--setup", default="hopsfs-cl-3-3",
                       help="setup slug or pretty name (default hopsfs-cl-3-3)")
    chaos.add_argument("--servers", type=int, default=3,
                       help="metadata servers (default 3)")
    chaos.add_argument("--seed", type=int, default=99)
    chaos.add_argument("--json", default=None, metavar="PATH",
                       help="write the full run result (timeline, trace, "
                            "verdicts) as JSON")
    chaos.add_argument("--autoscale-min", type=int, default=None, metavar="N",
                       help="elastic scenarios: min NNs per AZ the autoscaler keeps")
    chaos.add_argument("--autoscale-max", type=int, default=None, metavar="N",
                       help="elastic scenarios: max NNs per AZ the autoscaler adds")
    chaos.add_argument("--autoscale-cooldown", type=float, default=None,
                       metavar="MS", help="elastic scenarios: ms between scale actions")
    chaos.add_argument("--membership-refresh", type=float, default=None,
                       metavar="MS",
                       help="elastic scenarios: client membership refresh period")
    chaos.add_argument("--listing-cache", action="store_true",
                       help="run the scenario with the pre-materialized "
                            "listing cache on (the listing-consistency "
                            "invariant then audits every live entry)")
    chaos.add_argument("--trace", action="store_true",
                       help="attach the tracer (dispatch hash must not change)")
    chaos.set_defaults(func=_cmd_chaos)

    monitor = sub.add_parser(
        "monitor", help="run the SLO monitor against a chaos scenario and "
                        "score its alerts vs injected ground truth"
    )
    monitor.add_argument("scenario", nargs="?", default="all",
                         help="scenario name, 'baseline', 'all' (default), "
                              "or 'list'")
    monitor.add_argument("--setup", default="hopsfs-cl-3-3",
                         help="setup slug or pretty name (default hopsfs-cl-3-3)")
    monitor.add_argument("--servers", type=int, default=3,
                         help="metadata servers (default 3)")
    monitor.add_argument("--seed", type=int, default=99)
    monitor.add_argument("--interval", type=float, default=10.0,
                         help="time-series window width, ms (default 10)")
    monitor.add_argument("--grace", type=float, default=60.0,
                         help="post-heal grace for alert matching, ms (default 60)")
    monitor.add_argument("--json", default=None, metavar="PATH",
                         help="write detection scores, alerts, timeline and "
                              "phase breakdown as JSON")
    monitor.add_argument("--html", default=None, metavar="PATH",
                         help="write a self-contained HTML report")
    monitor.set_defaults(func=_cmd_monitor)

    sub.add_parser("list", help="list targets and setups")
    for target in _TARGETS + ["all"]:
        sub.add_parser(target, help=f"regenerate {target}")

    args, extra = parser.parse_known_args(argv)
    command = args.command
    if command is None:
        parser.print_help()
        return 1
    if command == "list":
        print("targets:", ", ".join(_TARGETS), "(or 'all')")
        print("setups:")
        for name in SETUPS:
            print(f"  {name}")
        return 0
    if command in ("point", "perf", "report", "chaos", "scale", "monitor"):
        return args.func(args)
    targets = _TARGETS if command == "all" else [command] + [
        t for t in extra if t in _TARGETS
    ]
    for target in targets:
        _run_target(target)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
