"""Command-line interface: regenerate any table/figure or run one point.

Usage:
    python -m repro fig5                 # print Figure 5's series
    python -m repro table1 table2        # multiple at once
    python -m repro all                  # everything (slow)
    python -m repro point "HopsFS-CL (3,3)" --servers 24
    python -m repro list                 # available targets and setups

Scale knobs are the same as the benchmark suite's: REPRO_BENCH_FULL=1 for
the paper's full server grid, REPRO_BENCH_SCALE for window scaling.
"""

from __future__ import annotations

import argparse
import sys

from .experiments import SETUPS, RunConfig, run_point
from .experiments import figures

_TARGETS = [
    "table1",
    "table2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
]


def _run_target(name: str) -> None:
    fn = getattr(figures, name)
    table = fn()
    print()
    print(table.render())


def _cmd_point(args) -> int:
    if args.setup not in SETUPS:
        print(f"unknown setup {args.setup!r}; see `python -m repro list`", file=sys.stderr)
        return 2
    config = RunConfig(warmup_ms=args.warmup, window_ms=args.window)
    point = run_point(args.setup, args.servers, config=config)
    print(f"setup:          {point.setup}")
    print(f"servers:        {point.servers}")
    print(f"throughput:     {point.throughput_ops_s:,.0f} ops/s")
    print(f"avg latency:    {point.avg_latency_ms:.2f} ms")
    print(f"p50/p90/p99:    {point.p50_ms:.2f} / {point.p90_ms:.2f} / {point.p99_ms:.2f} ms")
    print(f"completed:      {point.completed} ops ({point.failed} failed)")
    r = point.resource
    print(f"storage CPU:    {r.storage_cpu_pct:.1f} %")
    print(f"server CPU:     {r.server_cpu_pct:.1f} %")
    print(f"cross-AZ bytes: {r.cross_az_mb:.2f} MB  (intra-AZ {r.intra_az_mb:.2f} MB)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command")

    point = sub.add_parser("point", help="run one (setup, servers) measurement")
    point.add_argument("setup")
    point.add_argument("--servers", type=int, default=6)
    point.add_argument("--warmup", type=float, default=15.0)
    point.add_argument("--window", type=float, default=15.0)
    point.set_defaults(func=_cmd_point)

    sub.add_parser("list", help="list targets and setups")
    for target in _TARGETS + ["all"]:
        sub.add_parser(target, help=f"regenerate {target}")

    args, extra = parser.parse_known_args(argv)
    command = args.command
    if command is None:
        parser.print_help()
        return 1
    if command == "list":
        print("targets:", ", ".join(_TARGETS), "(or 'all')")
        print("setups:")
        for name in SETUPS:
            print(f"  {name}")
        return 0
    if command == "point":
        return args.func(args)
    targets = _TARGETS if command == "all" else [command] + [
        t for t in extra if t in _TARGETS
    ]
    for target in targets:
        _run_target(target)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
