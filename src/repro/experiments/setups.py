"""The nine deployments of Section V-A, behind one adapter interface.

Setup naming follows the paper: ``HopsFS (R, Z)`` is vanilla HopsFS with
NDB replication factor R deployed over Z AZs; ``HopsFS-CL (R, Z)`` is the
AZ-aware redesign; the three CephFS variants differ in balancing and
client caching.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cephfs import CephConfig, build_cephfs
from ..hopsfs import HopsFsConfig, build_hopsfs
from ..metrics.utilization import ResourceReport, per_az_utilization
from ..ndb import NdbConfig
from ..types import AzId
from ..workloads.namespace import Namespace, install_cephfs, install_hopsfs

__all__ = ["SetupSpec", "SETUPS", "HopsFsAdapter", "CephAdapter", "build_setup"]

_MB = 1000.0  # bytes/ms -> MB/s divisor

# Aggregate inter-AZ fabric capacity (bytes/ms, all cross-AZ traffic).
# Inter-AZ bandwidth is the scarce resource of Section III (C2); this value
# is calibrated so that the non-AZ-aware 3-AZ HopsFS setups lose ~17-22% at
# scale (Fig. 5) while the AZ-aware setups, whose reads stay AZ-local, are
# unaffected ("network I/O becomes a bottleneck", Section V-B1).
AZ_LINK_BANDWIDTH_BYTES_PER_MS = 1_800_000.0


@dataclass(frozen=True)
class SetupSpec:
    """Declarative description of one benchmark deployment."""

    name: str
    kind: str  # 'hopsfs' | 'cephfs'
    replication: int = 2
    azs: tuple[AzId, ...] = (2,)
    az_aware: bool = False
    dir_pinning: bool = False
    kclient_cache: bool = True

    def build(self, num_servers: int, seed: int = 0, async_commit=None,
              listing_cache=None):
        """``async_commit`` opts HopsFS setups into the group-commit path
        (an :class:`~repro.hopsfs.AsyncCommitConfig`) and ``listing_cache``
        into the pre-materialized listing cache (a
        :class:`~repro.hopsfs.ListingCacheConfig`); CephFS has no
        equivalent knobs and ignores both."""
        if self.kind == "hopsfs":
            return HopsFsAdapter(self, num_servers, seed,
                                 async_commit=async_commit,
                                 listing_cache=listing_cache)
        return CephAdapter(self, num_servers, seed)


# The nine setups of the evaluation (Section V-A / Fig. 5).
SETUPS: dict[str, SetupSpec] = {
    "HopsFS (2,1)": SetupSpec("HopsFS (2,1)", "hopsfs", 2, (2,), az_aware=False),
    "HopsFS (3,1)": SetupSpec("HopsFS (3,1)", "hopsfs", 3, (2,), az_aware=False),
    "HopsFS (2,3)": SetupSpec("HopsFS (2,3)", "hopsfs", 2, (2, 3), az_aware=False),
    "HopsFS (3,3)": SetupSpec("HopsFS (3,3)", "hopsfs", 3, (1, 2, 3), az_aware=False),
    "HopsFS-CL (2,3)": SetupSpec("HopsFS-CL (2,3)", "hopsfs", 2, (2, 3), az_aware=True),
    "HopsFS-CL (3,3)": SetupSpec("HopsFS-CL (3,3)", "hopsfs", 3, (1, 2, 3), az_aware=True),
    "CephFS": SetupSpec("CephFS", "cephfs", 3, (1, 2, 3)),
    "CephFS - DirPinned": SetupSpec(
        "CephFS - DirPinned", "cephfs", 3, (1, 2, 3), dir_pinning=True
    ),
    "CephFS - SkipKCache": SetupSpec(
        "CephFS - SkipKCache", "cephfs", 3, (1, 2, 3), kclient_cache=False
    ),
}


def build_setup(name: str, num_servers: int, seed: int = 0):
    return SETUPS[name].build(num_servers, seed)


class HopsFsAdapter:
    """Adapter exposing a HopsFS deployment to the experiment runner."""

    def __init__(self, spec: SetupSpec, num_servers: int, seed: int,
                 async_commit=None, listing_cache=None):
        self.spec = spec
        self.num_servers = num_servers
        config = HopsFsConfig(election_period_ms=100.0, async_commit=async_commit,
                              listing_cache=listing_cache)
        self.deployment = build_hopsfs(
            num_namenodes=num_servers,
            azs=spec.azs,
            az_aware=spec.az_aware,
            ndb_config=NdbConfig(
                num_datanodes=12,
                replication=spec.replication,
                az_aware=spec.az_aware,
            ),
            hopsfs_config=config,
            seed=seed,
            az_link_bandwidth_bytes_per_ms=AZ_LINK_BANDWIDTH_BYTES_PER_MS,
        )
        self.env = self.deployment.env

    # -- runner interface --------------------------------------------------
    def ready(self):
        yield from self.deployment.await_election()

    def install(self, namespace: Namespace) -> int:
        return install_hopsfs(self.deployment, namespace)

    def make_clients(self, count: int):
        return [self.deployment.client() for _ in range(count)]

    def warm_client_caches(self, clients, workload) -> None:
        """Steady-state listing caches: snapshot-bootstrapped, stream-fresh.

        The paper's NN pre-materializes its cache when it subscribes to the
        changelog, long before any measurement window; replaying that cold
        start every run would measure bootstrap, not the serving regime.
        No-op when the cache is disabled.
        """
        self.deployment.prewarm_listing_caches()

    @property
    def read_stats(self):
        return self.deployment.ndb.read_stats

    @property
    def network(self):
        return self.deployment.network

    def utilization_snapshot(self) -> dict:
        dep = self.deployment
        return {
            "t": self.env.now,
            "threads": dep.ndb.thread_busy(),
            "nn_busy": {nn.addr: nn.handler_pool.busy_time for nn in dep.namenodes},
            "disk": dep.ndb.disk_stats(),
            "traffic": dep.network.traffic.snapshot(),
        }

    def utilization_report(self, snap: dict) -> ResourceReport:
        dep = self.deployment
        window = self.env.now - snap["t"]
        report = ResourceReport(window_ms=window)
        if window <= 0:
            return report
        threads_now = dep.ndb.thread_busy()
        total_busy, total_cores = 0.0, 0
        for name, (busy, cores) in threads_now.items():
            base = snap["threads"].get(name, (0.0, cores))[0]
            pct = 100.0 * (busy - base) / (cores * window)
            report.ndb_thread_cpu_pct[name] = pct
            total_busy += busy - base
            total_cores += cores
        report.storage_cpu_pct = 100.0 * total_busy / (total_cores * window)
        nn_cores = dep.config.nn_cores
        nn_busy = sum(
            nn.handler_pool.busy_time - snap["nn_busy"].get(nn.addr, 0.0)
            for nn in dep.namenodes
        )
        report.server_cpu_pct = 100.0 * nn_busy / (len(dep.namenodes) * nn_cores * window)
        delta = dep.network.traffic.delta_since(snap["traffic"])
        ndb_addrs = list(dep.ndb.datanodes)
        nn_addrs = [nn.addr for nn in dep.namenodes]
        report.storage_net_read_mb_s = _avg_mb_s(delta, ndb_addrs, window, "received")
        report.storage_net_write_mb_s = _avg_mb_s(delta, ndb_addrs, window, "sent")
        report.server_net_read_mb_s = _avg_mb_s(delta, nn_addrs, window, "received")
        report.server_net_write_mb_s = _avg_mb_s(delta, nn_addrs, window, "sent")
        disk_now = dep.ndb.disk_stats()
        writes = sum(
            now_w - snap["disk"].get(addr, (0, 0))[1]
            for addr, (_r, now_w) in disk_now.items()
        )
        reads = sum(
            now_r - snap["disk"].get(addr, (0, 0))[0]
            for addr, (now_r, _w) in disk_now.items()
        )
        n = max(1, len(ndb_addrs))
        report.storage_disk_write_mb_s = writes / n / window / _MB
        report.storage_disk_read_mb_s = reads / n / window / _MB
        report.cross_az_mb = delta.cross_az_bytes / 1e6
        report.intra_az_mb = delta.intra_az_bytes / 1e6
        report.per_az = per_az_utilization(
            delta, ndb_addrs, nn_addrs, dep.network.topology.az_of, window
        )
        return report


class CephAdapter:
    """Adapter exposing a CephFS deployment to the experiment runner."""

    def __init__(self, spec: SetupSpec, num_servers: int, seed: int):
        self.spec = spec
        self.num_servers = num_servers
        config = CephConfig(
            osd_replication=spec.replication,
            dir_pinning=spec.dir_pinning,
            kclient_cache=spec.kclient_cache,
        )
        self.cluster = build_cephfs(
            num_mds=num_servers,
            azs=spec.azs,
            config=config,
            seed=seed,
            az_link_bandwidth_bytes_per_ms=AZ_LINK_BANDWIDTH_BYTES_PER_MS,
        )
        self.env = self.cluster.env

    # CephFS saturation throughput is insensitive to client count once the
    # MDSs are the bottleneck; fewer closed-loop clients keep queueing
    # transients (and simulation cost) bounded.
    preferred_clients_per_server = 8

    def ready(self):
        yield self.env.timeout(0)

    def install(self, namespace: Namespace) -> int:
        if self.spec.dir_pinning:
            # The operator pins the second-level directories round-robin
            # before any data lands (Section V-A-b).
            self.cluster.partitioner.pin(
                self.cluster.partitioner.subtree_key_of_dir(d) for d in namespace.dirs
            )
        return install_cephfs(self.cluster, namespace)

    def make_clients(self, count: int):
        return [self.cluster.client() for _ in range(count)]

    def warm_client_caches(self, clients, workload) -> None:
        """Install steady-state kernel caches and capability registrations.

        The paper's clients mount CephFS long before the measurement; their
        working sets are cached under valid capabilities (the mechanism the
        SkipKCache setup disables to expose true MDS throughput).
        """
        if not self.cluster.config.kclient_cache:
            return
        if not hasattr(workload, "working_set"):
            return
        for index, client in enumerate(clients):
            # dict.fromkeys = order-preserving dedupe; set() would make the
            # warm order (and thus cap-set contents) hash-seed dependent.
            for path in dict.fromkeys(workload.working_set(index)):
                rank = self.cluster.partitioner.rank_of(path) % len(self.cluster.mds_list)
                mds = self.cluster.mds_list[rank]
                inode = mds.shard.inodes.get(path)
                if inode is None:
                    continue
                client.cache[path] = inode
                mds.capabilities.setdefault(path, set()).add(client.addr)

    @property
    def network(self):
        return self.cluster.network

    def utilization_snapshot(self) -> dict:
        cluster = self.cluster
        return {
            "t": self.env.now,
            "mds_busy": {m.addr: m.cpu.busy_time for m in cluster.mds_list},
            "osd_busy": {o.addr: o.cpu.busy_time for o in cluster.osds},
            "osd_disk": {o.addr: (o.disk.bytes_read, o.disk.bytes_written) for o in cluster.osds},
            "traffic": cluster.network.traffic.snapshot(),
            "mds_served": {m.addr: m.ops_served for m in cluster.mds_list},
        }

    def utilization_report(self, snap: dict) -> ResourceReport:
        cluster = self.cluster
        window = self.env.now - snap["t"]
        report = ResourceReport(window_ms=window)
        if window <= 0:
            return report
        mds_busy = sum(
            m.cpu.busy_time - snap["mds_busy"].get(m.addr, 0.0) for m in cluster.mds_list
        )
        # MDS hosts have 32 cores but a single-threaded server (Fig. 10b).
        report.server_cpu_pct = 100.0 * mds_busy / (len(cluster.mds_list) * 32 * window)
        osd_busy = sum(
            o.cpu.busy_time - snap["osd_busy"].get(o.addr, 0.0) for o in cluster.osds
        )
        report.storage_cpu_pct = 100.0 * osd_busy / (len(cluster.osds) * 8 * window)
        delta = cluster.network.traffic.delta_since(snap["traffic"])
        osd_addrs = [o.addr for o in cluster.osds]
        mds_addrs = [m.addr for m in cluster.mds_list]
        report.storage_net_read_mb_s = _avg_mb_s(delta, osd_addrs, window, "received")
        report.storage_net_write_mb_s = _avg_mb_s(delta, osd_addrs, window, "sent")
        report.server_net_read_mb_s = _avg_mb_s(delta, mds_addrs, window, "received")
        report.server_net_write_mb_s = _avg_mb_s(delta, mds_addrs, window, "sent")
        writes = sum(
            o.disk.bytes_written - snap["osd_disk"].get(o.addr, (0, 0))[1]
            for o in cluster.osds
        )
        reads = sum(
            o.disk.bytes_read - snap["osd_disk"].get(o.addr, (0, 0))[0]
            for o in cluster.osds
        )
        n = max(1, len(osd_addrs))
        report.storage_disk_write_mb_s = writes / n / window / _MB
        report.storage_disk_read_mb_s = reads / n / window / _MB
        report.cross_az_mb = delta.cross_az_bytes / 1e6
        report.intra_az_mb = delta.intra_az_bytes / 1e6
        report.per_az = per_az_utilization(
            delta, osd_addrs, mds_addrs, cluster.network.topology.az_of, window
        )
        return report

    def mds_requests_since(self, snap: dict) -> int:
        return sum(
            m.ops_served - snap["mds_served"].get(m.addr, 0) for m in self.cluster.mds_list
        )


def _avg_mb_s(delta, addrs, window_ms: float, direction: str) -> float:
    total = 0
    for addr in addrs:
        node = delta.node.get(addr)
        if node is not None:
            total += getattr(node, direction)
    n = max(1, len(addrs))
    return total / n / window_ms / _MB
