"""Kernel performance harness: events/sec, wall time and peak RSS.

Two measurements, both deterministic in simulated behaviour (only the
wall-clock numbers vary between machines):

* :func:`kernel_microbench` — a pure-kernel events/sec microbenchmark that
  exercises the hot paths the figure runs lean on (``yield env.timeout``,
  Store handoffs, CorePool job completion callbacks, waits on
  already-processed events).  No domain code, so it isolates the DES
  engine itself.
* :func:`fig5_reference_point` — one fixed Figure 5 point
  (``HopsFS-CL (3,3)`` at 6 namenodes), timing the full stack and
  reporting the kernel's events/sec alongside the simulated throughput.

``python -m repro perf`` runs both and writes ``BENCH_kernel.json`` so the
perf trajectory is tracked PR-over-PR; CI fails when the microbench
regresses more than 20% against the committed file.

The harness honours ``REPRO_BENCH_SCALE`` the same way the benchmark suite
does: the fig5 point's warmup/measurement windows scale with it (see
:func:`repro.experiments.runner.bench_scale`), and the microbench horizon
scales with it too, so a quick smoke run is ``REPRO_BENCH_SCALE=0.1``.
"""

from __future__ import annotations

import json
import resource
import time
from typing import Optional

from ..sim import CorePool, Environment, Store
from .runner import RunConfig, bench_scale, run_point

__all__ = [
    "kernel_microbench",
    "fig5_reference_point",
    "scale_point",
    "async_point",
    "listing_point",
    "run_perf",
    "REFERENCE_SETUP",
    "REFERENCE_SERVERS",
    "SCALE_POINT_SHARDS",
    "SCALE_POINT_POPULATION",
]

REFERENCE_SETUP = "HopsFS-CL (3,3)"
REFERENCE_SERVERS = 6

# Microbench population: sized so one run takes O(seconds) at scale 1.
# Weighted like a figure run: message handoffs (every simulated RPC is a
# mailbox Store put/get) and CPU-pool completions (every handler charges a
# CorePool) dominate; pure sleep loops (heartbeats, election timers) are a
# minority of kernel traffic.
_TICKERS = 100
_PINGPONG_PAIRS = 150
_POOL_CLIENTS = 150
_WAITER_CHAINS = 50
_HORIZON_MS = 2_000.0
# Best-of-N wall-clock protocol: simulated behaviour is identical across
# repeats (same event count, same trace); only the wall clock is noisy, and
# the minimum is the least-interfered-with measurement.
_MICROBENCH_REPEATS = 5


def _peak_rss_mb() -> float:
    # ru_maxrss is KiB on Linux, bytes on macOS; the repo targets Linux.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _build_microbench(env: Environment) -> None:
    """Spawn the microbenchmark population on ``env``.

    The mix mirrors what a figure run does to the kernel: mostly timeout
    waits, plus mailbox handoffs (Store), CPU-pool completion events, and
    re-waits on already-processed events (the wakeup fast path).
    """

    # Bound methods are hoisted out of the loops so the measurement is of
    # the kernel, not of the driver generators' attribute lookups (the same
    # reason ``timeit`` hoists globals into locals).

    def ticker(period: float):
        # The dominant pattern in every simulated component: sleep loops.
        timeout = env.timeout
        while True:
            yield timeout(period)

    def producer(store: Store, period: float):
        timeout = env.timeout
        put = store.put
        n = 0
        while True:
            yield timeout(period)
            put(n)
            n += 1

    def consumer(store: Store):
        get = store.get
        while True:
            yield get()

    def pool_client(pool: CorePool, cost: float, think: float):
        timeout = env.timeout
        submit = pool.submit
        while True:
            yield submit(cost)
            yield timeout(think)

    def rewaiter(period: float):
        # Waits on an event that is already processed by the time the
        # second wait happens — exercises the processed-target wakeup path.
        timeout = env.timeout
        while True:
            done = timeout(period)
            yield done
            yield done  # already processed: immediate (next-step) wakeup

    for i in range(_TICKERS):
        env.process(ticker(0.5 + (i % 7) * 0.1), name=f"ticker{i}")
    for i in range(_PINGPONG_PAIRS):
        store = Store(env, name=f"s{i}")
        env.process(producer(store, 0.7 + (i % 5) * 0.1), name=f"prod{i}")
        env.process(consumer(store), name=f"cons{i}")
    pool = CorePool(env, cores=8, name="bench-pool")
    for i in range(_POOL_CLIENTS):
        env.process(pool_client(pool, 0.05, 0.4 + (i % 3) * 0.1), name=f"job{i}")
    for i in range(_WAITER_CHAINS):
        env.process(rewaiter(0.9 + (i % 4) * 0.1), name=f"rewait{i}")


def kernel_microbench(
    horizon_ms: Optional[float] = None, repeats: int = _MICROBENCH_REPEATS
) -> dict:
    """Run the kernel-only microbenchmark; returns events/sec stats.

    Runs ``repeats`` independent, behaviourally-identical passes and
    reports the fastest (best-of-N), which is the standard way to reject
    scheduler/cache interference when benchmarking a deterministic
    workload.  All per-pass rates are included for transparency.
    """
    horizon = horizon_ms if horizon_ms is not None else _HORIZON_MS * bench_scale()
    best_wall = None
    events = 0
    rates = []
    for _ in range(max(1, repeats)):
        env = Environment()
        _build_microbench(env)
        start = time.perf_counter()
        env.run(until=horizon)
        wall = time.perf_counter() - start
        events = env._seq
        rates.append(round(events / wall) if wall > 0 else 0)
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return {
        "horizon_ms": horizon,
        "events": events,
        "wall_s": round(best_wall, 4),
        "events_per_sec": max(rates),
        "events_per_sec_runs": rates,
    }


def fig5_reference_point() -> dict:
    """Time the fixed Figure 5 reference point end to end."""
    config = RunConfig(warmup_ms=15.0, window_ms=15.0)
    start = time.perf_counter()
    point = run_point(REFERENCE_SETUP, REFERENCE_SERVERS, config=config)
    wall = time.perf_counter() - start
    events = point.events
    return {
        "setup": REFERENCE_SETUP,
        "servers": REFERENCE_SERVERS,
        "bench_scale": bench_scale(),
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_sec": round(events / wall) if wall > 0 else 0,
        "throughput_ops_s": round(point.throughput_ops_s, 3),
        "avg_latency_ms": round(point.avg_latency_ms, 6),
        "completed": point.completed,
    }


# The recorded scale point: the paper's headline regime.  12 shards (4 per
# AZ of HopsFS-CL (3,3)) over a million-client Zipf population at 2M ops/s
# offered load.  ≥ 4 shards is the acceptance floor for the aggregate
# events/s gate; 12 is the engine's default partition for 3-AZ setups.
SCALE_POINT_SHARDS = 12
SCALE_POINT_POPULATION = 1_000_000


def scale_point() -> dict:
    """Run the sharded scale engine once and condense the record.

    The measurement windows scale with ``REPRO_BENCH_SCALE`` like every
    other harness entry; the population does not (virtual clients are free
    — that is the point of aggregated arrivals).
    """
    from .scale import ScaleConfig, run_scale

    scale = bench_scale()
    config = ScaleConfig(
        population=SCALE_POINT_POPULATION,
        shards=SCALE_POINT_SHARDS,
        duration_ms=200.0 * scale,
        warmup_ms=20.0 * scale,
        drain_ms=50.0 * scale,
    )
    artifact = run_scale(config)
    merged = artifact["merged"]
    timing = artifact["timing"]
    return {
        "setup": config.setup,
        "servers": config.servers,
        "bench_scale": scale,
        "population": config.population,
        "shards": SCALE_POINT_SHARDS,
        "workers": timing["workers"],
        "duration_ms": config.duration_ms,
        "offered_ops_per_s": round(merged["offered_ops_per_s"], 1),
        "arrivals": merged["arrivals"],
        "detailed_ops": merged["detailed"],
        "events": merged["events"],
        # Sum of per-shard events per CPU second: what the sharded engine
        # sustains with one core per shard (contention-independent).  The
        # wall rate of this particular run is recorded alongside.
        "aggregate_events_per_sec": timing["aggregate_events_per_sec"],
        "wall_events_per_sec": timing["wall_events_per_sec"],
        "run_wall_s": timing["run_wall_s"],
        "peak_shard_rss_mb": timing["peak_shard_rss_mb"],
        "merged_dispatch_hash": merged["dispatch_hash"],
        "artifact_hash": artifact["artifact_hash"],
    }


def async_point() -> dict:
    """Sync-vs-async group commit on the mutation-heavy microbenchmark.

    Runs the mkdir single-op workload (the regime the async path is built
    for: every op is a groupable metadata mutation) on the reference setup
    twice — legacy synchronous commit vs the async group-commit path —
    and records both, plus the throughput/latency ratios.  The Spotify mix
    is ~90% reads so its aggregate delta is marginal; this point isolates
    the commit path itself and is the one the CI perf gate watches.

    Measured below NN-CPU saturation (24 closed-loop clients per server,
    not the default 160): early acks cut the commit+complete chain out of
    each client's loop, which only moves throughput/latency while that
    chain is on the critical path.  At saturation the NN CPU is the
    bottleneck for sync and async alike and the two converge — a true
    statement about group commit, not a measurement artifact.
    """
    from ..hopsfs.groupcommit import AsyncCommitConfig
    from ..types import OpType

    results = {}
    for mode, commit in (("sync", None), ("async", AsyncCommitConfig())):
        config = RunConfig(
            clients_per_server=24,
            warmup_ms=15.0,
            window_ms=15.0,
            async_commit=commit,
        )
        point = run_point(
            REFERENCE_SETUP,
            REFERENCE_SERVERS,
            workload="single",
            op=OpType.MKDIR,
            config=config,
        )
        results[mode] = {
            "throughput_ops_s": round(point.throughput_ops_s, 3),
            "avg_latency_ms": round(point.avg_latency_ms, 6),
            "p99_ms": round(point.p99_ms, 6),
            "completed": point.completed,
            "failed": point.failed,
        }
    sync_tput = results["sync"]["throughput_ops_s"]
    return {
        "setup": REFERENCE_SETUP,
        "servers": REFERENCE_SERVERS,
        "op": "mkdir",
        "bench_scale": bench_scale(),
        "sync": results["sync"],
        "async": results["async"],
        "async_speedup": round(
            results["async"]["throughput_ops_s"] / sync_tput, 3
        ) if sync_tput else 0.0,
        "async_latency_ratio": round(
            results["async"]["avg_latency_ms"] / results["sync"]["avg_latency_ms"], 3
        ) if results["sync"]["avg_latency_ms"] else 0.0,
    }


def listing_point() -> dict:
    """Cache-off vs cache-on Spotify mix on the reference setup.

    The Spotify mix is ~95% reads, almost all of which the
    pre-materialized listing cache can serve from NN memory (the
    preloaded namespace's files are all small, so even ``readFile``
    skips NDB).  Runs the mix at the default closed-loop client count
    (NN-CPU saturation — the regime where skipping transaction setup
    frees handler cores) twice, legacy transactional reads vs the cache,
    and records both plus the ratios.  The CI perf gate watches the
    throughput speedup.
    """
    from ..hopsfs.listcache import ListingCacheConfig

    results = {}
    for mode, cache in (("off", None), ("on", ListingCacheConfig())):
        config = RunConfig(
            warmup_ms=15.0,
            window_ms=15.0,
            listing_cache=cache,
        )
        point = run_point(
            REFERENCE_SETUP,
            REFERENCE_SERVERS,
            workload="spotify",
            config=config,
        )
        results[mode] = {
            "throughput_ops_s": round(point.throughput_ops_s, 3),
            "avg_latency_ms": round(point.avg_latency_ms, 6),
            "p99_ms": round(point.p99_ms, 6),
            "completed": point.completed,
            "failed": point.failed,
        }
    off_tput = results["off"]["throughput_ops_s"]
    return {
        "setup": REFERENCE_SETUP,
        "servers": REFERENCE_SERVERS,
        "workload": "spotify",
        "bench_scale": bench_scale(),
        "off": results["off"],
        "on": results["on"],
        "listing_speedup": round(
            results["on"]["throughput_ops_s"] / off_tput, 3
        ) if off_tput else 0.0,
        "listing_latency_ratio": round(
            results["on"]["avg_latency_ms"] / results["off"]["avg_latency_ms"], 3
        ) if results["off"]["avg_latency_ms"] else 0.0,
    }


def run_perf(out_path: Optional[str] = None, baseline: Optional[dict] = None) -> dict:
    """Run both measurements; optionally write ``out_path`` as JSON.

    ``baseline`` (the committed pre-PR numbers) is carried through verbatim
    so the speedup history stays in the file.
    """
    micro = kernel_microbench()
    fig5 = fig5_reference_point()
    point = scale_point()
    commit = async_point()
    listing = listing_point()
    point["aggregate_speedup_vs_microbench"] = round(
        point["aggregate_events_per_sec"] / micro["events_per_sec"], 2
    )
    report = {
        "microbench": micro,
        "fig5_point": fig5,
        "scale_point": point,
        "async_point": commit,
        "listing_point": listing,
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }
    if baseline:
        report["pre_pr_baseline"] = baseline
        base_eps = baseline.get("microbench", {}).get("events_per_sec")
        if base_eps:
            report["microbench_speedup_vs_pre_pr"] = round(
                micro["events_per_sec"] / base_eps, 2
            )
        base_fig5 = baseline.get("fig5_point", {}).get("events_per_sec")
        if base_fig5:
            report["fig5_speedup_vs_pre_pr"] = round(
                fig5["events_per_sec"] / base_fig5, 2
            )
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report
