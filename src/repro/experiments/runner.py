"""Experiment runner: one (setup, server-count, workload) point at a time.

Methodology mirrors the paper's: preload a namespace, run closed-loop
clients to saturation (Fig. 5) or an open-loop arrival stream at a target
rate (Fig. 9), measure throughput/latency inside a warm window, and
snapshot resource counters around it (Figs. 10-13).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..metrics.collectors import MetricsCollector
from ..metrics.utilization import ResourceReport
from ..types import OpType
from ..workloads.driver import ClosedLoopDriver, OpenLoopDriver
from ..workloads.namespace import generate_namespace
from ..workloads.spotify import SingleOpWorkload, SpotifyWorkload
from .setups import SETUPS, SetupSpec

__all__ = ["PointResult", "RunConfig", "run_point", "bench_scale", "server_grid"]


def bench_scale() -> float:
    """Wall-clock knob: scales windows/client counts (REPRO_BENCH_SCALE)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def server_grid(full_env: str = "REPRO_BENCH_FULL") -> list[int]:
    """Metadata-server counts for sweep figures.

    The paper's grid is {1, 6, 12, 18, 24, 36, 48, 60}; the default quick
    grid keeps the endpoints and the knee.  Set REPRO_BENCH_FULL=1 for the
    full grid.
    """
    if os.environ.get(full_env):
        return [1, 6, 12, 18, 24, 36, 48, 60]
    return [1, 6, 24, 60]


@dataclass
class RunConfig:
    """Knobs for one experiment point."""

    clients_per_server: int = 160
    warmup_ms: float = 30.0
    window_ms: float = 30.0
    namespace_top_dirs: int = 8
    namespace_dirs_per_top: int = 64
    namespace_files_per_dir: int = 32
    seed: int = 0
    open_loop_rate_per_ms: Optional[float] = None
    max_clients: int = 12_000
    # Opt HopsFS setups into the async group-commit metadata path (an
    # AsyncCommitConfig); None keeps the synchronous legacy path.  CephFS
    # setups ignore it.
    async_commit: Optional[object] = None
    # Opt HopsFS setups into the pre-materialized listing cache (a
    # ListingCacheConfig); None keeps every read transactional.  CephFS
    # setups ignore it.
    listing_cache: Optional[object] = None

    def scaled(self) -> "RunConfig":
        scale = bench_scale()
        if scale == 1.0:
            return self
        clone = RunConfig(**self.__dict__)
        clone.window_ms = self.window_ms * scale
        clone.warmup_ms = self.warmup_ms * scale
        return clone


@dataclass
class PointResult:
    """Everything measured at one (setup, servers) point."""

    setup: str
    servers: int
    throughput_ops_s: float
    avg_latency_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    completed: int
    failed: int
    resource: ResourceReport
    per_server_ops_s: float = 0.0
    mds_requests_s: Optional[float] = None
    # Total kernel events dispatched during the run (the DES sequence
    # counter) — the numerator of the perf harness's events/sec.
    events: int = 0
    extra: dict = field(default_factory=dict)

    def percentiles_for(self, op: OpType, collector: MetricsCollector):
        return collector.latency_percentiles(op=op)


def run_point(
    spec: SetupSpec | str,
    num_servers: int,
    workload: str = "spotify",
    op: Optional[OpType] = None,
    config: Optional[RunConfig] = None,
    keep_collector: bool = False,
    obs=None,
):
    """Run one measurement point; returns a :class:`PointResult`.

    ``workload='spotify'`` replays the industrial mix; ``workload='single'``
    with ``op`` runs the Fig. 7 microbenchmarks.  Set
    ``config.open_loop_rate_per_ms`` for fixed-rate (Fig. 9) runs.

    Pass an :class:`repro.obs.ObsContext` as ``obs`` to trace the run: it
    is attached to the deployment's environment before any process starts,
    deployment counters are registered as gauges, and the context rides
    back in ``result.extra["obs"]``.  Tracing never perturbs the event
    schedule (see DESIGN.md "Observability").
    """
    if isinstance(spec, str):
        spec = SETUPS[spec]
    config = (config or RunConfig()).scaled()
    adapter = spec.build(num_servers, seed=config.seed,
                         async_commit=config.async_commit,
                         listing_cache=config.listing_cache)
    env = adapter.env
    if obs is not None:
        from ..obs import register_deployment_metrics

        obs.attach(env)
        register_deployment_metrics(obs, adapter)

    namespace = generate_namespace(
        num_top_dirs=config.namespace_top_dirs,
        dirs_per_top=config.namespace_dirs_per_top,
        files_per_dir=config.namespace_files_per_dir,
        seed=config.seed,
    )
    adapter.install(namespace)
    env.run_process(adapter.ready(), until=env.now + 60_000)

    if workload == "single":
        if op is None:
            raise ValueError("single-op workload needs op=")
        gen = SingleOpWorkload(op, namespace, seed=config.seed)
        if op is OpType.DELETE_FILE:
            _precreate(adapter, gen, config)
    else:
        gen = SpotifyWorkload(namespace, seed=config.seed, tag=spec.name)

    per_server = getattr(adapter, "preferred_clients_per_server", config.clients_per_server)
    num_clients = min(config.max_clients, per_server * num_servers)
    clients = adapter.make_clients(num_clients)
    if hasattr(adapter, "warm_client_caches"):
        adapter.warm_client_caches(clients, gen)
    collector = MetricsCollector()
    if config.open_loop_rate_per_ms is not None:
        driver = OpenLoopDriver(
            env, clients, gen, collector, rate_per_ms=config.open_loop_rate_per_ms
        )
    else:
        driver = ClosedLoopDriver(env, clients, gen, collector)
    driver.start()

    env.run(until=env.now + config.warmup_ms)
    snap = adapter.utilization_snapshot()
    collector.open_window(env.now)
    env.run(until=env.now + config.window_ms)
    collector.close_window(env.now)
    resource = adapter.utilization_report(snap)
    driver.stop()

    pcts = collector.latency_percentiles()
    result = PointResult(
        setup=spec.name,
        servers=num_servers,
        throughput_ops_s=collector.throughput_ops_per_sec(),
        avg_latency_ms=collector.avg_latency_ms(),
        p50_ms=pcts[50],
        p90_ms=pcts[90],
        p99_ms=pcts[99],
        completed=collector.completed,
        failed=collector.failed,
        resource=resource,
        per_server_ops_s=collector.throughput_ops_per_sec() / max(1, num_servers),
        events=env._seq,
    )
    if hasattr(adapter, "mds_requests_since"):
        window_s = collector.window_ms / 1000.0
        if window_s > 0:
            result.mds_requests_s = adapter.mds_requests_since(snap) / window_s
    if keep_collector:
        result.extra["collector"] = collector
        result.extra["adapter"] = adapter
    if obs is not None:
        result.extra["obs"] = obs
    return result


def _precreate(adapter, gen: SingleOpWorkload, config: RunConfig) -> None:
    """Install the victims a deleteFile microbenchmark will remove."""
    # Enough for the whole run at a generous rate estimate.
    budget = int(3000 * (config.warmup_ms + config.window_ms))
    budget = min(budget, 120_000)
    paths = gen.precreate_paths(budget)
    if hasattr(adapter, "deployment"):
        from ..hopsfs.metadata import INODES_TABLE, InodeRow

        dep = adapter.deployment
        # Resolve parent ids from the installed namespace via a direct scan
        # of any datanode's fragment store (preload-time shortcut).
        store = next(iter(dep.ndb.datanodes.values())).store
        path_ids = {}
        rows = []
        for path in paths:
            parent_path, _s, name = path.rpartition("/")
            parent_id = _lookup_dir_id(dep, parent_path)
            if parent_id is None:
                continue
            inode_id = dep.ids.next_inode_id()
            rows.append(
                (
                    (parent_id, name),
                    parent_id,
                    InodeRow(
                        id=inode_id,
                        parent_id=parent_id,
                        name=name,
                        is_dir=False,
                        small_data=b"",
                    ),
                )
            )
        dep.ndb.preload(INODES_TABLE, rows)
    else:
        cluster = adapter.cluster
        cluster.preload([(p, False) for p in paths])


_DIR_ID_CACHE_ATTR = "_bench_dir_id_cache"


def _lookup_dir_id(dep, path: str):
    """Resolve a directory path to its inode id via the fragment stores."""
    cache = getattr(dep, _DIR_ID_CACHE_ATTR, None)
    if cache is None:
        cache = {"/": 1, "": 1}
        setattr(dep, _DIR_ID_CACHE_ATTR, cache)
    if path in cache:
        return cache[path]
    parent_path, _s, name = path.rpartition("/")
    parent_id = _lookup_dir_id(dep, parent_path)
    if parent_id is None:
        return None
    for dn in dep.ndb.datanodes.values():
        row = dn.store.read("inodes", (parent_id, name))
        if row is not None:
            cache[path] = row.id
            return row.id
    return None
