"""Experiment harness: the nine setups, the runner, and figure drivers."""

from .runner import PointResult, RunConfig, run_point, server_grid
from .scale import ScaleConfig, run_scale
from .setups import SETUPS, SetupSpec, build_setup

__all__ = [
    "PointResult",
    "RunConfig",
    "run_point",
    "server_grid",
    "ScaleConfig",
    "run_scale",
    "SETUPS",
    "SetupSpec",
    "build_setup",
]
