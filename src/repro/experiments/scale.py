"""Sharded million-client scale runs with a deterministic merge.

``run_scale`` partitions one huge open-loop workload into ``shards``
independent request streams.  Each shard is a complete DES instance — its
own deployment built from the same seed (a read-only snapshot of the
setup: every shard sees the identical cluster and preloaded namespace) —
driven by an :class:`~repro.workloads.arrivals.AggregatedArrivalEngine`
at ``1/shards`` of the offered load.  Splitting a Poisson arrival process
into independent thinned streams with the same client-identity
distribution is exact (superposition), so the union of the shards *is*
the aggregate workload, and any shard can be replayed alone.

Shards are executed by a pool of ``workers`` OS processes
(``multiprocessing``), then folded in sorted shard order into one merged
artifact: merged :class:`~repro.metrics.collectors.MetricsCollector`,
merged latency :class:`~repro.obs.metrics.Histogram`, and a merged
dispatch hash (SHA-256 over the per-shard dispatch hashes in shard
order).  The determinism contract, gated by golden tests and CI:

* same ``(seed, setup, population, shards, …)`` ⇒ a bit-identical merged
  artifact, run after run;
* the artifact never depends on ``workers`` or on whether shards ran
  inline, forked, or distributed — worker count is pure execution
  placement, excluded from the hashed sections;
* per-shard randomness derives from ``(seed, shard_id, stream_name)``
  (:meth:`repro.sim.rng.RngRegistry.for_shard`), so no two shards can
  share an arrival sequence.

Wall-clock/CPU rates and RSS are recorded in a separate ``timing``
section that is *not* part of the hashed artifact.  The headline
``aggregate_events_per_sec`` is the sum of per-shard events per CPU
second: CPU time is immune to core contention, so the number means "what
the engine sustains with one core per shard" whether the run happened on
a laptop or a one-core CI container (the honest wall-clock rate of this
particular run is recorded alongside as ``wall_events_per_sec``).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import resource
import time
from dataclasses import asdict, dataclass
from typing import Optional

from ..errors import ReproError
from ..metrics.collectors import MetricsCollector
from ..obs.metrics import Histogram
from ..sim import RngRegistry
from ..workloads.arrivals import AggregatedArrivalEngine, ZipfPopulation
from ..workloads.namespace import generate_namespace
from ..workloads.spotify import SpotifyWorkload
from .setups import SETUPS

__all__ = ["ScaleConfig", "ShardResult", "run_scale", "run_shard", "SMOKE_CONFIG"]


@dataclass
class ScaleConfig:
    """Knobs for one sharded scale run.

    ``shards`` is the *deterministic partition count* (part of the
    reproducibility key); ``workers`` is how many OS processes execute
    them (never part of it).  ``rate_ops_per_ms`` is the total offered
    load across the whole population; each shard generates its
    ``1/shards`` share.
    """

    setup: str = "HopsFS-CL (3,3)"
    servers: int = 3
    population: int = 1_000_000
    rate_ops_per_ms: float = 2_000.0  # 2M ops/s offered, the paper's regime
    duration_ms: float = 200.0
    warmup_ms: float = 20.0
    drain_ms: float = 50.0
    seed: int = 0
    shards: int = 0  # 0 → 4 per AZ of the setup
    workers: int = 0  # 0 → min(shards, usable CPUs)
    zipf_s: float = 1.05
    detail_every: int = 64  # 1-in-K arrivals executed in full detail
    stubs_per_shard: int = 8
    max_inflight: int = 64
    scenario: Optional[str] = None  # optional chaos scenario per shard
    namespace_top_dirs: int = 4
    namespace_dirs_per_top: int = 16
    namespace_files_per_dir: int = 16

    def resolved_shards(self) -> int:
        if self.shards:
            return self.shards
        return 4 * len(SETUPS[self.setup].azs)

    def resolved_workers(self) -> int:
        if self.workers:
            return self.workers
        return max(1, min(self.resolved_shards(), _usable_cpus()))


# The canonical CI smoke configuration: small population, 2 shards, short
# windows.  Its merged artifact hash is committed as a golden
# (benchmarks/results/scale_smoke_golden.json) and gated by the
# scale-smoke CI job; bump the golden deliberately when the model changes.
SMOKE_CONFIG = ScaleConfig(
    population=100_000,
    rate_ops_per_ms=200.0,
    duration_ms=60.0,
    warmup_ms=10.0,
    drain_ms=20.0,
    shards=2,
    seed=0,
)


@dataclass
class ShardResult:
    """Everything one shard's DES produced (deterministic + timing)."""

    shard_id: int
    az: int
    arrivals: int
    shed: int
    detailed: int
    distinct_clients: int
    max_client_id: int
    events: int
    window_ms: float
    dispatch_hash: str
    collector: MetricsCollector
    histogram: Histogram
    verdicts: Optional[list] = None  # (name, ok, detail) when a scenario ran
    # -- timing (machine-dependent, never hashed) ---------------------------
    cpu_s: float = 0.0
    wall_s: float = 0.0
    rss_mb: float = 0.0

    def deterministic_dict(self) -> dict:
        """The hashed per-shard view: simulation outputs only."""
        out = {
            "shard_id": self.shard_id,
            "az": self.az,
            "arrivals": self.arrivals,
            "shed": self.shed,
            "detailed": self.detailed,
            "distinct_clients": self.distinct_clients,
            "max_client_id": self.max_client_id,
            "events": self.events,
            "window_ms": self.window_ms,
            "dispatch_hash": self.dispatch_hash,
            "collector": self.collector.summary(),
            "histogram": self.histogram.as_dict(),
        }
        # Scenario runs use a TimelineCollector; its per-bucket availability
        # rows are deterministic simulation outputs, so they are hashed too.
        timeline_fn = getattr(self.collector, "timeline", None)
        if timeline_fn is not None:
            out["timeline"] = timeline_fn()
        if self.verdicts is not None:
            out["invariants"] = [
                {"name": n, "ok": ok, "detail": detail}
                for n, ok, detail in self.verdicts
            ]
        return out


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _peak_rss_mb() -> float:
    # KiB on Linux; the repo targets Linux (same convention as perf.py).
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _make_stubs(harness, az, count: int):
    """AZ-pinned client stubs where the stack supports it."""
    dep = getattr(harness, "deployment", None) or getattr(harness, "cluster", None)
    stubs = []
    for _ in range(count):
        if dep is not None and hasattr(dep, "client"):
            stubs.append(dep.client(az=az))
        else:
            stubs.append(harness.make_client())
    return stubs


def run_shard(payload: dict) -> ShardResult:
    """Run one shard's DES end to end (top-level: pool workers pickle it).

    ``payload`` is ``{"config": asdict(ScaleConfig), "shard_id": int}``.
    Everything here is a pure function of those values — worker processes
    inherit no run state besides the imported code.
    """
    config = ScaleConfig(**payload["config"])
    shard_id = payload["shard_id"]
    num_shards = config.resolved_shards()
    spec = SETUPS[config.setup]
    az = spec.azs[shard_id % len(spec.azs)]

    scenario = None
    injector = None
    if config.scenario is not None:
        # Lazy import: chaos pulls in both full stacks.
        from ..chaos import SCENARIOS, FaultInjector, build_chaos_target

        if config.scenario not in SCENARIOS:
            raise ReproError(
                f"unknown scenario {config.scenario!r} "
                f"(have: {', '.join(sorted(SCENARIOS))})"
            )
        scenario = SCENARIOS[config.scenario]
        harness = build_chaos_target(
            config.setup, num_servers=config.servers, seed=config.seed,
            robust=scenario.robust,
        )
        env = harness.env
    else:
        harness = spec.build(config.servers, seed=config.seed)
        env = harness.env
    env.trace = []  # per-shard dispatch trace -> dispatch hash

    namespace = generate_namespace(
        num_top_dirs=config.namespace_top_dirs,
        dirs_per_top=config.namespace_dirs_per_top,
        files_per_dir=config.namespace_files_per_dir,
        seed=config.seed,
    )
    harness.install(namespace)
    env.run_process(harness.ready(), until=env.now + 60_000)

    rng = RngRegistry(config.seed).for_shard(shard_id)
    workload = SpotifyWorkload(namespace, seed=config.seed, tag=f"scale-{shard_id}")
    # All shard randomness flows through the (seed, shard_id, name) streams.
    workload.rng = rng.stream("ops")
    population = ZipfPopulation(config.population, config.zipf_s, rng.stream("population"))
    if scenario is not None:
        # Detailed ops bucket into an availability timeline over the fault
        # window; the per-shard timelines merge deterministically below.
        from ..chaos.timeline import TimelineCollector

        collector: MetricsCollector = TimelineCollector()
    else:
        collector = MetricsCollector()
    engine = AggregatedArrivalEngine(
        env,
        _make_stubs(harness, az, config.stubs_per_shard),
        workload,
        collector,
        population,
        rate_per_ms=config.rate_ops_per_ms / num_shards,
        arrival_rng=rng.stream("arrivals"),
        detail_every=config.detail_every,
        max_inflight=config.max_inflight,
        az=az,
    )

    if scenario is not None:
        schedule = scenario.schedule_fn(harness)
        if schedule.end_ms() > config.duration_ms + config.drain_ms:
            raise ReproError(
                f"scenario {scenario.name!r} runs to {schedule.end_ms()}ms; "
                f"raise --duration so the fault schedule fits the load window"
            )
        injector = FaultInjector(harness, schedule)

    engine.start()
    env.run(until=env.now + config.warmup_ms)
    collector.open_window(env.now)
    seq_before = env._seq
    arrivals_before = engine.arrivals
    cpu0 = time.process_time()
    wall0 = time.perf_counter()
    if injector is not None:
        injector.start()
    env.run(until=env.now + config.duration_ms)
    cpu_s = time.process_time() - cpu0
    wall_s = time.perf_counter() - wall0
    collector.close_window(env.now)
    events = env._seq - seq_before
    engine.stop()
    if config.drain_ms > 0:
        env.run(until=env.now + config.drain_ms)

    verdicts = None
    if scenario is not None:
        from ..chaos import verify_target

        verdicts = [(v.name, v.ok, v.detail) for v in verify_target(harness)]

    histogram = Histogram("scale.latency_ms")
    for value in collector.latencies_ms:
        histogram.observe(value)

    h = hashlib.sha256()
    for when, prio, seq in env.trace:
        h.update(f"{when!r}:{prio}:{seq}\n".encode())

    return ShardResult(
        shard_id=shard_id,
        az=az,
        # Offered-load accounting is window-scoped, like the collector.
        arrivals=engine.arrivals - arrivals_before,
        shed=engine.shed,
        detailed=engine.detailed,
        distinct_clients=len(engine.distinct_clients),
        max_client_id=engine.max_client_id,
        events=events,
        window_ms=collector.window_ms,
        dispatch_hash=h.hexdigest(),
        collector=collector,
        histogram=histogram,
        verdicts=verdicts,
        cpu_s=cpu_s,
        wall_s=wall_s,
        rss_mb=_peak_rss_mb(),
    )


def _canonical_json(doc: dict) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _deterministic_config(config: ScaleConfig) -> dict:
    """The config view that keys the artifact hash.

    ``workers`` is execution placement, not workload identity — it must
    never change the artifact — so it is excluded; ``shards`` is resolved
    so explicit and defaulted spellings of the same partition hash alike.
    """
    doc = asdict(config)
    doc.pop("workers")
    doc["shards"] = config.resolved_shards()
    return doc


def run_scale(config: Optional[ScaleConfig] = None) -> dict:
    """Run every shard, merge deterministically, return the artifact."""
    config = config or ScaleConfig()
    if config.setup not in SETUPS:
        raise ReproError(
            f"unknown setup {config.setup!r} (have: {', '.join(SETUPS)})"
        )
    num_shards = config.resolved_shards()
    workers = config.resolved_workers()
    payloads = [
        {"config": asdict(config), "shard_id": shard_id}
        for shard_id in range(num_shards)
    ]

    run_wall0 = time.perf_counter()
    if workers <= 1:
        results = [run_shard(p) for p in payloads]
    else:
        # fork keeps startup cheap on Linux; results come back in submission
        # order, and the merge below sorts by shard id anyway.
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            ctx = multiprocessing.get_context()
        with ctx.Pool(processes=workers) as pool:
            results = pool.map(run_shard, payloads)
    run_wall = time.perf_counter() - run_wall0

    results.sort(key=lambda r: r.shard_id)

    merged_collector = results[0].collector
    merged_histogram = results[0].histogram
    for shard in results[1:]:
        merged_collector = merged_collector.merge(shard.collector)
        merged_histogram = merged_histogram.merge(shard.histogram)

    merged_hash = hashlib.sha256()
    for shard in results:
        merged_hash.update(f"{shard.shard_id}:{shard.dispatch_hash}\n".encode())
    merged_dispatch_hash = merged_hash.hexdigest()

    arrivals = sum(r.arrivals for r in results)
    window_ms = max((r.window_ms for r in results), default=0.0)
    all_green: Optional[bool] = None
    if config.scenario is not None:
        all_green = all(ok for r in results for _n, ok, _d in (r.verdicts or []))

    merged = {
        "population": config.population,
        "arrivals": arrivals,
        "offered_ops_per_s": (arrivals / window_ms * 1000.0) if window_ms else 0.0,
        "shed": sum(r.shed for r in results),
        "detailed": sum(r.detailed for r in results),
        "events": sum(r.events for r in results),
        "max_client_id": max((r.max_client_id for r in results), default=-1),
        "collector": merged_collector.summary(),
        "histogram": merged_histogram.as_dict(),
        "dispatch_hash": merged_dispatch_hash,
    }
    if all_green is not None:
        merged["all_green"] = all_green
        timeline_fn = getattr(merged_collector, "timeline", None)
        if timeline_fn is not None:
            merged["availability_timeline"] = timeline_fn()

    deterministic = {
        "schema": "repro-scale-v1",
        "config": _deterministic_config(config),
        "shards": [r.deterministic_dict() for r in results],
        "merged": merged,
    }
    artifact_hash = hashlib.sha256(
        _canonical_json(deterministic).encode()
    ).hexdigest()

    total_cpu = sum(r.cpu_s for r in results)
    aggregate_eps = sum(
        (r.events / r.cpu_s) for r in results if r.cpu_s > 0
    )
    timing = {
        "workers": workers,
        "usable_cpus": _usable_cpus(),
        "run_wall_s": round(run_wall, 4),
        "total_cpu_s": round(total_cpu, 4),
        "aggregate_events_per_sec": round(aggregate_eps),
        "wall_events_per_sec": round(merged["events"] / run_wall) if run_wall > 0 else 0,
        "peak_shard_rss_mb": round(max((r.rss_mb for r in results), default=0.0), 1),
        "per_shard": [
            {
                "shard_id": r.shard_id,
                "cpu_s": round(r.cpu_s, 4),
                "wall_s": round(r.wall_s, 4),
                "rss_mb": round(r.rss_mb, 1),
                "events_per_cpu_sec": round(r.events / r.cpu_s) if r.cpu_s > 0 else 0,
            }
            for r in results
        ],
    }
    artifact = dict(deterministic)
    artifact["artifact_hash"] = artifact_hash
    artifact["timing"] = timing
    return artifact
