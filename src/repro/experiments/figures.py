"""Regenerate every table and figure of the paper's evaluation.

Each ``figN()`` returns a :class:`repro.metrics.Table` whose rows mirror
the series of the corresponding figure.  Figures 5, 6, 8 and 10-13 all
derive from the same Spotify-workload sweep (as in the paper), which is
run once per process and cached.

Scale knobs: ``REPRO_BENCH_FULL=1`` runs the paper's full server grid;
``REPRO_BENCH_SCALE`` multiplies the measurement windows.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from ..metrics.report import Table, az_skew_note
from ..net import US_WEST1_AZS, build_us_west1
from ..ndb.config import TABLE2_THREADS
from ..types import OpType
from .runner import PointResult, RunConfig, run_point, server_grid
from .setups import SETUPS

__all__ = [
    "table1",
    "table2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig_async",
    "sweep",
    "HOPSFS_SETUPS",
    "CEPH_SETUPS",
]

HOPSFS_SETUPS = [
    "HopsFS (2,1)",
    "HopsFS (3,1)",
    "HopsFS (2,3)",
    "HopsFS (3,3)",
    "HopsFS-CL (2,3)",
    "HopsFS-CL (3,3)",
]
CEPH_SETUPS = ["CephFS", "CephFS - DirPinned", "CephFS - SkipKCache"]
ALL_SETUPS = HOPSFS_SETUPS + CEPH_SETUPS

_SWEEP_CACHE: dict[tuple[str, int], PointResult] = {}


def _config_for(setup: str) -> RunConfig:
    # CephFS needs a longer warmup for its MDS queues and client caches to
    # reach steady state; HopsFS stabilizes quickly.
    if setup.startswith("CephFS"):
        return RunConfig(warmup_ms=100.0, window_ms=40.0)
    return RunConfig(warmup_ms=15.0, window_ms=15.0)


def sweep(
    setups: Iterable[str] = ALL_SETUPS,
    grid: Optional[list[int]] = None,
) -> dict[tuple[str, int], PointResult]:
    """Run (or reuse) the Spotify-workload sweep over the server grid."""
    grid = grid or server_grid()
    for setup in setups:
        for n in grid:
            key = (setup, n)
            if key not in _SWEEP_CACHE:
                _SWEEP_CACHE[key] = run_point(setup, n, config=_config_for(setup))
    return {
        (s, n): _SWEEP_CACHE[(s, n)]
        for s in setups
        for n in (grid or [])
        if (s, n) in _SWEEP_CACHE
    }


# --------------------------------------------------------------------- tables
def table1() -> Table:
    """Table I: measured latencies between AZs of us-west1 (ms)."""
    table = Table(
        title="Table I - inter-AZ latencies (ms), us-west1",
        headers=["", *US_WEST1_AZS],
    )
    topo = build_us_west1()
    for a in range(1, 4):
        row = [US_WEST1_AZS[a - 1]]
        for b in range(1, 4):
            row.append(topo.az_pair_latency(a, b))
        table.add_row(*row)
    table.add_note("values are the paper's measurements, used as the model's one-way delays")
    return table


def table2() -> Table:
    """Table II: the NDB CPU/thread configuration (27 threads)."""
    table = Table(
        title="Table II - NDB datanode thread configuration",
        headers=["type", "count", "responsibility"],
    )
    notes = {
        "ldm": "tables' data shards",
        "tc": "ongoing transactions on the database nodes",
        "recv": "inbound network traffic",
        "send": "outbound network traffic",
        "rep": "replication across clusters",
        "io": "I/O operations",
        "main": "schema management",
    }
    for name, count in TABLE2_THREADS.items():
        table.add_row(name.upper(), count, notes[name])
    table.add_row("total", sum(TABLE2_THREADS.values()), "")
    return table


# -------------------------------------------------------------------- figures
def fig5(grid: Optional[list[int]] = None) -> Table:
    """Fig. 5: throughput (ops/s) vs number of metadata servers, 9 setups."""
    grid = grid or server_grid()
    results = sweep(ALL_SETUPS, grid)
    table = Table(
        title="Figure 5 - Spotify workload throughput (ops/s)",
        headers=["setup", *[str(n) for n in grid]],
    )
    for setup in ALL_SETUPS:
        table.add_row(setup, *[results[(setup, n)].throughput_ops_s for n in grid])
    return table


def fig6(grid: Optional[list[int]] = None) -> Table:
    """Fig. 6: actual requests handled per metadata server (ops/s)."""
    grid = grid or server_grid()
    setups = ["HopsFS-CL (2,3)", "HopsFS-CL (3,3)", *CEPH_SETUPS]
    results = sweep(setups, grid)
    table = Table(
        title="Figure 6 - throughput per metadata server (ops/s, log2 in the paper)",
        headers=["setup", *[str(n) for n in grid]],
    )
    for setup in setups:
        row = [setup]
        for n in grid:
            point = results[(setup, n)]
            if point.mds_requests_s is not None:
                row.append(point.mds_requests_s / n)
            else:
                row.append(point.per_server_ops_s)
        table.add_row(*row)
    table.add_note("CephFS rows count actual MDS requests (cache hits excluded)")
    return table


_FIG7_OPS = [OpType.MKDIR, OpType.CREATE_FILE, OpType.DELETE_FILE, OpType.READ_FILE]


def fig7(num_servers: Optional[int] = None) -> Table:
    """Fig. 7: single-operation microbenchmark throughput (ops/s)."""
    if num_servers is None:
        num_servers = 60 if os.environ.get("REPRO_BENCH_FULL") else 24
    table = Table(
        title=f"Figure 7 - microbenchmark throughput (ops/s), {num_servers} metadata servers",
        headers=["setup", *[op.value for op in _FIG7_OPS]],
    )
    for setup in ALL_SETUPS:
        row = [setup]
        for op in _FIG7_OPS:
            point = run_point(
                setup, num_servers, workload="single", op=op, config=_config_for(setup)
            )
            row.append(point.throughput_ops_s)
        table.add_row(*row)
    return table


def fig8(grid: Optional[list[int]] = None) -> Table:
    """Fig. 8: average end-to-end latency (ms) vs metadata servers."""
    grid = grid or server_grid()
    results = sweep(ALL_SETUPS, grid)
    table = Table(
        title="Figure 8 - average end-to-end latency (ms), Spotify workload",
        headers=["setup", *[str(n) for n in grid]],
    )
    for setup in ALL_SETUPS:
        table.add_row(setup, *[results[(setup, n)].avg_latency_ms for n in grid])
    return table


def fig9(num_servers: int = 60) -> Table:
    """Fig. 9: p50/p90/p99 latency of create/read/delete at 50% load."""
    table = Table(
        title=f"Figure 9 - latency percentiles (ms) at 50% load, {num_servers} servers",
        headers=["setup", "op", "p50", "p90", "p99"],
    )
    interesting = [OpType.CREATE_FILE, OpType.READ_FILE, OpType.DELETE_FILE]
    for setup in ALL_SETUPS:
        saturation = sweep([setup], [num_servers])[(setup, num_servers)].throughput_ops_s
        config = _config_for(setup)
        config.open_loop_rate_per_ms = max(0.05, saturation / 1000.0 * 0.5)
        point = run_point(setup, num_servers, config=config, keep_collector=True)
        collector = point.extra["collector"]
        for op in interesting:
            pcts = collector.latency_percentiles(op=op)
            table.add_row(setup, op.value, pcts[50], pcts[90], pcts[99])
    return table


def fig10(grid: Optional[list[int]] = None) -> Table:
    """Fig. 10: CPU utilization per storage node (a) and per server (b)."""
    grid = grid or server_grid()
    results = sweep(ALL_SETUPS, grid)
    table = Table(
        title="Figure 10 - CPU utilization %: storage nodes / metadata servers",
        headers=["setup", *[f"{n} (stor/srv)" for n in grid]],
    )
    for setup in ALL_SETUPS:
        row = [setup]
        for n in grid:
            r = results[(setup, n)].resource
            row.append(f"{r.storage_cpu_pct:.1f}/{r.server_cpu_pct:.1f}")
        table.add_row(*row)
    return table


def fig11(grid: Optional[list[int]] = None) -> Table:
    """Fig. 11: CPU per NDB thread type, HopsFS-CL (3,3)."""
    grid = grid or server_grid()
    results = sweep(["HopsFS-CL (3,3)"], grid)
    types = ["ldm", "tc", "recv", "send", "rep", "io", "main"]
    table = Table(
        title="Figure 11 - NDB thread-type CPU %, HopsFS-CL (3,3)",
        headers=["thread", *[str(n) for n in grid]],
    )
    for t in types:
        table.add_row(
            t.upper(),
            *[results[("HopsFS-CL (3,3)", n)].resource.ndb_thread_cpu_pct.get(t, 0.0) for n in grid],
        )
    return table


def fig12(grid: Optional[list[int]] = None) -> Table:
    """Fig. 12: network and disk utilization of the metadata storage layer."""
    grid = grid or server_grid()
    results = sweep(ALL_SETUPS, grid)
    table = Table(
        title="Figure 12 - storage layer: net read/write + disk write (MB/s per node)",
        headers=["setup", *[str(n) for n in grid]],
    )
    for setup in ALL_SETUPS:
        row = [setup]
        for n in grid:
            r = results[(setup, n)].resource
            row.append(
                f"{r.storage_net_read_mb_s:.2f}/{r.storage_net_write_mb_s:.2f}/{r.storage_disk_write_mb_s:.3f}"
            )
        table.add_row(*row)
        note = az_skew_note(setup, results[(setup, grid[-1])].resource, tier="storage")
        if note:
            table.add_note(f"n={grid[-1]} {note}")
    return table


def fig13(grid: Optional[list[int]] = None) -> Table:
    """Fig. 13: network utilization per metadata server."""
    grid = grid or server_grid()
    results = sweep(ALL_SETUPS, grid)
    table = Table(
        title="Figure 13 - metadata server: net read/write (MB/s per server)",
        headers=["setup", *[str(n) for n in grid]],
    )
    for setup in ALL_SETUPS:
        row = [setup]
        for n in grid:
            r = results[(setup, n)].resource
            row.append(f"{r.server_net_read_mb_s:.2f}/{r.server_net_write_mb_s:.2f}")
        table.add_row(*row)
        note = az_skew_note(setup, results[(setup, grid[-1])].resource, tier="server")
        if note:
            table.add_note(f"n={grid[-1]} {note}")
    return table


def fig_async(num_servers: int = 6) -> Table:
    """Sync vs async group commit: mkdir microbenchmark, all 9 setups.

    Runs the mutation-heavy mkdir workload twice per setup — legacy
    synchronous commit and the async group-commit path — and reports
    throughput, average latency and the async/sync throughput ratio.
    CephFS setups have no NDB commit path, so ``async_commit`` is a no-op
    there and both columns are the same deterministic run.
    """
    from ..hopsfs.groupcommit import AsyncCommitConfig

    table = Table(
        title=(f"Async group commit - mkdir throughput (ops/s) sync vs async, "
               f"{num_servers} metadata servers"),
        headers=["setup", "sync ops/s", "async ops/s", "speedup",
                 "sync avg ms", "async avg ms"],
    )
    for setup in ALL_SETUPS:
        points = {}
        for mode, commit in (("sync", None), ("async", AsyncCommitConfig())):
            config = _config_for(setup)
            config.async_commit = commit
            points[mode] = run_point(
                setup, num_servers, workload="single", op=OpType.MKDIR,
                config=config,
            )
        sync_tput = points["sync"].throughput_ops_s
        table.add_row(
            setup,
            sync_tput,
            points["async"].throughput_ops_s,
            points["async"].throughput_ops_s / sync_tput if sync_tput else 0.0,
            points["sync"].avg_latency_ms,
            points["async"].avg_latency_ms,
        )
    table.add_note("async acks at batch admission; durability via fsync horizon")
    table.add_note("CephFS rows ignore async_commit (no NDB commit path)")
    return table


def fig14(num_partitions_shown: int = 24) -> Table:
    """Fig. 14: read distribution across replicas, Read Backup on vs off.

    Runs the Spotify mix against an AZ-aware 3-AZ deployment twice — with
    the Read Backup table option enabled and disabled — and reports, per
    partition, the fraction of reads served by the primary and each backup.
    """
    from ..hopsfs import HopsFsConfig, build_hopsfs
    from ..ndb import NdbConfig
    from ..workloads.driver import ClosedLoopDriver
    from ..workloads.namespace import generate_namespace, install_hopsfs
    from ..workloads.spotify import SpotifyWorkload
    from ..metrics.collectors import MetricsCollector
    from ..hopsfs.metadata import define_fs_schema

    table = Table(
        title="Figure 14 - reads per replica role, Read Backup on/off",
        headers=["mode", "partition", "primary %", "backup1 %", "backup2 %"],
    )

    for mode, read_backup in (("ReadBackup Enabled", True), ("ReadBackup Disabled", False)):
        from ..hopsfs.filesystem import build_hopsfs as _build

        deployment = _build(
            num_namenodes=6,
            azs=(1, 2, 3),
            az_aware=True,
            ndb_config=NdbConfig(num_datanodes=12, replication=3, az_aware=True),
            hopsfs_config=HopsFsConfig(election_period_ms=100.0),
            seed=3,
        )
        # Override the schema default: HopsFS-CL normally forces RB on.
        if not read_backup:
            for tdef in deployment.ndb.schema.tables():
                object.__setattr__(tdef, "read_backup", False)
        env = deployment.env
        namespace = generate_namespace(seed=3)
        install_hopsfs(deployment, namespace)
        env.run_process(deployment.await_election(), until=60_000)
        workload = SpotifyWorkload(namespace, seed=3)
        clients = [deployment.client() for _ in range(240)]
        collector = MetricsCollector()
        driver = ClosedLoopDriver(env, clients, workload, collector)
        driver.start()
        env.run(until=env.now + 30.0)
        driver.stop()
        stats = deployment.ndb.read_stats
        shown = 0
        for partition in range(deployment.ndb.config.num_partitions):
            dist = stats.partition_distribution(partition)
            total = sum(dist.values())
            if total < 20:
                continue
            table.add_row(
                mode,
                partition,
                100.0 * dist.get(0, 0) / total,
                100.0 * dist.get(1, 0) / total,
                100.0 * dist.get(2, 0) / total,
            )
            shown += 1
            if shown >= num_partitions_shown:
                break
    table.add_note("without Read Backup every committed read is redirected to the primary")
    return table
