"""Common value types shared across layers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "AzId",
    "ANY_AZ",
    "NodeKind",
    "NodeAddress",
    "OpType",
    "MUTATING_OPS",
    "OpResult",
]

# Availability zones are small integers (1-based, 0 = "unset" per the paper's
# locationDomainId convention: id 0 means "no AZ affinity").
AzId = int
ANY_AZ: AzId = 0


class NodeKind(str, enum.Enum):
    """Role of a simulated host (used in addresses and traces)."""

    NDB_DATANODE = "ndbd"
    NDB_MGMT = "ndb_mgmd"
    NAMENODE = "nn"
    DATANODE = "dn"
    CLIENT = "client"
    MDS = "mds"
    OSD = "osd"
    MON = "mon"


@dataclass(frozen=True, order=True)
class NodeAddress:
    """Stable identity of a simulated host.

    ``kind``/``index`` make traces readable (``nn3``, ``ndbd1``); equality
    and hashing use the whole tuple so two layers can never collide.
    """

    kind: NodeKind
    index: int

    def __post_init__(self) -> None:
        # Addresses are hashed on every mailbox/topology/traffic dict hit
        # (hundreds of thousands of times per run); cache the hash once.
        # Same value the generated dataclass __hash__ would produce, so
        # dict iteration order — and with it determinism — is unchanged.
        object.__setattr__(self, "_hash", hash((self.kind, self.index)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.kind.value}{self.index}"


class OpType(str, enum.Enum):
    """File-system operation types used by workloads and metrics.

    The set matches the operations reported for the Spotify workload in the
    HopsFS (FAST'17) paper plus the microbenchmark ops of Fig. 7.
    """

    MKDIR = "mkdir"
    MKDIRS = "mkdirs"
    CREATE_FILE = "createFile"
    READ_FILE = "readFile"
    DELETE_FILE = "deleteFile"
    STAT = "stat"
    LIST_DIR = "listDir"
    RENAME = "rename"
    CHMOD = "chmod"
    ADD_BLOCK = "addBlock"
    ABANDON_BLOCK = "abandonBlock"
    COMPLETE_FILE = "completeFile"
    EXISTS = "exists"
    SET_REPLICATION = "setReplication"
    # Durability barrier for the async group-commit path: waits until the
    # caller's acked horizons settle.  Non-mutating (no namespace writes).
    FSYNC = "fsync"

    @property
    def mutates(self) -> bool:
        return self in MUTATING_OPS


MUTATING_OPS = frozenset(
    {
        OpType.MKDIR,
        OpType.MKDIRS,
        OpType.CREATE_FILE,
        OpType.DELETE_FILE,
        OpType.RENAME,
        OpType.CHMOD,
        OpType.ADD_BLOCK,
        OpType.ABANDON_BLOCK,
        OpType.COMPLETE_FILE,
        OpType.SET_REPLICATION,
    }
)


@dataclass
class OpResult:
    """Outcome of one client operation, recorded by the workload driver."""

    op: OpType
    start_ms: float
    end_ms: float
    ok: bool = True
    retries: int = 0
    error: Optional[str] = None
    served_by: Optional[NodeAddress] = None
    extra: dict = field(default_factory=dict)

    @property
    def latency_ms(self) -> float:
        return self.end_ms - self.start_ms
