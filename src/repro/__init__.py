"""HopsFS-CL reproduction: AZ-aware distributed hierarchical file systems.

Reproduces "Distributed Hierarchical File Systems strike back in the
Cloud" (ICDCS 2020): HopsFS-CL — HopsFS with availability-zone awareness
at the metadata storage (NDB), metadata serving, and block storage layers
— evaluated against vanilla HopsFS and a CephFS baseline on a Spotify-like
metadata workload, all running on a deterministic discrete-event
simulation of a 3-AZ cloud region.

Quick tour:

>>> from repro import build_hopsfs
>>> fs = build_hopsfs(num_namenodes=3, azs=(1, 2, 3), az_aware=True)
>>> client = fs.client(az=2)

See ``examples/quickstart.py`` and DESIGN.md for the full map.
"""

from .cephfs import build_cephfs
from .errors import ReproError
from .hopsfs import HopsFsClient, HopsFsConfig, HopsFsDeployment, build_hopsfs
from .ndb import NdbCluster, NdbConfig
from .types import OpType

__version__ = "1.0.0"

__all__ = [
    "build_cephfs",
    "ReproError",
    "HopsFsClient",
    "HopsFsConfig",
    "HopsFsDeployment",
    "build_hopsfs",
    "NdbCluster",
    "NdbConfig",
    "OpType",
    "__version__",
]
