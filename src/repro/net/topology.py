"""Region / availability-zone topology and the Table I latency matrix.

The paper measured round-trip latencies between VMs in the three AZs of
GCP's ``us-west1`` region (Table I).  We use those numbers directly as the
one-way message delay of the simulated network: what drives every result in
the paper is the *ratio* between intra-AZ and inter-AZ delay, which this
preserves exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import ConfigError
from ..types import ANY_AZ, AzId, NodeAddress

__all__ = [
    "TABLE1_LATENCY_MS",
    "US_WEST1_AZS",
    "Host",
    "Topology",
    "build_us_west1",
]

US_WEST1_AZS = ("us-west1-a", "us-west1-b", "us-west1-c")

# Table I of the paper: measured latencies (ms) between two VMs in GCP
# us-west1, by AZ pair.  Symmetric by construction of the measurement.
TABLE1_LATENCY_MS: dict[tuple[str, str], float] = {
    ("us-west1-a", "us-west1-a"): 0.247,
    ("us-west1-a", "us-west1-b"): 0.360,
    ("us-west1-a", "us-west1-c"): 0.372,
    ("us-west1-b", "us-west1-b"): 0.251,
    ("us-west1-b", "us-west1-c"): 0.399,
    ("us-west1-c", "us-west1-c"): 0.249,
}

# Two colocated processes on the same VM talk over loopback.
SAME_HOST_LATENCY_MS = 0.02


@dataclass
class Host:
    """A simulated machine: one process of interest per host.

    ``cores`` mirrors the paper's 32-vCPU VMs; components carve their thread
    pools out of this budget.
    """

    address: NodeAddress
    az: AzId
    cores: int = 32
    colocated_with: Optional[NodeAddress] = None


@dataclass
class Topology:
    """Set of AZs in one region plus the hosts placed in them."""

    region: str = "us-west1"
    az_names: tuple[str, ...] = US_WEST1_AZS
    latency_ms: dict[tuple[str, str], float] = field(
        default_factory=lambda: dict(TABLE1_LATENCY_MS)
    )
    hosts: dict[NodeAddress, Host] = field(default_factory=dict)
    # Memo caches for the per-message lookups (latency/az_of/same_vm/
    # proximity_rank).  Placement is immutable after setup except through
    # add_host(), which invalidates them.  Pure caches: never iterated,
    # so they cannot affect determinism.
    _az_cache: dict = field(default_factory=dict, repr=False, compare=False)
    _latency_cache: dict = field(default_factory=dict, repr=False, compare=False)
    _same_vm_cache: dict = field(default_factory=dict, repr=False, compare=False)
    _rank_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.az_names:
            raise ConfigError("topology needs at least one AZ")

    # AZ ids are 1-based; 0 (ANY_AZ) means "unset".
    @property
    def num_azs(self) -> int:
        return len(self.az_names)

    def az_name(self, az: AzId) -> str:
        if not 1 <= az <= self.num_azs:
            raise ConfigError(f"AZ id {az} out of range 1..{self.num_azs}")
        return self.az_names[az - 1]

    def add_host(
        self,
        address: NodeAddress,
        az: AzId,
        cores: int = 32,
        colocated_with: Optional[NodeAddress] = None,
    ) -> Host:
        """Place a host in ``az``; optionally colocate it on another host's VM."""
        if address in self.hosts:
            raise ConfigError(f"host {address} already registered")
        if az == ANY_AZ or az > self.num_azs:
            raise ConfigError(f"host {address} must be placed in an AZ 1..{self.num_azs}")
        if colocated_with is not None and colocated_with not in self.hosts:
            raise ConfigError(f"colocation target {colocated_with} unknown")
        host = Host(address=address, az=az, cores=cores, colocated_with=colocated_with)
        self.hosts[address] = host
        self._az_cache.clear()
        self._latency_cache.clear()
        self._same_vm_cache.clear()
        self._rank_cache.clear()
        return host

    def host(self, address: NodeAddress) -> Host:
        try:
            return self.hosts[address]
        except KeyError:
            raise ConfigError(f"unknown host {address}") from None

    def az_of(self, address: NodeAddress) -> AzId:
        try:
            return self._az_cache[address]
        except KeyError:
            az = self.host(address).az
            self._az_cache[address] = az
            return az

    def same_vm(self, a: NodeAddress, b: NodeAddress) -> bool:
        key = (a, b)
        try:
            return self._same_vm_cache[key]
        except KeyError:
            pass
        result = self._same_vm_uncached(a, b)
        self._same_vm_cache[key] = result
        return result

    def _same_vm_uncached(self, a: NodeAddress, b: NodeAddress) -> bool:
        if a == b:
            return True
        ha, hb = self.host(a), self.host(b)
        return ha.colocated_with == b or hb.colocated_with == a or (
            ha.colocated_with is not None and ha.colocated_with == hb.colocated_with
        )

    def az_pair_latency(self, az_a: AzId, az_b: AzId) -> float:
        name_a, name_b = self.az_name(az_a), self.az_name(az_b)
        key = (name_a, name_b) if (name_a, name_b) in self.latency_ms else (name_b, name_a)
        try:
            return self.latency_ms[key]
        except KeyError:
            raise ConfigError(f"no latency entry for AZ pair {name_a}/{name_b}") from None

    def latency(self, src: NodeAddress, dst: NodeAddress) -> float:
        """One-way delay between two hosts, per Table I."""
        key = (src, dst)
        try:
            return self._latency_cache[key]
        except KeyError:
            pass
        if self.same_vm(src, dst):
            value = SAME_HOST_LATENCY_MS
        else:
            value = self.az_pair_latency(self.az_of(src), self.az_of(dst))
        self._latency_cache[key] = value
        return value

    def hosts_in_az(self, az: AzId) -> list[Host]:
        return [h for h in self.hosts.values() if h.az == az]

    def proximity_rank(self, a: NodeAddress, b: NodeAddress) -> int:
        """The paper's proximity score, ascending (Section IV-A4).

        0: same host and same AZ; 1: different hosts, same AZ;
        2: different hosts, different AZs.
        """
        key = (a, b)
        try:
            return self._rank_cache[key]
        except KeyError:
            pass
        if self.same_vm(a, b):
            rank = 0
        elif self.az_of(a) == self.az_of(b):
            rank = 1
        else:
            rank = 2
        self._rank_cache[key] = rank
        return rank


def build_us_west1(extra_azs: Iterable[str] = ()) -> Topology:
    """The region used throughout the paper's evaluation."""
    names = US_WEST1_AZS + tuple(extra_azs)
    latency = dict(TABLE1_LATENCY_MS)
    for extra in extra_azs:
        # Synthetic AZs (used to host an external arbitrator) get the mean
        # inter-AZ latency to everything else.
        latency[(extra, extra)] = 0.25
        for name in names:
            if name != extra and (extra, name) not in latency and (name, extra) not in latency:
                latency[(extra, name)] = 0.38
    return Topology(region="us-west1", az_names=names, latency_ms=latency)
