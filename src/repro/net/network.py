"""Message-passing network with AZ latencies, partitions and RPC.

Messages between hosts are delayed by the Table I latency for the AZ pair
(see :mod:`repro.net.topology`), accounted in a :class:`TrafficMatrix`, and
dropped when the destination is down or partitioned away.  RPCs fail fast
with :class:`HostUnreachableError` when their peer dies or is cut off —
modelling the TCP connection reset a real client would observe.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..errors import HostUnreachableError, NetworkError, RpcTimeoutError
from ..sim import Environment, Event, Store
from ..types import AzId, NodeAddress
from .topology import Topology
from .traffic import TrafficMatrix

__all__ = ["Message", "Network", "DEFAULT_MESSAGE_BYTES"]

DEFAULT_MESSAGE_BYTES = 256


@dataclass
class Message:
    """One network message.  ``rpc_id`` links requests to replies."""

    src: NodeAddress
    dst: NodeAddress
    kind: str
    payload: Any = None
    size: int = DEFAULT_MESSAGE_BYTES
    rpc_id: Optional[int] = None
    is_reply: bool = False
    ok: bool = True
    send_time: float = 0.0
    extra: dict = field(default_factory=dict)


class Network:
    """The simulated region network."""

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        jitter_frac: float = 0.0,
        rng=None,
        az_link_bandwidth_bytes_per_ms: Optional[float] = None,
    ):
        self.env = env
        self.topology = topology
        self.traffic = TrafficMatrix()
        self.jitter_frac = jitter_frac
        self.rng = rng
        # Finite inter-AZ fabric capacity: every cross-AZ message queues on
        # the shared regional interconnect.  Intra-AZ traffic is uncapped —
        # the paper's Section III-C2 asymmetry (inter-AZ bandwidth is the
        # scarce, billed resource; "network I/O becomes a bottleneck" at
        # scale, Section V-B1).  None disables the cap.
        self.az_link_bandwidth = az_link_bandwidth_bytes_per_ms
        self._fabric_drain_at = 0.0
        self._mailboxes: dict[NodeAddress, Store] = {}
        self._down: set[NodeAddress] = set()
        # Each partition entry is a pair of AZ-id frozensets that cannot talk.
        self._partitions: list[tuple[frozenset[AzId], frozenset[AzId]]] = []
        self._rpc_ids = itertools.count(1)
        # rpc_id -> (completion event, caller address, peer address)
        self._pending: dict[int, tuple[Event, NodeAddress, NodeAddress]] = {}
        self.dropped_messages = 0
        # Replies that arrived after their RPC already timed out / failed.
        self.late_replies = 0
        # Fault injection: extra one-way latency per (src AZ, dst AZ) pair.
        # ``None`` (the default) keeps the hot path to a single attribute
        # load + identity check in ``_latency``.
        self._degraded: Optional[dict[tuple[AzId, AzId], float]] = None
        # Same-instant delivery coalescing (see send()): the deferred heap
        # entry of the most recent delivery, the (time, seq) at which it
        # was scheduled, and whether it already carries a message list.
        self._batch_time = -1.0
        self._batch_seq = -1
        self._batch_entry = None
        self._batch_is_list = False

    # -- membership ---------------------------------------------------------
    def register(self, address: NodeAddress) -> Store:
        """Create (or return) the mailbox for ``address``."""
        self.topology.host(address)  # validates placement
        mailbox = self._mailboxes.get(address)
        if mailbox is None:
            mailbox = Store(self.env, name=f"mbox:{address}")
            self._mailboxes[address] = mailbox
        return mailbox

    def mailbox(self, address: NodeAddress) -> Store:
        try:
            return self._mailboxes[address]
        except KeyError:
            raise NetworkError(f"{address} has no mailbox (not registered)") from None

    def is_up(self, address: NodeAddress) -> bool:
        return address not in self._down

    def set_down(self, address: NodeAddress) -> None:
        """Crash a host: lose its queued mail, fail RPCs awaiting it."""
        if address in self._down:
            return
        self._down.add(address)
        mailbox = self._mailboxes.get(address)
        if mailbox is not None:
            while len(mailbox):
                mailbox.get()  # drain (messages are lost)
        self._fail_pending(lambda src, dst: dst == address)

    def set_up(self, address: NodeAddress) -> None:
        self._down.discard(address)

    # -- partitions -----------------------------------------------------------
    def partition_azs(self, group_a: Iterable[AzId], group_b: Iterable[AzId]) -> None:
        """Cut connectivity between two groups of AZs (split brain)."""
        pair = (frozenset(group_a), frozenset(group_b))
        if pair[0] & pair[1]:
            raise NetworkError("partition groups overlap")
        self._partitions.append(pair)
        # In-flight RPCs across the cut observe a connection reset.
        self._fail_pending(lambda src, dst: not self.reachable(src, dst))

    def heal_partitions(self) -> None:
        self._partitions.clear()

    # -- link degradation -------------------------------------------------------
    def degrade_link(self, az_a: AzId, az_b: AzId, extra_ms: float) -> None:
        """Add ``extra_ms`` of one-way latency between two AZs (both ways).

        Models a degraded inter-AZ link (congestion, a flapping peering
        session) without cutting connectivity.  Replaces any previous
        degradation for the pair.
        """
        if extra_ms < 0:
            raise NetworkError(f"negative link degradation {extra_ms!r}")
        if self._degraded is None:
            self._degraded = {}
        self._degraded[(az_a, az_b)] = extra_ms
        self._degraded[(az_b, az_a)] = extra_ms

    def restore_links(self) -> None:
        """Remove all link degradations."""
        self._degraded = None

    def reachable(self, src: NodeAddress, dst: NodeAddress) -> bool:
        if src in self._down or dst in self._down:
            return False
        if not self._partitions:
            return True
        az_src, az_dst = self.topology.az_of(src), self.topology.az_of(dst)
        for group_a, group_b in self._partitions:
            if (az_src in group_a and az_dst in group_b) or (
                az_src in group_b and az_dst in group_a
            ):
                return False
        return True

    # -- messaging ------------------------------------------------------------
    def _latency(self, src: NodeAddress, dst: NodeAddress) -> float:
        base = self.topology.latency(src, dst)
        if self._degraded is not None:
            extra = self._degraded.get(
                (self.topology.az_of(src), self.topology.az_of(dst))
            )
            if extra:
                base += extra
        if self.jitter_frac and self.rng is not None:
            base *= 1.0 + self.rng.uniform(-self.jitter_frac, self.jitter_frac)
        return base

    def _link_delay(self, message: Message) -> float:
        """Queueing delay on the finite-bandwidth inter-AZ fabric, if any."""
        if self.az_link_bandwidth is None:
            return 0.0
        src_az = self.topology.az_of(message.src)
        dst_az = self.topology.az_of(message.dst)
        if src_az == dst_az:
            return 0.0
        duration = message.size / self.az_link_bandwidth
        start = max(self.env.now, self._fabric_drain_at)
        self._fabric_drain_at = start + duration
        return self._fabric_drain_at - self.env.now

    def send(self, message: Message) -> None:
        """Fire-and-forget delivery after the AZ-pair latency.

        Consecutive sends resolving to the *same* delivery instant with no
        other scheduling in between are coalesced onto one deferred heap
        entry, so a fan-out RPC round costs O(1) kernel events instead of
        O(messages).  This cannot reorder anything: coalescing requires the
        batched entry's sequence numbers to be consecutive (no entry can
        sort between them), latencies are strictly positive (the entry has
        not been dispatched yet), and messages fire in append order.  A
        sequence number is still consumed per message so traces line up
        with the unbatched schedule; with ``env.trace`` active, batching is
        disabled outright so every delivery is individually recorded.
        """
        env = self.env
        message.send_time = now = env._now
        if message.src in self._down:
            self.dropped_messages += 1
            return
        delay = self._latency(message.src, message.dst) + self._link_delay(message)
        when = now + delay
        if when == self._batch_time and env._seq == self._batch_seq and env.trace is None:
            entry = self._batch_entry
            if self._batch_is_list:
                entry.arg.append(message)
            else:
                entry.arg = [entry.arg, message]
                entry.fn = self._deliver_batch
                self._batch_is_list = True
            env._seq += 1  # parity with one-entry-per-message scheduling
            self._batch_seq = env._seq
        else:
            self._batch_entry = env.schedule_at(when, self._deliver, message)
            self._batch_time = when
            self._batch_seq = env._seq
            self._batch_is_list = False

    def _deliver_batch(self, messages: list) -> None:
        deliver = self._deliver
        for message in messages:
            deliver(message)

    def _deliver(self, message: Message) -> None:
        if not self.reachable(message.src, message.dst):
            self.dropped_messages += 1
            if message.rpc_id is not None and not message.is_reply:
                self._fail_rpc(message.rpc_id)
            return
        self.traffic.record(
            message.src,
            self.topology.az_of(message.src),
            message.dst,
            self.topology.az_of(message.dst),
            message.size,
        )
        if message.is_reply:
            self._complete_rpc(message)
            return
        mailbox = self._mailboxes.get(message.dst)
        if mailbox is None:
            self.dropped_messages += 1
            if message.rpc_id is not None:
                self._fail_rpc(message.rpc_id)
            return
        mailbox.put(message)

    # -- RPC --------------------------------------------------------------------
    def call(
        self,
        src: NodeAddress,
        dst: NodeAddress,
        kind: str,
        payload: Any = None,
        size: int = DEFAULT_MESSAGE_BYTES,
        parent_span=None,
        timeout_ms: Optional[float] = None,
        extra: Optional[dict] = None,
    ) -> Event:
        """Send a request; the returned event triggers with the reply payload.

        Fails with :class:`HostUnreachableError` if the peer is (or becomes)
        unreachable, or with the remote exception if the handler replied
        with ``ok=False``.

        ``timeout_ms`` arms a DES timer that fails the call with
        :class:`RpcTimeoutError` if no reply arrived in time; a reply that
        shows up later finds the RPC gone from the pending table and is
        discarded deterministically (counted in ``late_replies``).  The
        timer always consumes exactly one sequence number at schedule time
        and fires as a no-op when the call already completed, so traced
        and untraced runs replay the same schedule.

        ``extra`` entries are copied into ``Message.extra`` (deadlines,
        retry ids).  ``parent_span`` links the RPC into an active trace;
        the request carries the span id in ``Message.extra`` so the remote
        handler can parent its own spans under this call.
        """
        rpc_id = next(self._rpc_ids)
        done = self.env.event()
        self._pending[rpc_id] = (done, src, dst)
        message = Message(src=src, dst=dst, kind=kind, payload=payload, size=size, rpc_id=rpc_id)
        if extra:
            message.extra.update(extra)
        obs = self.env.obs
        if obs is not None:
            self._trace_call(obs, message, done, parent_span)
        self.send(message)
        if timeout_ms is not None:
            self.env.schedule_after(timeout_ms, self._rpc_timeout, rpc_id)
        return done

    def _rpc_timeout(self, rpc_id: int) -> None:
        entry = self._pending.pop(rpc_id, None)
        if entry is None:
            return  # reply already arrived (timer fires as a no-op)
        done, _src, peer = entry
        if not done.triggered:
            done.fail(RpcTimeoutError(f"rpc to {peer} timed out"))

    def _trace_call(self, obs, message: Message, done: Event, parent_span) -> None:
        """Open an ``rpc.<kind>`` span closed when the reply event fires.

        Recording only: no kernel events are scheduled and no sequence
        numbers or RNG draws are consumed, so traced and untraced runs
        replay the same schedule (the finish callback rides the reply
        event's existing trigger).
        """
        src_az = self.topology.az_of(message.src)
        dst_az = self.topology.az_of(message.dst)
        span = obs.tracer.start(
            f"rpc.{message.kind}",
            parent=parent_span,
            host=str(message.src),
            dst=str(message.dst),
            src_az=src_az,
            dst_az=dst_az,
            cross_az=src_az != dst_az,
            size=message.size,
        )
        message.extra["span_id"] = span.span_id
        link = "cross_az" if src_az != dst_az else "intra_az"
        obs.registry.counter(f"net.rpc.{link}").inc()
        obs.registry.counter(f"net.rpc.{link}_bytes").inc(message.size)
        ts = obs.timeseries
        if ts is not None:
            now = self.env.now
            ts.inc(f"net.rpc.{link}", now)
            ts.inc(f"net.rpc.{link}_bytes", now, message.size)
        tracer = obs.tracer

        def _finish(event, _tracer=tracer, _span=span):
            _tracer.finish(_span, ok=event._ok)

        done.add_callback(_finish)

    def reply(
        self,
        request: Message,
        payload: Any = None,
        ok: bool = True,
        size: int = DEFAULT_MESSAGE_BYTES,
    ) -> None:
        """Send the reply for ``request`` back to its caller."""
        if request.rpc_id is None:
            raise NetworkError(f"message {request.kind!r} is not an RPC request")
        self.send(
            Message(
                src=request.dst,
                dst=request.src,
                kind=request.kind,
                payload=payload,
                size=size,
                rpc_id=request.rpc_id,
                is_reply=True,
                ok=ok,
            )
        )

    def _complete_rpc(self, reply: Message) -> None:
        entry = self._pending.pop(reply.rpc_id, None)
        if entry is None:
            # Caller gave up (timeout) / already failed: deterministic discard.
            self.late_replies += 1
            return
        done, _src, _peer = entry
        if done.triggered:
            return
        if reply.ok:
            done.succeed(reply.payload)
        else:
            exc = reply.payload
            if not isinstance(exc, BaseException):
                exc = NetworkError(f"remote error: {exc!r}")
            done.fail(exc)

    def _fail_rpc(self, rpc_id: int) -> None:
        entry = self._pending.pop(rpc_id, None)
        if entry is None:
            return
        done, _src, peer = entry
        if not done.triggered:
            done.fail(HostUnreachableError(f"{peer} unreachable"))

    def _fail_pending(self, severed) -> None:
        doomed = [
            rpc_id
            for rpc_id, (_event, src, dst) in self._pending.items()
            if severed(src, dst)
        ]
        for rpc_id in doomed:
            self._fail_rpc(rpc_id)
