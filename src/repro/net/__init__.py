"""AZ topology, latency model (Table I), message passing and traffic accounting."""

from .network import DEFAULT_MESSAGE_BYTES, Message, Network
from .topology import (
    SAME_HOST_LATENCY_MS,
    TABLE1_LATENCY_MS,
    US_WEST1_AZS,
    Host,
    Topology,
    build_us_west1,
)
from .traffic import NodeTraffic, TrafficMatrix

__all__ = [
    "DEFAULT_MESSAGE_BYTES",
    "Message",
    "Network",
    "SAME_HOST_LATENCY_MS",
    "TABLE1_LATENCY_MS",
    "US_WEST1_AZS",
    "Host",
    "Topology",
    "build_us_west1",
    "NodeTraffic",
    "TrafficMatrix",
]
