"""Traffic accounting: per-AZ-pair and per-node byte counters.

Figures 12 and 13 of the paper report average network read/write per
metadata-storage node and per metadata server; Section V-E's argument for
Read Backup is about minimizing cross-AZ bytes.  Every message the network
delivers is accounted here.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..types import AzId, NodeAddress

__all__ = ["TrafficMatrix", "NodeTraffic"]


@dataclass
class NodeTraffic:
    """Per-node NIC counters (bytes)."""

    sent: int = 0
    received: int = 0


@dataclass
class TrafficMatrix:
    """Aggregated byte counters for one simulation run."""

    az_pair_bytes: dict[tuple[AzId, AzId], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    node: dict[NodeAddress, NodeTraffic] = field(
        default_factory=lambda: defaultdict(NodeTraffic)
    )
    messages: int = 0

    def record(self, src: NodeAddress, src_az: AzId, dst: NodeAddress, dst_az: AzId, nbytes: int) -> None:
        self.az_pair_bytes[(src_az, dst_az)] += nbytes
        self.node[src].sent += nbytes
        self.node[dst].received += nbytes
        self.messages += 1

    # -- aggregate views ----------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(self.az_pair_bytes.values())

    @property
    def cross_az_bytes(self) -> int:
        return sum(v for (a, b), v in self.az_pair_bytes.items() if a != b)

    @property
    def intra_az_bytes(self) -> int:
        return sum(v for (a, b), v in self.az_pair_bytes.items() if a == b)

    def cross_az_fraction(self) -> float:
        total = self.total_bytes
        return self.cross_az_bytes / total if total else 0.0

    def node_bytes(self, address: NodeAddress) -> NodeTraffic:
        return self.node[address]

    def snapshot(self) -> "TrafficSnapshot":
        """Freeze current counters (window start for utilization figures)."""
        return TrafficSnapshot(
            az_pair_bytes=dict(self.az_pair_bytes),
            node={addr: NodeTraffic(t.sent, t.received) for addr, t in self.node.items()},
            messages=self.messages,
        )

    def delta_since(self, snap: "TrafficSnapshot") -> "TrafficMatrix":
        """Counters accumulated since ``snap`` was taken."""
        delta = TrafficMatrix()
        for key, value in self.az_pair_bytes.items():
            diff = value - snap.az_pair_bytes.get(key, 0)
            if diff:
                delta.az_pair_bytes[key] = diff
        for addr, tr in self.node.items():
            base = snap.node.get(addr, NodeTraffic())
            sent, received = tr.sent - base.sent, tr.received - base.received
            if sent or received:
                delta.node[addr] = NodeTraffic(sent, received)
        delta.messages = self.messages - snap.messages
        return delta


@dataclass
class TrafficSnapshot:
    az_pair_bytes: dict[tuple[AzId, AzId], int]
    node: dict[NodeAddress, NodeTraffic]
    messages: int
