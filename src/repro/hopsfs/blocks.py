"""Block management: placement policies and re-replication.

Section IV-C of the paper: the rack-aware placement policy is re-targeted
at AZs (racks == AZs), guaranteeing that block replicas span AZs so the
loss of an AZ cannot lose data.  The leader NN monitors block-storage
datanode heartbeats and triggers re-replication when one fails.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import PlacementError
from ..types import AzId, NodeAddress

__all__ = ["PlacementPolicy", "choose_targets", "BlockManager", "DnInfo"]


class PlacementPolicy(str, enum.Enum):
    """How block replicas are spread over block-storage datanodes."""

    DEFAULT = "default"  # HDFS default, topology-unaware at AZ level
    AZ_AWARE = "az_aware"  # rack-aware policy with AZs as the racks


def choose_targets(
    dn_azs: dict[NodeAddress, AzId],
    policy: PlacementPolicy,
    writer_az: AzId,
    replication: int,
    rng,
    exclude: Sequence[NodeAddress] = (),
) -> tuple[NodeAddress, ...]:
    """Pick ``replication`` distinct datanodes for a new block.

    AZ-aware mode places the first replica near the writer and spreads the
    rest so that as many AZs as possible hold a replica (at least two AZs
    whenever the cluster spans more than one).
    """
    candidates = [dn for dn in sorted(dn_azs) if dn not in set(exclude)]
    if len(candidates) < replication:
        raise PlacementError(
            f"need {replication} datanodes, only {len(candidates)} available"
        )
    if policy is PlacementPolicy.DEFAULT:
        return tuple(rng.sample(candidates, replication))

    chosen: list[NodeAddress] = []
    used_azs: set[AzId] = set()
    # First replica: writer-local AZ if possible (cheap pipeline start).
    local = [dn for dn in candidates if dn_azs[dn] == writer_az]
    first = rng.choice(local) if local else rng.choice(candidates)
    chosen.append(first)
    used_azs.add(dn_azs[first])
    # Subsequent replicas: prefer AZs not yet holding one.
    while len(chosen) < replication:
        remaining = [dn for dn in candidates if dn not in chosen]
        fresh_az = [dn for dn in remaining if dn_azs[dn] not in used_azs]
        pick = rng.choice(fresh_az) if fresh_az else rng.choice(remaining)
        chosen.append(pick)
        used_azs.add(dn_azs[pick])
    return tuple(chosen)


@dataclass
class DnInfo:
    """A namenode's view of one block-storage datanode."""

    address: NodeAddress
    az: AzId
    last_heartbeat_ms: float
    alive: bool = True
    block_ids: set = field(default_factory=set)


class BlockManager:
    """Per-NN block map + placement; the leader drives re-replication."""

    def __init__(self, namenode, policy: PlacementPolicy):
        self.nn = namenode
        self.policy = policy
        self.dns: dict[NodeAddress, DnInfo] = {}
        # block_id -> set of datanodes believed to hold a replica
        self.block_locations: dict[int, set[NodeAddress]] = {}
        # block_id -> inode id (the blocks table partition key)
        self.block_inode: dict[int, int] = {}
        self.rereplications = 0
        self._rng = namenode.rng

    # -- heartbeats / block reports ----------------------------------------
    def on_heartbeat(self, address: NodeAddress, az: AzId, block_ids) -> None:
        info = self.dns.get(address)
        if info is None:
            info = DnInfo(address=address, az=az, last_heartbeat_ms=self.nn.env.now)
            self.dns[address] = info
        info.alive = True
        info.last_heartbeat_ms = self.nn.env.now
        info.block_ids = set(block_ids)
        for block_id in block_ids:
            self.block_locations.setdefault(block_id, set()).add(address)

    def on_block_received(self, block_id: int, address: NodeAddress) -> None:
        self.block_locations.setdefault(block_id, set()).add(address)
        info = self.dns.get(address)
        if info is not None:
            info.block_ids.add(block_id)

    def live_dns(self) -> dict[NodeAddress, AzId]:
        return {a: i.az for a, i in self.dns.items() if i.alive}

    # -- placement ------------------------------------------------------------
    def place(self, client_hint: object, replication: int, exclude=()) -> tuple:
        """Placement callback used by the ``addBlock`` operation."""
        writer_az = 0
        if isinstance(client_hint, NodeAddress):
            try:
                writer_az = self.nn.network.topology.az_of(client_hint)
            except Exception:
                writer_az = 0
        elif isinstance(client_hint, int):
            writer_az = client_hint
        targets = choose_targets(
            self.live_dns(), self.policy, writer_az, replication, self._rng, exclude
        )
        return targets

    def record_new_block(self, block_id: int, locations) -> None:
        self.block_locations[block_id] = set(locations)

    def pick_rereplication_target(
        self, candidates: Sequence[NodeAddress], survivors: Sequence[NodeAddress]
    ):
        """Choose where a lost replica is rebuilt.

        Under the AZ-aware policy the replacement must restore AZ coverage:
        prefer a datanode in an AZ no surviving replica lives in, so an AZ
        outage followed by re-replication again leaves every AZ with a copy
        (Section IV-C).  The default policy keeps HDFS behaviour (any node).
        """
        if not candidates:
            return None
        if self.policy is PlacementPolicy.AZ_AWARE:
            covered = {
                self.dns[dn].az for dn in survivors if dn in self.dns
            }
            fresh = [
                dn
                for dn in candidates
                if dn in self.dns and self.dns[dn].az not in covered
            ]
            if fresh:
                return self._rng.choice(fresh)
        return self._rng.choice(list(candidates))

    # -- failure handling ----------------------------------------------------
    def check_expired(self, deadline_ms: float) -> list[NodeAddress]:
        """Mark DNs silent for longer than ``deadline_ms`` as dead."""
        now = self.nn.env.now
        newly_dead = []
        for info in self.dns.values():
            if info.alive and now - info.last_heartbeat_ms > deadline_ms:
                info.alive = False
                newly_dead.append(info.address)
        return newly_dead

    def under_replicated_on(self, dead: NodeAddress) -> list[tuple[int, set]]:
        """Blocks that lost a replica on ``dead``: (block_id, survivors)."""
        result = []
        info = self.dns.get(dead)
        if info is None:
            return result
        for block_id in sorted(info.block_ids):
            holders = self.block_locations.get(block_id, set())
            holders.discard(dead)
            result.append((block_id, set(holders)))
        info.block_ids.clear()
        return result
