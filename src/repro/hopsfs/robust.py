"""Gray-failure resilience primitives for the request path.

The paper's availability story (Section V-D) assumes fail-stop nodes; a
*gray* failure — a degraded link, an overloaded server — makes a request
slow instead of dead.  This module holds the client/server knobs that turn
"slow" back into a bounded, retryable event:

- :class:`Deadline` — an absolute per-op budget that propagates in
  ``Message.extra`` and is enforced at every hop (NN dequeue, NDB retry
  loop), so no hop starts work the op can no longer use.
- :class:`RetryPolicy` — exponential backoff with deterministic jitter
  drawn from a named RNG stream, plus a retry budget.
- :class:`CircuitBreaker` — per-NN client-side breaker that routes around
  persistently slow or tripped metadata servers.
- :class:`RetryCache` — the namenode's in-memory LRU over replayed
  mutation results (the durable copy lives in the ``retry_cache`` NDB
  table, written in the same transaction as the mutation itself, so
  retried mutations are exactly-once even across NN crashes).
- :class:`RobustConfig` — the opt-in bundle.  ``None`` (the default)
  keeps the legacy fail-stop request path bit-identical, which is what
  the golden-schedule determinism tests pin.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError

__all__ = ["Deadline", "RetryPolicy", "CircuitBreaker", "RetryCache", "RobustConfig"]


@dataclass(frozen=True)
class Deadline:
    """Absolute per-operation deadline (sim ms)."""

    expires_ms: float

    def remaining(self, now: float) -> float:
        return self.expires_ms - now

    def expired(self, now: float) -> bool:
        return now >= self.expires_ms


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter and a bounded retry budget."""

    max_retries: int = 8
    backoff_base_ms: float = 2.0
    backoff_max_ms: float = 40.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("retry budget cannot be negative")
        if self.backoff_base_ms <= 0 or self.backoff_max_ms <= 0:
            raise ConfigError("backoff bounds must be positive")

    def backoff_ms(self, attempt: int, rng=None) -> float:
        """Delay before retry ``attempt`` (1-based); jitter in [0.5x, 1.5x)."""
        base = min(self.backoff_max_ms, self.backoff_base_ms * (2 ** (attempt - 1)))
        if rng is None:
            return base
        return base * (0.5 + rng.random())


class CircuitBreaker:
    """Consecutive-failure breaker for one metadata server.

    Opens after ``threshold`` consecutive failures and stays open for
    ``reset_ms``; expiry is judged lazily against ``env.now`` (no timer
    events, so the breaker is schedule-free).  After the window the
    breaker is half-open: the next attempt either closes it (success) or
    re-opens it after another ``threshold`` failures.
    """

    __slots__ = ("threshold", "reset_ms", "failures", "open_until", "trips")

    def __init__(self, threshold: int, reset_ms: float):
        self.threshold = threshold
        self.reset_ms = reset_ms
        self.failures = 0
        self.open_until = float("-inf")
        self.trips = 0

    def record_failure(self, now: float) -> bool:
        """Record one failure; returns True if this tripped the breaker."""
        self.failures += 1
        if self.failures >= self.threshold:
            self.failures = 0
            self.open_until = now + self.reset_ms
            self.trips += 1
            return True
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.open_until = float("-inf")

    def is_open(self, now: float) -> bool:
        return now < self.open_until


_MISS = object()


class RetryCache:
    """LRU of ``(client_id, op_seq) -> recorded result`` on one namenode.

    Fast path only: the authoritative copy is the ``retry_cache`` NDB row
    committed atomically with the mutation, which any *other* NN finds
    when the client fails over after a post-commit crash.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigError("retry cache capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key) -> tuple[bool, object]:
        """Returns ``(hit, result)``; results may legitimately be None."""
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return False, None
        self._entries.move_to_end(key)
        self.hits += 1
        return True, value

    def put(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


@dataclass(frozen=True)
class RobustConfig:
    """Opt-in gray-failure hardening for the whole request path.

    ``None`` in :class:`~repro.hopsfs.config.HopsFsConfig` (the default)
    disables everything — no timers, no extra RNG draws, no admission
    control — so default deployments replay their pinned golden schedules
    bit-for-bit.  Chaos targets and dedicated tests turn it on.
    """

    # Per-RPC timeout; also the "one hop" slack the deadline invariant
    # allows (the last armed timer may fire up to one timeout late).
    op_timeout_ms: float = 40.0
    # Total per-op budget, client-stamped, enforced at every hop.
    deadline_ms: float = 240.0
    retry: RetryPolicy = RetryPolicy()
    # Read/stat-class ops fire a second request to a different NN after
    # this delay and take the first reply.  None disables hedging.
    hedge_delay_ms: Optional[float] = 15.0
    # Namenode admission control: in-flight fs_ops beyond this are shed
    # with a retryable ServerBusyError before touching the handler pool.
    nn_max_inflight: int = 96
    nn_retry_cache_size: int = 4096
    breaker_threshold: int = 3
    breaker_reset_ms: float = 120.0

    def __post_init__(self) -> None:
        if self.op_timeout_ms <= 0:
            raise ConfigError("op timeout must be positive")
        if self.deadline_ms < self.op_timeout_ms:
            raise ConfigError("deadline cannot be shorter than one RPC timeout")
        if self.hedge_delay_ms is not None and self.hedge_delay_ms <= 0:
            raise ConfigError("hedge delay must be positive (or None to disable)")
        if self.nn_max_inflight < 1:
            raise ConfigError("admission control needs room for at least one op")
