"""The stateless metadata server (NN).

Namenodes hold no namespace state: every operation is a transaction
against NDB.  The granular locking scheme lets the handler pool use all
cores of the VM (Fig. 10b).  Each NN participates in leader election; the
leader additionally monitors block-storage datanodes and drives
re-replication (Section IV-C2).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..errors import (
    DeadlineExceededError,
    FsError,
    HostUnreachableError,
    NdbError,
    SafeModeError,
    ServerBusyError,
    ServerDrainingError,
    TransactionAbortedError,
)
from ..ndb.client import run_transaction
from ..ndb.schema import LockMode
from ..net.network import Message, Network
from ..sim import Environment
from ..sim.resources import CorePool
from ..types import AzId, NodeAddress, OpType
from . import ops
from .blocks import BlockManager, PlacementPolicy
from .config import HopsFsConfig
from .datanode import CopyBlockReq
from .dircache import DirCache
from .groupcommit import GroupCommitter, groupable, op_paths
from .leader import LeaderElectionService
from .listcache import ListingCache
from .metadata import (
    BLOCKS_TABLE,
    INODES_TABLE,
    RETRY_TABLE,
    ROOT_INODE_ID,
    IdGenerator,
    RetryRow,
)
from .pathlock import normalize_path, split_path
from .robust import RetryCache

__all__ = ["Namenode"]


class _Replay:
    """Transaction-body sentinel: a retried mutation's recorded result."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class _FillRecorder:
    """Per-op dir-cache shim that records rows for a listing-cache fill.

    ``get``/``put``/``invalidate`` delegate to the real dir cache, so the
    listing-cache miss path resolves at exactly the legacy cost.  Only the
    rows the transaction *freshly read* (those it ``put``) are recorded
    and imported into the listing cache — a row served from the dir cache
    may be up to its TTL stale, which is fine for transactional resolution
    (row locks re-verify the target) but must never become a
    changelog-audited listing-cache entry.
    """

    __slots__ = ("_dir_cache", "rows")

    def __init__(self, dir_cache):
        self._dir_cache = dir_cache
        self.rows = []

    def get(self, parent_id, name):
        return self._dir_cache.get(parent_id, name)

    def put(self, row):
        self._dir_cache.put(row)
        self.rows.append(row)

    def invalidate(self, parent_id, name):
        self._dir_cache.invalidate(parent_id, name)


class Namenode:
    """One metadata server process."""

    # OpType -> (ops function, path argument used for the partition hint)
    _OPS = {
        OpType.MKDIR: ops.mkdir,
        OpType.MKDIRS: ops.mkdirs,
        OpType.CREATE_FILE: ops.create_file,
        OpType.READ_FILE: ops.read_file,
        OpType.DELETE_FILE: ops.delete,
        OpType.STAT: ops.stat,
        OpType.EXISTS: ops.exists,
        OpType.LIST_DIR: ops.list_dir,
        OpType.RENAME: ops.rename,
        OpType.CHMOD: ops.chmod,
        OpType.SET_REPLICATION: ops.set_replication,
        OpType.ADD_BLOCK: ops.add_block,
        OpType.ABANDON_BLOCK: ops.abandon_block,
        OpType.COMPLETE_FILE: ops.complete_file,
    }

    # Reads the pre-materialized listing cache may serve from NN memory.
    # READ_FILE qualifies only for small (inlined) files — block reads
    # still need the block rows and stay transactional.
    _CACHE_OPS = frozenset(
        {OpType.STAT, OpType.EXISTS, OpType.LIST_DIR, OpType.READ_FILE}
    )

    def __init__(
        self,
        env: Environment,
        network: Network,
        ndb_cluster,
        config: HopsFsConfig,
        addr: NodeAddress,
        az: AzId,
        nn_id: int,
        ids: IdGenerator,
        placement_policy: PlacementPolicy = PlacementPolicy.AZ_AWARE,
    ):
        self.env = env
        self.network = network
        self.ndb = ndb_cluster
        self.config = config
        self.addr = addr
        self.az = az
        self.nn_id = nn_id
        self.running = False
        self.mailbox = network.register(addr)
        self.handler_pool = CorePool(env, config.nn_cores, name=f"{addr}:handlers")
        self.api = ndb_cluster.api(addr)
        self.rng = ndb_cluster.rng.stream(f"nn:{addr}")
        self.block_manager = BlockManager(self, placement_policy)
        self.election = LeaderElectionService(
            self, config.election_period_ms, config.election_missed_rounds
        )
        # Path-component cache: serves resolution of the read-mostly top of
        # the hierarchy and the DAT partition-key hints (FAST'17).
        self.dir_cache = DirCache(now=lambda: env.now, env=env)
        self.ctx = ops.FsContext(
            ids=ids,
            now=lambda: env.now,
            place_block=self.block_manager.place,
            dir_cache=self.dir_cache,
        )
        self.ops_served = 0
        self.ops_failed = 0
        self.ops_shed = 0
        self._inflight = 0
        # Graceful decommission: a draining NN stops admitting new fs ops
        # (they bounce with ServerDrainingError) but finishes what it holds.
        # Rejections are counted separately from ops_shed so the autoscaler's
        # admission-pressure signal is not polluted by its own scale-downs.
        self.draining = False
        self.ops_drain_rejected = 0
        # Exactly-once replay state (robust mode only): in-memory LRU fast
        # path over the durable retry_cache NDB rows.
        self.retry_cache: Optional[RetryCache] = (
            RetryCache(config.robust.nn_retry_cache_size)
            if config.robust is not None
            else None
        )
        # Replaced with one list shared across all NNs by the deployment
        # builder; the chaos exactly-once invariant audits it.
        self.mutation_ledger: list = []
        # Async group commit (opt-in): the deployment builder attaches the
        # shared ledger and a per-NN committer when config.async_commit is
        # set; both stay None on the legacy synchronous path.
        self.group_ledger = None
        self.committer: Optional[GroupCommitter] = None
        # Pre-materialized listing/attr cache (opt-in): the deployment
        # builder attaches one per NN and subscribes it to the NDB
        # changelog when config.listing_cache is set; None = legacy path.
        self.listing_cache: Optional[ListingCache] = None
        self._safemode_forced = False
        self._election_enabled = False
        self._dispatch_proc = None
        self._monitor_proc = None

    # ------------------------------------------------------------------ life
    def start(self, election: bool = True) -> None:
        if self.running:
            return
        self.running = True
        self.draining = False
        # The dispatch loop runs forever (it drops mail while down), so a
        # restart after a crash must not spawn a second mailbox consumer.
        if self._dispatch_proc is None or not self._dispatch_proc.is_alive:
            self._dispatch_proc = self.env.process(
                self._dispatch(), name=f"{self.addr}:nn"
            )
        if election:
            self._election_enabled = True
            self.election.start()
            if self._monitor_proc is None or not self._monitor_proc.is_alive:
                self._monitor_proc = self.env.process(
                    self._dn_monitor(), name=f"{self.addr}:dn-monitor"
                )

    def attach_group_commit(self, ledger) -> None:
        """Opt this NN into async group commit (deployment-builder hook)."""
        self.group_ledger = ledger
        self.committer = GroupCommitter(self, self.config.async_commit, ledger)

    def attach_listing_cache(self, bus) -> None:
        """Opt this NN into the pre-materialized listing cache.

        ``bus`` is the NDB cluster's changelog bus; the deployment builder
        subscribes this NN's address separately so the fan-out order stays
        deterministic.
        """
        env = self.env
        self.listing_cache = ListingCache(
            self.config.listing_cache, now=lambda: env.now, bus=bus, env=env
        )

    def shutdown(self) -> None:
        self.running = False
        self.network.set_down(self.addr)
        if self.committer is not None:
            # The open batch's flush may or may not have reached the TC;
            # mark it lost and stop the drain process (its in-flight RPC
            # reply can never be delivered to a down address).
            self.committer.on_crash()

    def restart(self) -> None:
        """Bring a crashed namenode back (stateless: nothing to recover)."""
        if self.running:
            return
        self.network.set_up(self.addr)
        if self.listing_cache is not None:
            # Changelog batches sent while this NN was down were dropped;
            # flush and re-align with the bus before serving anything.
            self.listing_cache.resync()
        self.start(election=self._election_enabled)

    def drain(self, grace_ms: float = 50.0, poll_ms: float = 1.0):
        """Generator: stop admitting, finish in-flight work, flush batches.

        The first half of a graceful decommission (the deployment's
        ``decommission_namenode`` follows with leader-row deregistration
        and shutdown).  ``grace_ms`` bounds the wait for in-flight ops —
        they essentially always finish (each replies to its client), so
        the bound is a hang guard, not a kill switch.  Returns True if the
        grace expired with ops still in flight.
        """
        env = self.env
        self.draining = True
        deadline = env.now + grace_ms
        while self._inflight > 0 and env.now < deadline:
            yield env.timeout(poll_ms)
        forced = self._inflight > 0
        if self.committer is not None:
            # Unlike on_crash, every open group-commit batch settles as
            # committed or aborted — never "lost" — so nothing this NN
            # acked is left in doubt.
            yield from self.committer.drain_gracefully()
        return forced

    @property
    def inflight(self) -> int:
        """Currently executing fs ops (admission + autoscaler signal)."""
        return self._inflight

    @property
    def is_leader(self) -> bool:
        return self.election.is_leader

    @property
    def in_safemode(self) -> bool:
        """Mutations are rejected while in safemode (reads still served)."""
        if self._safemode_forced:
            return True
        if self.config.safemode_on_startup and self.election.rounds == 0:
            return True
        return False

    def enter_safemode(self) -> None:
        self._safemode_forced = True

    def leave_safemode(self) -> None:
        self._safemode_forced = False

    # -------------------------------------------------------------- dispatch
    def _dispatch(self):
        while True:
            msg = yield self.mailbox.get()
            if not self.running:
                continue
            if msg.kind == "fs_op":
                robust = self.config.robust
                if self.draining:
                    # Graceful drain: bounce new work fast so robust clients
                    # fail over; in-flight ops below keep running to
                    # completion.  Membership queries stay served — peers
                    # still list us until the leader row is dropped.
                    self.ops_drain_rejected += 1
                    if self.env.obs is not None:
                        self.env.obs.registry.counter("nn.drain_rejected").inc()
                    self.network.reply(
                        msg,
                        ServerDrainingError(f"{self.addr} draining; pick another NN"),
                        ok=False,
                    )
                elif robust is None:
                    self._inflight += 1
                    self.env.process(self._fs_op_guarded(msg), name=f"{self.addr}:fs_op")
                elif self._inflight >= robust.nn_max_inflight:
                    # Admission control: shed before touching the handler
                    # pool so an overloaded NN answers fast instead of
                    # queueing work it cannot finish in time.
                    self.ops_shed += 1
                    if self.env.obs is not None:
                        self.env.obs.registry.counter("nn.shed").inc()
                    self.network.reply(
                        msg,
                        ServerBusyError(f"{self.addr} overloaded; retry with backoff"),
                        ok=False,
                    )
                else:
                    self._inflight += 1
                    self.env.process(self._fs_op_guarded(msg), name=f"{self.addr}:fs_op")
            elif msg.kind == "get_active_nns":
                self.network.reply(msg, list(self.election.active), size=256)
            elif msg.kind == "dn_heartbeat":
                dn_addr, dn_az, block_ids = msg.payload
                self.block_manager.on_heartbeat(dn_addr, dn_az, block_ids)
            elif msg.kind == "block_received":
                block_id, dn_addr = msg.payload
                self.block_manager.on_block_received(block_id, dn_addr)
            elif msg.kind == "ndb_changelog":
                # One-way committed-mutation batch from an NDB TC; applied
                # inline (pure state mutation, no events scheduled).
                if self.listing_cache is not None:
                    self.listing_cache.apply(msg.payload)
            else:
                raise FsError(f"{self.addr}: unknown NN message {msg.kind!r}")

    # --------------------------------------------------------------- fs ops
    def _fs_op_guarded(self, msg: Message):
        try:
            yield from self._fs_op(msg)
        finally:
            self._inflight -= 1

    def _fs_op(self, msg: Message):
        op, kwargs = msg.payload
        obs = self.env.obs
        if obs is None:
            yield from self._fs_op_body(msg, op, kwargs, None)
            return
        # Server span: covers handler-pool queueing through reply; parented
        # under the client's rpc span via the span id the request carried.
        span = obs.tracer.start(
            "nn.handle", parent=msg.extra.get("span_id"),
            host=str(self.addr), az=self.az, op=op.value,
        )
        try:
            yield from self._fs_op_body(msg, op, kwargs, span)
        finally:
            obs.tracer.finish(span)
            ts = obs.timeseries
            if ts is not None:
                now = self.env.now
                ts.component_sample(
                    "nn.handle", str(self.addr), self.az,
                    now - span.start_ms, span.tags.get("ok", True) is not False, now,
                )

    def _fs_op_body(self, msg: Message, op: OpType, kwargs, span, pool_paid: bool = False):
        cache = self.listing_cache
        cacheable = cache is not None and op in self._CACHE_OPS
        if not pool_paid and cacheable:
            if self._cache_lookup(op, kwargs) is not None:
                if (yield from self._serve_cached(msg, op, kwargs, span, cache)):
                    return
                # The entry was invalidated while this op queued on the
                # handler pool; continue on the transactional path without
                # re-paying the (already submitted) pool cost.
                yield from self._fs_op_body(msg, op, kwargs, span, pool_paid=True)
                return
            cache.record_miss()
        if not pool_paid:
            yield self.handler_pool.submit(self.config.op_cost(op))
        if not self.running:
            return
        deadline_ms = msg.extra.get("deadline_ms")
        if deadline_ms is not None:
            remaining = deadline_ms - self.env.now
            obs = self.env.obs
            if obs is not None:
                obs.registry.histogram("nn.deadline_remaining_ms").observe(remaining)
            if remaining <= 0:
                # The client has stopped waiting; finishing the op would be
                # doomed work that only adds load while overloaded.
                self.ops_failed += 1
                self.network.reply(
                    msg,
                    DeadlineExceededError(f"{op.value} deadline expired at {self.addr}"),
                    ok=False,
                )
                return
        if op is OpType.FSYNC:
            yield from self._fsync(msg, kwargs)
            return
        fn = self._OPS.get(op)
        if fn is None:
            self.network.reply(msg, FsError(f"unsupported operation {op}"), ok=False)
            return
        if op.mutates and self.in_safemode:
            self.ops_failed += 1
            self.network.reply(
                msg, SafeModeError(f"{self.addr} is in safemode; {op.value} rejected"), ok=False
            )
            return
        retry_id = msg.extra.get("retry_id") if self.retry_cache is not None else None
        if retry_id is not None:
            hit, cached = self.retry_cache.lookup(tuple(retry_id))
            if hit:
                # This NN already applied the mutation; replay the recorded
                # result without touching NDB.
                if self.env.obs is not None:
                    self.env.obs.registry.counter("nn.retry_cache.hit").inc()
                self.ops_served += 1
                self._post_commit(op, cached, kwargs)
                self.network.reply(msg, cached, size=self.config.client_response_bytes)
                return

        committer = self.committer
        if committer is not None:
            if groupable(op, kwargs):
                # Async path: the committer batches, early-acks and flushes;
                # replies (including errors) are its job from here.
                committer.submit(msg, op, fn, kwargs, span, retry_id, deadline_ms)
                return
            # Read-your-writes on this NN: a sync-path op prefix-related to
            # a pending grouped mutation must wait until that batch settles
            # (its transaction reads at read-committed).
            paths = op_paths(op, kwargs)
            if paths and committer.has_conflict(paths):
                yield from committer.await_clear(paths)

        # Listing-cache miss path: resolve with fresh transactional reads
        # (recorded for the fill) and capture a fill token so an
        # invalidation racing this read discards the fill, not vice versa.
        recorder = None
        fill_token = None
        call_ctx = self.ctx
        if cacheable:
            recorder = _FillRecorder(self.dir_cache)
            call_ctx = dataclasses.replace(self.ctx, dir_cache=recorder)
            fill_token = cache.begin_fill()

        def body(txn):
            if retry_id is not None:
                # Phantom-safe exclusive read: a concurrent retry of the
                # same id serializes here, so exactly one execution wins.
                prior = yield from txn.read(
                    RETRY_TABLE,
                    tuple(retry_id),
                    partition_key=retry_id[0],
                    lock=LockMode.EXCLUSIVE,
                )
                if prior is not None:
                    return _Replay(prior.result)
            result = yield from fn(call_ctx, txn, **kwargs)
            if retry_id is not None:
                # Same transaction as the mutation: an NN crash after commit
                # cannot lose the replay record.
                yield from txn.write(
                    RETRY_TABLE,
                    tuple(retry_id),
                    RetryRow(client_id=retry_id[0], op_seq=retry_id[1], result=result),
                    partition_key=retry_id[0],
                )
            return result

        try:
            hint_key = self._hint_for(kwargs)
            result = yield from run_transaction(
                self.api, body, hint_table=INODES_TABLE, hint_key=hint_key,
                parent_span=span, deadline=deadline_ms,
            )
        except FsError as exc:
            self.ops_failed += 1
            self.network.reply(msg, exc, ok=False)
            return
        except NdbError as exc:
            self.ops_failed += 1
            self.network.reply(msg, exc, ok=False)
            return
        replayed = isinstance(result, _Replay)
        if replayed:
            result = result.value
        if retry_id is not None:
            if self.env.obs is not None:
                name = "nn.retry_cache.hit" if replayed else "nn.retry_cache.miss"
                self.env.obs.registry.counter(name).inc()
            self.retry_cache.put(tuple(retry_id), result)
            if not replayed:
                # One ledger entry per applied (not replayed) mutation; the
                # chaos exactly-once invariant checks ids never repeat.
                self.mutation_ledger.append((tuple(retry_id), op.value))
        self.ops_served += 1
        if recorder is not None:
            self._cache_fill(op, kwargs, result, fill_token, recorder.rows)
        self._post_commit(op, result, kwargs)
        self.network.reply(msg, result, size=self.config.client_response_bytes)

    def _cache_lookup(self, op: OpType, kwargs):
        """Try to answer ``op`` from the listing cache.

        Returns a one-tuple ``(result,)`` on a servable hit (the tuple
        distinguishes a cached ``None``/``False`` from a miss) or ``None``
        when the transactional path must run.
        """
        cache = self.listing_cache
        path = kwargs.get("path")
        if path is None:
            return None
        committer = self.committer
        if committer is not None:
            # Async group commit: an early-acked batch touching this path
            # may not have committed (and so not invalidated) yet.  Serving
            # from cache here would break read-your-writes; fall through to
            # the sync path, which awaits the conflicting batch.
            paths = op_paths(op, kwargs)
            if paths and committer.has_conflict(paths):
                return None
        definitive, row = cache.resolve(
            path,
            dir_cache=self.dir_cache,
            final_from_dir_cache=op is OpType.LIST_DIR,
        )
        if not definitive:
            return None
        if op is OpType.EXISTS:
            return (row is not None,)
        if row is None:
            return None  # FileNotFound error paths stay transactional
        if op is OpType.STAT:
            return (row,)
        if op is OpType.READ_FILE:
            if row.is_dir or row.small_data is None:
                return None  # large files read blocks transactionally
            return (ops.FileContent(inode=row, small_data=row.small_data),)
        if op is OpType.LIST_DIR:
            if not row.is_dir:
                return None  # NotADirectory error path stays transactional
            names = cache.listing(row.id)
            if names is None:
                return None
            return (names,)
        return None

    def _serve_cached(self, msg: Message, op: OpType, kwargs, span, cache):
        """Serve a cache hit from NN memory, skipping NDB entirely.

        Pays a reduced handler-pool cost (a hash lookup instead of
        transaction setup and coordinator round trips), then re-resolves:
        an invalidation may have landed while this op queued.  Returns
        True when a reply was sent, False to fall back to the txn path.
        """
        obs = self.env.obs
        serve_span = None
        if obs is not None:
            serve_span = obs.tracer.start(
                "nn.cache.serve", parent=span,
                host=str(self.addr), az=self.az, op=op.value,
            )
        try:
            yield self.handler_pool.submit(
                self.config.op_cost(op) * cache.config.hit_cost_frac
            )
            if not self.running:
                return True  # dropped, like any op caught mid-shutdown
            deadline_ms = msg.extra.get("deadline_ms")
            if deadline_ms is not None:
                remaining = deadline_ms - self.env.now
                if obs is not None:
                    obs.registry.histogram("nn.deadline_remaining_ms").observe(remaining)
                if remaining <= 0:
                    self.ops_failed += 1
                    self.network.reply(
                        msg,
                        DeadlineExceededError(f"{op.value} deadline expired at {self.addr}"),
                        ok=False,
                    )
                    return True
            hit = self._cache_lookup(op, kwargs)
            if hit is None:
                cache.record_miss()
                return False
            cache.record_hit()
            self.ops_served += 1
            self.network.reply(msg, hit[0], size=self.config.client_response_bytes)
            return True
        finally:
            if serve_span is not None:
                obs.tracer.finish(serve_span)

    def _cache_fill(self, op: OpType, kwargs, result, token, rows) -> None:
        """Populate the listing cache from a transactional read's rows.

        Only rows read (or the result produced) inside the transaction are
        filled — never dir-cache contents, which may be seconds stale and
        are not changelog-invalidated.  ``token`` discards fills that raced
        an invalidation of the same directory.
        """
        cache = self.listing_cache
        if cache is None:
            return
        for row in rows:
            if row.id != ROOT_INODE_ID:
                cache.fill_attr(token, row)
        if op is OpType.STAT and result is not None:
            if result.id != ROOT_INODE_ID:
                cache.fill_attr(token, result)
        elif op is OpType.READ_FILE and result is not None:
            if result.small_data is not None and result.inode.id != ROOT_INODE_ID:
                cache.fill_attr(token, result.inode)
        elif op is OpType.LIST_DIR:
            definitive, row = cache.resolve(
                kwargs["path"], dir_cache=self.dir_cache, final_from_dir_cache=True
            )
            if definitive and row is not None and row.is_dir:
                cache.fill_listing(token, row.id, result)

    def _fsync(self, msg: Message, kwargs):
        """Durability barrier: wait until the caller's horizons settle.

        ``horizons`` is the list of group-batch ids the client's acked
        mutations rode.  Success means every one of them committed; any
        aborted or lost horizon fails the barrier, telling the caller its
        early-acked data did not survive.
        """
        ledger = self.group_ledger
        horizons = kwargs.get("horizons") or ()
        if ledger is None or not horizons:
            self.ops_served += 1
            self.network.reply(msg, True, size=self.config.client_response_bytes)
            return
        failed = []
        for horizon in horizons:
            state = yield from ledger.wait(horizon)
            if state == "committed":
                ledger.confirmed.add(horizon)
            else:
                failed.append((horizon, state))
        if failed:
            self.ops_failed += 1
            self.network.reply(
                msg,
                FsError(f"durability horizon not committed: {failed}"),
                ok=False,
            )
            return
        self.ops_served += 1
        self.network.reply(msg, True, size=self.config.client_response_bytes)

    def _post_commit(self, op: OpType, result, kwargs=None) -> None:
        """In-memory bookkeeping a (possibly replayed) result implies.

        A replayed ADD_BLOCK may be served by an NN that never saw the
        original commit (the client failed over), so the block map is
        updated on replays too — the operations are idempotent.
        """
        if op is OpType.ADD_BLOCK and result is not None:
            self.block_manager.record_new_block(result.block_id, result.locations)
            self.block_manager.block_inode[result.block_id] = result.inode_id
        if op.mutates and self.listing_cache is not None and kwargs is not None:
            # Read-your-writes belt-and-braces: the changelog invalidation
            # is already in flight (published at the TC commit point, before
            # this reply), but drop our own entries eagerly too.
            for components in op_paths(op, kwargs):
                self.listing_cache.invalidate_path("/" + "/".join(components))

    def _hint_for(self, kwargs) -> Optional[int]:
        """DAT hint: the target's parent directory id, from the dir cache.

        The inodes table is partitioned by parent id, so hinting with it
        starts the transaction on the NDB node holding the target's
        partition.  A cold cache means no hint (selection case 4).
        """
        path = kwargs.get("path") or kwargs.get("src")
        if not path:
            return None
        components = split_path(normalize_path(path))[:-1]
        parent_id = 1
        for name in components:
            row = self.dir_cache.get(parent_id, name)
            if row is None:
                return None
            parent_id = row.id
        return parent_id

    # ----------------------------------------------------- block re-replication
    def _dn_monitor(self):
        """Leader-only: declare silent DNs dead and restore replication."""
        interval = self.config.dn_heartbeat_interval_ms
        deadline = interval * self.config.dn_missed_heartbeats
        while self.running:
            yield self.env.timeout(interval)
            if not self.running or not self.is_leader:
                continue
            for dead in self.block_manager.check_expired(deadline):
                self.env.process(
                    self._rereplicate_from(dead), name=f"{self.addr}:rereplicate"
                )

    def _rereplicate_from(self, dead: NodeAddress):
        for block_id, survivors in self.block_manager.under_replicated_on(dead):
            if not survivors:
                continue  # data lost; nothing to copy from
            live = self.block_manager.live_dns()
            exclude = set(survivors) | {dead}
            candidates = [dn for dn in sorted(live) if dn not in exclude]
            if not candidates:
                continue
            source = sorted(survivors)[0]
            target = self.block_manager.pick_rereplication_target(candidates, survivors)
            if target is None:
                continue
            try:
                yield self.network.call(
                    self.addr,
                    source,
                    "copy_block",
                    CopyBlockReq(block_id=block_id, target=target),
                    size=128,
                )
            except (HostUnreachableError, FsError):
                continue
            self.block_manager.on_block_received(block_id, target)
            self.block_manager.rereplications += 1
            yield from self._update_block_locations(block_id, dead, target)

    def _update_block_locations(self, block_id: int, dead: NodeAddress, new: NodeAddress):
        """Rewrite the block row so readers see the new replica set."""

        inode_id = self.block_manager.block_inode.get(block_id)
        if inode_id is None:
            # This NN never saw the block's metadata (it did not serve the
            # addBlock); the in-memory map is already correct and the row
            # will be reconciled by the next full block report.
            return

        def body(txn):
            row = yield from txn.read(BLOCKS_TABLE, block_id, partition_key=inode_id)
            if row is not None:
                new_locations = tuple(sorted(set(row.locations) - {dead})) + (new,)
                yield from txn.write(
                    BLOCKS_TABLE,
                    block_id,
                    row.with_(locations=new_locations),
                    partition_key=inode_id,
                )
            return row

        try:
            yield from run_transaction(self.api, body)
        except (TransactionAbortedError, FsError):
            pass
