"""Metadata-serving-layer configuration and service costs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError
from ..types import OpType
from .elastic import ElasticConfig
from .groupcommit import AsyncCommitConfig
from .listcache import ListingCacheConfig
from .robust import RobustConfig

__all__ = ["HopsFsConfig"]


@dataclass(frozen=True)
class HopsFsConfig:
    """Namenode / client configuration.

    ``op_cost_*`` are per-operation CPU service times on the namenode's
    handler pool (ms), calibrated so a single 32-core NN saturates around
    the paper's per-NN throughput (~27k ops/s at 60 NNs aggregate 1.6M).
    The granular-locking design lets the NN use all cores (Fig. 10b).
    """

    nn_cores: int = 32
    op_cost_read_ms: float = 1.05  # stat / readFile / listDir handler work
    op_cost_mutation_ms: float = 1.55  # create / mkdir / delete / rename
    election_period_ms: float = 2000.0  # leader election round (paper: 2s)
    election_missed_rounds: int = 2
    client_request_bytes: int = 256
    client_response_bytes: int = 512
    hint_cache_max: int = 100_000
    # Block storage layer.
    dn_heartbeat_interval_ms: float = 1000.0
    dn_missed_heartbeats: int = 3
    dn_disk_bandwidth_bytes_per_ms: float = 400_000.0
    # Clients stick to a metadata server until it fails.
    client_max_failovers: int = 4
    # Reject mutations until the first election round has completed
    # (HDFS-style startup safemode).  Off by default: benchmarks preload
    # their namespace and start hot.
    safemode_on_startup: bool = False
    # Gray-failure hardening (timeouts, deadlines, hedging, retry cache,
    # admission control).  None = legacy fail-stop path, which the pinned
    # golden schedules require; chaos targets opt in.
    robust: Optional[RobustConfig] = None
    # Async group commit (batched flushes, early acks with a durability
    # horizon).  None = synchronous commit path, bit-identical to the
    # pinned golden schedules; experiments and chaos targets opt in.
    async_commit: Optional[AsyncCommitConfig] = None
    # Elastic serving tier (runtime add/decommission, client membership
    # refresh, load-driven autoscaler).  None = fixed pool, bit-identical
    # to the pinned golden schedules; the churn scenarios opt in.
    elastic: Optional[ElasticConfig] = None
    # Pre-materialized listing/attr cache with NDB-changelog invalidation.
    # None = every read pays the full transaction, bit-identical to the
    # pinned golden schedules; listing experiments and chaos runs opt in.
    listing_cache: Optional[ListingCacheConfig] = None

    def __post_init__(self) -> None:
        if self.nn_cores < 1:
            raise ConfigError("namenode needs at least one core")

    def op_cost(self, op: OpType) -> float:
        return self.op_cost_mutation_ms if op.mutates else self.op_cost_read_ms
