"""Block-storage datanodes (DNs): pipelines, heartbeats, block transfer.

Only large files (>128 KB) touch this layer; small files live inline in
NDB (Section II-A3).  Writes replicate through a pipeline
client → DN1 → DN2 → DN3 with acknowledgements flowing back.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..errors import FsError, HostUnreachableError
from ..net.network import Message, Network
from ..sim import Environment
from ..sim.resources import Disk
from ..types import AzId, NodeAddress

__all__ = ["BlockStoreDatanode", "WriteBlockReq", "ReadBlockReq", "CopyBlockReq"]


@dataclass
class WriteBlockReq:
    block_id: int
    nbytes: int
    pipeline: tuple[NodeAddress, ...]
    hop: int = 0


@dataclass
class ReadBlockReq:
    block_id: int


@dataclass
class CopyBlockReq:
    """Leader-initiated re-replication: copy a local block to ``target``."""

    block_id: int
    target: NodeAddress


class BlockStoreDatanode:
    """One DN process of the block storage layer."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        addr: NodeAddress,
        az: AzId,
        namenode_addrs,
        heartbeat_interval_ms: float = 1000.0,
        disk_bandwidth_bytes_per_ms: float = 400_000.0,
    ):
        self.env = env
        self.network = network
        self.addr = addr
        self.az = az
        self.namenode_addrs = list(namenode_addrs)
        self.heartbeat_interval_ms = heartbeat_interval_ms
        self.mailbox = network.register(addr)
        self.disk = Disk(env, disk_bandwidth_bytes_per_ms, name=f"{addr}:disk")
        self.blocks: dict[int, int] = {}  # block_id -> size
        self.running = False
        self._dispatch_proc = None
        self._hb_proc = None

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        if self._dispatch_proc is None or not self._dispatch_proc.is_alive:
            self._dispatch_proc = self.env.process(
                self._dispatch(), name=f"{self.addr}:dn"
            )
        if self._hb_proc is None or not self._hb_proc.is_alive:
            self._hb_proc = self.env.process(
                self._heartbeat_loop(), name=f"{self.addr}:dn-hb"
            )

    def shutdown(self) -> None:
        self.running = False
        self.network.set_down(self.addr)

    def restart(self) -> None:
        """Rejoin after a crash; locally stored blocks survive the outage."""
        if self.running:
            return
        self.network.set_up(self.addr)
        self.start()

    # -- processes -----------------------------------------------------------
    def _dispatch(self):
        while True:
            msg = yield self.mailbox.get()
            if not self.running:
                continue
            self.env.process(self._handle(msg), name=f"{self.addr}:{msg.kind}")

    def _handle(self, msg: Message):
        if msg.kind == "write_block":
            yield from self._write_block(msg)
        elif msg.kind == "read_block":
            yield from self._read_block(msg)
        elif msg.kind == "copy_block":
            yield from self._copy_block(msg)
        else:
            raise FsError(f"{self.addr}: unknown DN message {msg.kind!r}")

    def _heartbeat_loop(self):
        while self.running:
            for nn in self.namenode_addrs:
                self.network.send(
                    Message(
                        src=self.addr,
                        dst=nn,
                        kind="dn_heartbeat",
                        payload=(self.addr, self.az, tuple(self.blocks)),
                        size=128 + 8 * len(self.blocks),
                    )
                )
            yield self.env.timeout(self.heartbeat_interval_ms)

    # -- handlers ----------------------------------------------------------------
    def _write_block(self, msg: Message):
        req: WriteBlockReq = msg.payload
        yield self.disk.write(req.nbytes)
        if not self.running:
            return
        self.blocks[req.block_id] = req.nbytes
        if req.hop + 1 < len(req.pipeline):
            nxt = WriteBlockReq(
                block_id=req.block_id,
                nbytes=req.nbytes,
                pipeline=req.pipeline,
                hop=req.hop + 1,
            )
            try:
                yield self.network.call(
                    self.addr,
                    req.pipeline[req.hop + 1],
                    "write_block",
                    nxt,
                    size=req.nbytes,
                )
            except HostUnreachableError as exc:
                self.network.reply(msg, FsError(f"pipeline broke: {exc}"), ok=False)
                return
        self.network.reply(msg, True, size=64)

    def _read_block(self, msg: Message):
        req: ReadBlockReq = msg.payload
        size = self.blocks.get(req.block_id)
        if size is None:
            self.network.reply(msg, FsError(f"block {req.block_id} not here"), ok=False)
            return
        yield self.disk.read(size)
        if self.running:
            self.network.reply(msg, size, size=size)

    def _copy_block(self, msg: Message):
        req: CopyBlockReq = msg.payload
        size = self.blocks.get(req.block_id)
        if size is None:
            self.network.reply(msg, FsError(f"block {req.block_id} not here"), ok=False)
            return
        yield self.disk.read(size)
        transfer = WriteBlockReq(
            block_id=req.block_id, nbytes=size, pipeline=(req.target,), hop=0
        )
        try:
            yield self.network.call(self.addr, req.target, "write_block", transfer, size=size)
        except HostUnreachableError as exc:
            self.network.reply(msg, FsError(f"copy failed: {exc}"), ok=False)
            return
        if self.running:
            self.network.reply(msg, True, size=64)
