"""Namespace *shape* snapshots for differential testing.

The async group-commit differential harness runs the same seeded workload
through the legacy synchronous path and the async path and asserts the
final namespaces are equivalent.  Equivalence is over the client-visible
shape — paths and their attributes — not over inode ids: the two paths
interleave handler execution differently, so id *allocation order* is not
part of the contract, while everything a client can observe is.
"""

from __future__ import annotations

from .metadata import INODES_TABLE

__all__ = ["namespace_snapshot"]

ROOT_ID = 1


def namespace_snapshot(fs) -> dict[str, tuple]:
    """Committed namespace shape: ``path -> (kind, size, perm, repl, data)``.

    Reads committed rows straight from the running NDB fragment stores
    (any running replica; replica consistency is audited by the chaos
    invariant catalogue separately), rebuilds paths from parent links,
    and drops inode ids on purpose.  Rows whose parent chain does not
    reach the root are skipped — orphan detection belongs to the
    namespace-integrity invariant, not to the differential diff.
    """
    rows: dict[tuple, object] = {}
    for dn in fs.ndb.datanodes.values():
        if not dn.running:
            continue
        for pk, value in dn.store.iter_rows(INODES_TABLE):
            rows.setdefault(pk, value)

    children: dict[int, list] = {}
    for row in rows.values():
        children.setdefault(row.parent_id, []).append(row)

    snapshot: dict[str, tuple] = {}
    stack = [(ROOT_ID, "")]
    while stack:
        inode_id, prefix = stack.pop()
        for row in sorted(children.get(inode_id, ()), key=lambda r: r.name):
            path = f"{prefix}/{row.name}"
            snapshot[path] = (
                "dir" if row.is_dir else "file",
                row.size,
                row.permission,
                row.replication,
                row.under_construction,
                row.small_data,
            )
            if row.is_dir:
                stack.append((row.id, path))
    return snapshot
