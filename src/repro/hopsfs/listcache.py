"""Pre-materialized listing/attr cache served from NN memory (ROADMAP 3).

The Spotify mix is ~95% reads (``readFile``/``getFileInfo``/``listDir``/
``exists``), yet every one of them pays a full NDB transaction — at least
one partition-pruned read or scan plus the coordinator round trips.  This
module gives each namenode a Tiger-Cache-style pre-materialized cache:

* **attr entries** map ``(parent_id, name)`` to the committed
  :class:`~repro.hopsfs.metadata.InodeRow`, letting path resolution, stat,
  and small-file reads complete without touching NDB;
* **listing entries** map a directory's inode id to its sorted child-name
  tuple, serving ``list_dir`` — and *definitive absence* for ``exists`` —
  in O(1).

Entries are filled from the transactional read path (miss → NDB → fill)
and invalidated by the NDB changelog (``repro.ndb.changelog``): every
committed inode mutation fans out row images which pop the affected attr
and listing entries.  Three gates keep a stale entry from ever being
served after its invalidation applies:

* **epoch** — a TC-failure take-over that rolls a transaction forward
  cannot itemize the rows it committed; the bus bumps its epoch and the
  cache flushes wholesale.
* **sequence** — batches are globally sequence-stamped.  Invalidation
  pops are order-independent, so out-of-order delivery applies
  immediately; a *hole* that never fills (a batch dropped while this NN
  was down or partitioned) overflows the pending window and flushes.
* **fill tokens** — a fill begun before an invalidation of the same
  directory (or before a flush) is discarded, not applied, closing the
  read-then-invalidate-then-fill race.

Staleness across NNs is bounded by changelog delivery latency in the
common case and by ``ttl_ms`` in the worst case (dropped batches expire
out).  ``HopsFsConfig.listing_cache=None`` (the default) builds none of
this: no subscriptions, no messages, no events — the legacy path stays
bit-identical to the pinned golden schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import InvalidPathError
from ..ndb.schema import TOMBSTONE
from .metadata import INODES_TABLE, ROOT_INODE_ID, InodeRow
from .pathlock import root_row, split_path

__all__ = ["ListingCacheConfig", "ListingCache"]


@dataclass(frozen=True)
class ListingCacheConfig:
    """Opt-in knobs for the pre-materialized listing/attr cache."""

    # Worst-case staleness bound: entries older than this are never served
    # (covers changelog batches dropped while this NN was unreachable).
    ttl_ms: float = 100.0
    # Bounded LRU caps (dict insertion order, deterministic eviction).
    max_attr_entries: int = 200_000
    max_listing_entries: int = 50_000
    # Handler-pool cost of a cache-served read, as a fraction of
    # ``op_cost_read_ms``: a hash lookup instead of transaction setup,
    # marshalling, and coordinator bookkeeping.
    hit_cost_frac: float = 0.25
    # Out-of-order tolerance: how many sequence numbers may sit above a
    # delivery hole before the hole is declared a *lost* batch (this NN
    # missed an invalidation) and the cache flushes.
    max_pending_batches: int = 64


class ListingCache:
    """Per-NN pre-materialized listing/attr cache with changelog invalidation."""

    def __init__(
        self,
        config: ListingCacheConfig,
        now: Callable[[], float],
        bus,
        env=None,
    ):
        self.config = config
        self._now = now
        self.bus = bus
        self._env = env
        # (parent_id, name) -> (stamp_ms, InodeRow)
        self._attrs: dict[tuple[int, str], tuple[float, InodeRow]] = {}
        # dir inode id -> (stamp_ms, sorted-name tuple, name set)
        self._listings: dict[int, tuple[float, tuple, frozenset]] = {}
        # Changelog gating state.
        self.epoch = bus.epoch
        self.applied_seq = bus.seq
        self._pending: set[int] = set()
        # Fill-race gating: every invalidation event advances _inval_seq
        # and stamps the affected directory ids; a fill token older than a
        # directory's stamp (or than the last flush) is discarded.
        self._inval_seq = 0
        self._flush_stamp = 0
        self._dir_stamp: dict[int, int] = {}
        # Plain-int counters (schedule-neutral; mirrored to obs when on).
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.flushes = 0
        self.fills = 0
        self.discarded_fills = 0
        self.batches_applied = 0
        self.stale_batches = 0

    def _count(self, name: str) -> None:
        env = self._env
        if env is not None and env.obs is not None:
            env.obs.registry.counter(name).inc()

    # ------------------------------------------------------------------ serve
    def _attr_get(self, parent_id: int, name: str) -> Optional[InodeRow]:
        entry = self._attrs.get((parent_id, name))
        if entry is None:
            return None
        stamp, row = entry
        if self._now() - stamp > self.config.ttl_ms:
            del self._attrs[(parent_id, name)]
            return None
        return row

    def _listing_get(self, dir_id: int) -> Optional[tuple]:
        entry = self._listings.get(dir_id)
        if entry is None:
            return None
        stamp, names, name_set = entry
        if self._now() - stamp > self.config.ttl_ms:
            del self._listings[dir_id]
            return None
        return entry

    def resolve(
        self, path: str, dir_cache=None, final_from_dir_cache: bool = False
    ) -> tuple[bool, Optional[InodeRow]]:
        """Resolve ``path`` purely from NN memory.

        Returns ``(definitive, row)``: ``(True, row)`` on a full cached
        resolution, ``(True, None)`` when a materialized parent listing
        proves the path absent, ``(False, None)`` when the cache cannot
        decide (fall through to the transactional path).

        *Intermediate* directory components may be served from the NN's
        legacy ``dir_cache`` when given — the transactional path resolves
        parents from exactly that cache (FAST'17 DAT hints), so trusting
        it here is observably equivalent to a miss.  The *final* component
        always comes from this cache's changelog-gated entries (or a
        materialized parent listing proving absence): that row is the
        result, and the legacy path always reads it fresh.

        ``final_from_dir_cache=True`` relaxes that for callers that only
        need the final directory's *id*, not its attributes — LIST_DIR,
        whose served payload (the listing keyed by that id) stays
        changelog-gated.  Trusting the dir cache for the id mapping is the
        same trust the legacy path extends to every parent directory.
        """
        try:
            components = split_path(path)
        except InvalidPathError:
            return False, None  # let the transactional path raise exactly
        row = root_row()
        last = len(components) - 1
        for depth, name in enumerate(components):
            if not row.is_dir:
                # Error path (file mid-path): serve transactionally so the
                # client sees the exact legacy exception.
                return False, None
            nxt = self._attr_get(row.id, name)
            if nxt is None and dir_cache is not None and (
                depth < last or final_from_dir_cache
            ):
                nxt = dir_cache.peek(row.id, name)
            if nxt is None:
                listing = self._listing_get(row.id)
                if listing is not None and name not in listing[2]:
                    return True, None  # materialized listing proves absence
                return False, None
            row = nxt
        return True, row

    def listing(self, dir_id: int) -> Optional[list]:
        entry = self._listing_get(dir_id)
        if entry is None:
            return None
        return list(entry[1])

    def record_hit(self) -> None:
        self.hits += 1
        self._count("nn.listcache.hit")

    def record_miss(self) -> None:
        self.misses += 1
        self._count("nn.listcache.miss")

    # ------------------------------------------------------------------ fills
    def begin_fill(self) -> tuple[int, int]:
        """Token capturing the invalidation state before a transactional read."""
        return (self.epoch, self._inval_seq)

    def fill_attr(self, token: tuple[int, int], row: InodeRow) -> None:
        epoch, at = token
        if epoch != self.epoch or at < self._flush_stamp:
            self.discarded_fills += 1
            return
        if self._dir_stamp.get(row.parent_id, 0) > at:
            self.discarded_fills += 1  # directory invalidated since the read
            return
        key = (row.parent_id, row.name)
        if self._attrs.pop(key, None) is None and len(self._attrs) >= self.config.max_attr_entries:
            self._attrs.pop(next(iter(self._attrs)))
        self._attrs[key] = (self._now(), row)
        self.fills += 1

    def fill_listing(self, token: tuple[int, int], dir_id: int, names) -> None:
        epoch, at = token
        if epoch != self.epoch or at < self._flush_stamp:
            self.discarded_fills += 1
            return
        if self._dir_stamp.get(dir_id, 0) > at:
            self.discarded_fills += 1
            return
        if self._listings.pop(dir_id, None) is None and len(self._listings) >= self.config.max_listing_entries:
            self._listings.pop(next(iter(self._listings)))
        ordered = tuple(sorted(names))
        self._listings[dir_id] = (self._now(), ordered, frozenset(ordered))
        self.fills += 1

    def prewarm(self, rows) -> None:
        """Bulk-materialize the cache from a committed namespace snapshot.

        ``rows`` is the deduplicated committed ``inodes`` content (what the
        paper's NN reads when it subscribes to the changelog: a snapshot,
        which the stream then keeps fresh).  The snapshot is read
        synchronously at the current simulated instant, so every entry is
        committed-consistent *now*; any later commit's changelog batch pops
        whatever it touches, exactly as for lazily filled entries.  Caps are
        honoured by refusing the bulk load when it would not fit — a partial
        listing materialization could wrongly prove absence.
        """
        rows = [row for row in rows if row.id != ROOT_INODE_ID]
        dir_ids = {row.id for row in rows if row.is_dir} | {ROOT_INODE_ID}
        if (
            len(rows) > self.config.max_attr_entries
            or len(dir_ids) > self.config.max_listing_entries
        ):
            return
        now = self._now()
        children: dict[int, list[str]] = {dir_id: [] for dir_id in dir_ids}
        for row in rows:
            self._attrs[(row.parent_id, row.name)] = (now, row)
            if row.parent_id in children:
                children[row.parent_id].append(row.name)
        for dir_id, names in children.items():
            ordered = tuple(sorted(names))
            self._listings[dir_id] = (now, ordered, frozenset(ordered))
        self.fills += len(rows) + len(children)

    # ------------------------------------------------------------ invalidation
    def _stamp_dir(self, dir_id: int) -> None:
        self._dir_stamp[dir_id] = self._inval_seq

    def _drop_dir(self, dir_id: int) -> None:
        self._listings.pop(dir_id, None)
        self._stamp_dir(dir_id)

    def _invalidate_record(self, table, pk, value) -> None:
        if table != INODES_TABLE:
            return
        self._inval_seq += 1
        parent_id, _name = pk
        entry = self._attrs.pop(pk, None)
        self._drop_dir(parent_id)
        if entry is not None and entry[1].is_dir:
            self._drop_dir(entry[1].id)
        if value is not TOMBSTONE and isinstance(value, InodeRow) and value.is_dir:
            self._drop_dir(value.id)
        self.invalidations += 1
        self._count("nn.listcache.invalidation")

    def invalidate_path(self, path: str) -> None:
        """Eager local invalidation (read-your-writes on the mutating NN).

        Called before the mutation's reply leaves this NN, so a client
        that writes then reads through the same NN never sees its own
        write shadowed by a stale entry.  The authoritative changelog
        invalidation follows and is idempotent over this.
        """
        try:
            components = split_path(path)
        except InvalidPathError:
            return
        self._inval_seq += 1
        parent_id = ROOT_INODE_ID
        for name in components:
            entry = self._attrs.pop((parent_id, name), None)
            self._drop_dir(parent_id)
            self.invalidations += 1
            if entry is None:
                return
            row = entry[1]
            if not row.is_dir:
                return
            parent_id = row.id
        self._drop_dir(parent_id)  # the path named a cached directory

    # -------------------------------------------------------------- changelog
    def apply(self, batch) -> None:
        """Apply one changelog batch (epoch/sequence-gated)."""
        if batch.epoch > self.epoch:
            self.epoch = batch.epoch
            self.applied_seq = batch.seq
            self._pending.clear()
            self.flush()
            return
        if batch.epoch < self.epoch or batch.seq <= self.applied_seq or batch.seq in self._pending:
            self.stale_batches += 1
            return
        # Invalidation pops are order-independent: apply immediately, then
        # advance the contiguous high-water mark through the pending set.
        for table, pk, _partition_key, value in batch.records:
            self._invalidate_record(table, pk, value)
        self.batches_applied += 1
        self._pending.add(batch.seq)
        while self.applied_seq + 1 in self._pending:
            self.applied_seq += 1
            self._pending.remove(self.applied_seq)
        if len(self._pending) > self.config.max_pending_batches:
            # The hole below the pending window never filled: a batch was
            # lost while this NN was unreachable.  Anything cached before
            # the loss may be stale — flush and restart from the top.
            self.applied_seq = max(self._pending)
            self._pending.clear()
            self.flush()

    def flush(self) -> None:
        self._attrs.clear()
        self._listings.clear()
        self._dir_stamp.clear()
        self._inval_seq += 1
        self._flush_stamp = self._inval_seq
        self.flushes += 1
        self._count("nn.listcache.flush")

    def resync(self) -> None:
        """Re-align with the bus after this NN restarts.

        Changelog batches sent while the NN was down were dropped by the
        network; everything cached before the crash is untrustworthy.
        """
        self.epoch = self.bus.epoch
        self.applied_seq = self.bus.seq
        self._pending.clear()
        self.flush()

    # ------------------------------------------------------------------ audit
    def live_attrs(self, now: float):
        """Non-expired attr entries — exactly what ``serve`` would trust."""
        ttl = self.config.ttl_ms
        return [
            (pk, row)
            for pk, (stamp, row) in self._attrs.items()
            if now - stamp <= ttl
        ]

    def live_listings(self, now: float):
        """Non-expired listing entries — exactly what ``serve`` would trust."""
        ttl = self.config.ttl_ms
        return [
            (dir_id, names)
            for dir_id, (stamp, names, _s) in self._listings.items()
            if now - stamp <= ttl
        ]

    def __len__(self) -> int:
        return len(self._attrs) + len(self._listings)
