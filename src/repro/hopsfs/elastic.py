"""Elastic metadata serving: dynamic NN pool reconfiguration.

The paper's central architectural claim is that HopsFS namenodes are
*stateless* metadata workers over NDB — any NN can serve any request, so
the serving tier can grow and shrink at runtime without data movement.
This module supplies the pieces the static build path lacks:

* :class:`ElasticConfig` — the opt-in knob block, mirroring
  ``RobustConfig`` / ``AsyncCommitConfig``: ``HopsFsConfig.elastic is
  None`` keeps the legacy fixed-pool path bit-identical to the pinned
  golden schedules (no refresh loops, no autoscaler process, no extra
  events).
* :class:`ReconfigEvent` / :class:`ProvisionRecord` — the reconfiguration
  log and per-NN provisioned-interval accounting behind the artifact's
  two headline metrics: reconfiguration latency (decision →
  client-visible capacity) and cost-normalized throughput (ops/s per
  NN·second provisioned).
* :class:`Autoscaler` — a load-driven DES process that scales the pool on
  ``nn.shed`` admission pressure and per-AZ utilization, with cooldowns
  and a min/max per AZ.  The min-per-AZ floor doubles as the replacement
  policy under spot preemption: a preempted (or draining) NN stops
  counting toward its AZ, so the next tick provisions a successor.

Determinism: the whole reconfiguration path is driven by DES timers and
plain counter reads — it draws from no RNG stream, and every poll period
is fixed by config, so the same seed and schedule dispatch the exact same
event sequence run-to-run (the scenario harness pins this by hashing the
dispatch trace).  The lifecycle methods themselves live on
``HopsFsDeployment`` (:mod:`repro.hopsfs.filesystem`); this module holds
the config, the log records, and the autoscaler that drives them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigError

__all__ = [
    "ElasticConfig",
    "ProvisionRecord",
    "ReconfigEvent",
    "Autoscaler",
    "elastic_summary",
]


@dataclass(frozen=True)
class ElasticConfig:
    """Knobs for the elastic serving tier.  All opt-in via ``HopsFsConfig``."""

    # Clients re-fetch the leader-maintained membership view this often and
    # swap it in for the static bootstrap list (stale breakers/hedge state
    # for removed NNs is dropped on the same refresh).
    membership_refresh_ms: float = 40.0
    # Autoscaler process.  ``autoscale=False`` keeps membership refresh and
    # the manual add/decommission lifecycle but spawns no scaling loop —
    # the ``nn-churn`` scenario drives churn purely from its schedule.
    autoscale: bool = True
    autoscale_interval_ms: float = 50.0
    # Scale-out triggers: admission-control sheds observed in one interval,
    # or mean in-flight utilization in the hottest AZ.
    scale_up_shed_threshold: int = 4
    scale_up_utilization: float = 0.75
    # Scale-in trigger: every AZ's mean utilization below this floor.
    scale_down_utilization: float = 0.10
    min_nns_per_az: int = 1
    max_nns_per_az: int = 4
    # No two scaling decisions closer than this (per direction-agnostic).
    cooldown_ms: float = 120.0
    # Graceful drain: stop admitting, wait this long for in-flight ops to
    # finish (they virtually always do — this is a hang bound, not a kill).
    drain_grace_ms: float = 50.0
    drain_poll_ms: float = 1.0
    # Reconfiguration-latency watcher: poll the peers' membership views
    # until the change is visible (or give up after the timeout).
    visibility_poll_ms: float = 5.0
    visibility_timeout_ms: float = 5000.0

    def __post_init__(self) -> None:
        if self.membership_refresh_ms <= 0:
            raise ConfigError("membership_refresh_ms must be positive")
        if self.autoscale_interval_ms <= 0:
            raise ConfigError("autoscale_interval_ms must be positive")
        if self.min_nns_per_az < 1:
            raise ConfigError("min_nns_per_az must be at least 1")
        if self.max_nns_per_az < self.min_nns_per_az:
            raise ConfigError("max_nns_per_az must be >= min_nns_per_az")
        if self.drain_grace_ms < 0 or self.cooldown_ms < 0:
            raise ConfigError("drain_grace_ms / cooldown_ms must be >= 0")
        if not (0.0 <= self.scale_down_utilization
                < self.scale_up_utilization <= 1.0):
            raise ConfigError(
                "need 0 <= scale_down_utilization < scale_up_utilization <= 1"
            )


@dataclass
class ProvisionRecord:
    """One NN's provisioned interval, for NN·second cost accounting."""

    nn_id: int
    address: str
    az: int
    start_ms: float
    end_ms: Optional[float] = None  # None ⇒ still provisioned

    def nn_ms(self, now_ms: float) -> float:
        end = self.end_ms if self.end_ms is not None else now_ms
        return max(0.0, end - self.start_ms)


@dataclass
class ReconfigEvent:
    """One pool reconfiguration, from decision to client-visible capacity.

    ``decided_ms`` is when the operator/autoscaler committed to the change;
    ``completed_ms`` when the lifecycle finished (new NN serving, or drained
    NN fully stopped); ``visible_ms`` when the leader-maintained membership
    view — the thing clients actually read — reflects it.  The artifact's
    reconfiguration latency is ``visible_ms - decided_ms``.
    """

    kind: str  # "add" | "decommission" | "preempt"
    nn_id: int
    address: str
    az: int
    decided_ms: float
    completed_ms: Optional[float] = None
    visible_ms: Optional[float] = None
    detail: str = ""
    # Graceful-drain audit (decommission only): acked-but-uncommitted
    # group-commit batches settled during the drain.  The drained-NN ack
    # invariant pins this at zero.
    lost_acks_during_drain: int = 0
    forced_shutdown: bool = False  # grace expired with ops still in flight

    @property
    def latency_ms(self) -> Optional[float]:
        if self.visible_ms is None:
            return None
        return self.visible_ms - self.decided_ms

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "nn_id": self.nn_id,
            "address": self.address,
            "az": self.az,
            "decided_ms": self.decided_ms,
            "completed_ms": self.completed_ms,
            "visible_ms": self.visible_ms,
            "latency_ms": self.latency_ms,
            "detail": self.detail,
            "lost_acks_during_drain": self.lost_acks_during_drain,
            "forced_shutdown": self.forced_shutdown,
        }


class Autoscaler:
    """Load-driven NN pool scaling, as a deterministic DES process.

    Signals, sampled every ``autoscale_interval_ms``:

    * **Replacement floor** — any AZ with fewer than ``min_nns_per_az``
      serving (running, non-draining) NNs gets a new one immediately.
      This is what restores capacity after a spot preemption.
    * **Admission pressure** — the windowed delta of ``nn.ops_shed``
      across the pool; at/above ``scale_up_shed_threshold`` the hottest
      AZ scales out.
    * **Utilization** — per-AZ mean of in-flight ops over the admission
      cap (``robust.nn_max_inflight``, falling back to ``nn_cores``).
      Above ``scale_up_utilization`` scales the hottest AZ out; when every
      AZ sits below ``scale_down_utilization`` the most-populated AZ
      retires its highest-id non-leader NN via the graceful drain path.

    One scaling action per tick, gated by ``cooldown_ms`` (the replacement
    floor ignores the cooldown — restoring a dead AZ must not wait).  The
    loop reads counters and does arithmetic only: no RNG, fixed periods.
    """

    def __init__(self, deployment, config: ElasticConfig):
        self.fs = deployment
        self.config = config
        self.scale_ups = 0
        self.scale_downs = 0
        self.last_action_ms: Optional[float] = None
        self._last_shed = 0
        self._proc = None

    def start(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            return
        self._last_shed = self._total_shed()
        self._proc = self.fs.env.process(self._loop(), name="autoscaler")

    # -- signals -----------------------------------------------------------
    def _serving(self) -> list:
        return [
            nn for nn in self.fs.namenodes if nn.running and not nn.draining
        ]

    def _total_shed(self) -> int:
        return sum(nn.ops_shed for nn in self.fs.namenodes)

    def _inflight_cap(self) -> int:
        cfg = self.fs.config
        if cfg.robust is not None:
            return max(1, cfg.robust.nn_max_inflight)
        return max(1, cfg.nn_cores)

    def _utilization_by_az(self, serving) -> dict:
        cap = self._inflight_cap()
        by_az: dict = {}
        for nn in serving:
            by_az.setdefault(nn.az, []).append(nn.inflight / cap)
        return {az: sum(vals) / len(vals) for az, vals in by_az.items()}

    def _cooldown_ok(self, now: float) -> bool:
        return (
            self.last_action_ms is None
            or now - self.last_action_ms >= self.config.cooldown_ms
        )

    # -- the loop ----------------------------------------------------------
    def _loop(self):
        env = self.fs.env
        cfg = self.config
        while True:
            yield env.timeout(cfg.autoscale_interval_ms)
            serving = self._serving()
            counts = {az: 0 for az in self.fs.azs}
            for nn in serving:
                counts[nn.az] = counts.get(nn.az, 0) + 1

            # Replacement floor: an AZ below its minimum gets capacity now.
            refill = sorted(
                az for az, n in counts.items() if n < cfg.min_nns_per_az
            )
            if refill:
                self._scale_up(refill[0], reason="min-per-az")
                continue

            shed = self._total_shed()
            shed_delta = shed - self._last_shed
            self._last_shed = shed
            utilization = self._utilization_by_az(serving)
            if not utilization or not self._cooldown_ok(env.now):
                continue

            hot_az = max(
                utilization, key=lambda az: (utilization[az], -az)
            )
            pressed = (
                shed_delta >= cfg.scale_up_shed_threshold
                or utilization[hot_az] >= cfg.scale_up_utilization
            )
            if pressed and counts.get(hot_az, 0) < cfg.max_nns_per_az:
                self._scale_up(hot_az, reason="load")
                continue

            idle = all(
                u <= cfg.scale_down_utilization for u in utilization.values()
            )
            if idle:
                victim = self._pick_scale_in_victim(serving, counts)
                if victim is not None:
                    self.scale_downs += 1
                    self.last_action_ms = env.now
                    self._count("autoscale.down")
                    # Drain inline: the next sample naturally waits for the
                    # decommission to finish, which is cooldown in itself.
                    yield from self.fs.decommission_namenode(
                        victim, reason="autoscale-down"
                    )

    def _scale_up(self, az: int, reason: str) -> None:
        self.scale_ups += 1
        self.last_action_ms = self.fs.env.now
        self._count("autoscale.up")
        self.fs.add_namenode(az=az, reason=f"autoscale-{reason}")

    def _pick_scale_in_victim(self, serving, counts):
        """Highest-id non-leader NN in the most-populated AZ above min."""
        cfg = self.config
        candidates = [
            nn for nn in serving
            if counts.get(nn.az, 0) > cfg.min_nns_per_az
            and not nn.election.is_leader
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda nn: (counts[nn.az], nn.nn_id))

    def _count(self, name: str) -> None:
        obs = self.fs.env.obs
        if obs is not None:
            obs.registry.counter(name).inc()


def elastic_summary(deployment, completed_ops: int, now_ms: float) -> dict:
    """The artifact's elastic section: reconfig latency + cost efficiency."""
    records = deployment.provision_log
    events = deployment.reconfig_log
    nn_ms = sum(r.nn_ms(now_ms) for r in records)
    nn_seconds = nn_ms / 1000.0
    latencies = [e.latency_ms for e in events if e.latency_ms is not None]
    autoscaler = deployment.autoscaler
    return {
        "reconfigurations": [e.as_dict() for e in events],
        "reconfiguration_latency_ms": {
            "count": len(latencies),
            "mean": sum(latencies) / len(latencies) if latencies else None,
            "max": max(latencies) if latencies else None,
        },
        "nn_seconds_provisioned": nn_seconds,
        "ops_per_nn_second": (
            completed_ops / nn_seconds if nn_seconds > 0 else None
        ),
        "pool_size_final": sum(
            1 for nn in deployment.namenodes if nn.running
        ),
        "pool_size_peak": len(records),
        "scale_ups": autoscaler.scale_ups if autoscaler else 0,
        "scale_downs": autoscaler.scale_downs if autoscaler else 0,
    }
