"""File-system operations implemented as NDB transactions.

Every operation is a generator taking ``(ctx, txn, ...)`` and is executed
by a namenode under :func:`repro.ndb.client.run_transaction`, hinted with
the parent inode id so the transaction starts on the NDB node owning the
relevant partition (distribution-aware transactions).

Locking follows HopsFS's hierarchical/implicit scheme: only the target
inode(s) take row locks; ancestors and associated metadata are read at
read-committed.  Read-only operations (``readFile``, ``stat``, ``listDir``)
take no locks at all — in HopsFS-CL they are therefore served by AZ-local
replicas of Read Backup tables (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import (
    DirectoryNotEmptyError,
    FileAlreadyExistsError,
    FileNotFoundFsError,
    FsError,
    InvalidPathError,
    LeaseExpiredError,
    NotDirectoryError,
)
from ..ndb.client import NdbTransaction
from ..ndb.schema import LockMode
from .metadata import (
    BLOCKS_TABLE,
    INODES_TABLE,
    LEASES_TABLE,
    SMALL_FILE_MAX_BYTES,
    BlockRow,
    IdGenerator,
    InodeRow,
    LeaseRow,
)
from .pathlock import resolve_components, resolve_inode, resolve_parent, split_path

__all__ = ["FsContext", "FileContent", "mkdir", "create_file", "read_file",
           "stat", "exists", "list_dir", "delete", "rename", "chmod",
           "set_replication", "add_block", "complete_file", "mkdirs"]


@dataclass
class FsContext:
    """Services an operation needs beyond the transaction itself."""

    ids: IdGenerator
    now: Callable[[], float]
    # (client_hint, replication, exclude) -> tuple of DN addresses
    place_block: Optional[Callable] = None
    default_replication: int = 3
    lease_duration_ms: float = 60_000.0
    # NN-side path-component cache (see repro.hopsfs.dircache).
    dir_cache: Optional[object] = None


@dataclass(frozen=True)
class FileContent:
    """Result of ``readFile``: inline data or block locations."""

    inode: InodeRow
    small_data: Optional[bytes] = None
    blocks: tuple[BlockRow, ...] = ()

    @property
    def is_small(self) -> bool:
        return self.small_data is not None


# --------------------------------------------------------------------- helpers
def _lock_slot(txn: NdbTransaction, parent_id: int, name: str, mode=LockMode.EXCLUSIVE):
    """Lock the (parent, name) slot — phantom-safe: the row may not exist."""
    row = yield from txn.read(
        INODES_TABLE, (parent_id, name), partition_key=parent_id, lock=mode
    )
    return row


def _require_dir(row: InodeRow, path: str) -> None:
    if not row.is_dir:
        raise NotDirectoryError(f"{path} is not a directory")


# ------------------------------------------------------------------ operations
def mkdir(ctx: FsContext, txn: NdbTransaction, path: str):
    """Create one directory; parents must exist."""
    parent, name = yield from resolve_parent(txn, path, ctx.dir_cache)
    if parent.id != 1:
        # S-lock the parent so a concurrent delete cannot orphan the child.
        parent_locked = yield from _lock_slot(
            txn, parent.parent_id, parent.name, LockMode.SHARED
        )
        if parent_locked is None:
            raise FileNotFoundFsError(f"parent of {path} disappeared")
        _require_dir(parent_locked, path.rsplit("/", 1)[0] or "/")
    existing = yield from _lock_slot(txn, parent.id, name)
    if existing is not None:
        raise FileAlreadyExistsError(f"{path} already exists")
    row = InodeRow(
        id=ctx.ids.next_inode_id(),
        parent_id=parent.id,
        name=name,
        is_dir=True,
        mtime_ms=ctx.now(),
    )
    yield from txn.write(INODES_TABLE, row.pk, row, partition_key=parent.id)
    if ctx.dir_cache is not None:
        ctx.dir_cache.put(row)
    return row.id


def mkdirs(ctx: FsContext, txn: NdbTransaction, path: str):
    """Create a directory and any missing ancestors (like ``mkdir -p``)."""
    components = split_path(path)
    if not components:
        return 1
    parent_id = 1
    created = None
    for depth, name in enumerate(components):
        row = yield from txn.read(INODES_TABLE, (parent_id, name), partition_key=parent_id)
        if row is None:
            row = yield from _lock_slot(txn, parent_id, name)
        if row is None:
            row = InodeRow(
                id=ctx.ids.next_inode_id(),
                parent_id=parent_id,
                name=name,
                is_dir=True,
                mtime_ms=ctx.now(),
            )
            yield from txn.write(INODES_TABLE, row.pk, row, partition_key=parent_id)
            created = row.id
        elif not row.is_dir:
            raise NotDirectoryError("/" + "/".join(components[: depth + 1]) + " is a file")
        parent_id = row.id
    return created if created is not None else parent_id


def create_file(
    ctx: FsContext,
    txn: NdbTransaction,
    path: str,
    data: bytes = b"",
    replication: Optional[int] = None,
    client: str = "",
):
    """Create a file.  Small payloads (<128 KB) are stored inline in NDB.

    Larger files are created *under construction*: the client then calls
    :func:`add_block` / :func:`complete_file`, writing data to the block
    storage layer.
    """
    parent, name = yield from resolve_parent(txn, path, ctx.dir_cache)
    if parent.id != 1:
        parent_locked = yield from _lock_slot(
            txn, parent.parent_id, parent.name, LockMode.SHARED
        )
        if parent_locked is None:
            raise FileNotFoundFsError(f"parent of {path} disappeared")
        _require_dir(parent_locked, path.rsplit("/", 1)[0] or "/")
    existing = yield from _lock_slot(txn, parent.id, name)
    if existing is not None:
        raise FileAlreadyExistsError(f"{path} already exists")
    small = len(data) <= SMALL_FILE_MAX_BYTES
    row = InodeRow(
        id=ctx.ids.next_inode_id(),
        parent_id=parent.id,
        name=name,
        is_dir=False,
        size=len(data) if small else 0,
        replication=replication or ctx.default_replication,
        mtime_ms=ctx.now(),
        small_data=data if small else None,
        under_construction=not small,
    )
    yield from txn.write(
        INODES_TABLE, row.pk, row, partition_key=parent.id, size_hint=224 + len(data if small else b"")
    )
    if not small:
        lease = LeaseRow(
            inode_id=row.id, holder=client, expiry_ms=ctx.now() + ctx.lease_duration_ms
        )
        yield from txn.write(LEASES_TABLE, row.id, lease)
    return row.id


def read_file(ctx: FsContext, txn: NdbTransaction, path: str):
    """Read a file: inline data, or the block rows with their locations."""
    row = yield from resolve_inode(txn, path, ctx.dir_cache)
    if row.is_dir:
        raise FsError(f"{path} is a directory")
    if row.small_data is not None:
        return FileContent(inode=row, small_data=row.small_data)
    blocks = []
    for block_id in row.block_ids:
        block = yield from txn.read(BLOCKS_TABLE, block_id, partition_key=row.id)
        if block is not None:
            blocks.append(block)
    blocks.sort(key=lambda b: b.index)
    return FileContent(inode=row, blocks=tuple(blocks))


def stat(ctx: FsContext, txn: NdbTransaction, path: str):
    row = yield from resolve_inode(txn, path, ctx.dir_cache)
    return row


def exists(ctx: FsContext, txn: NdbTransaction, path: str):
    components = split_path(path)
    if not components:
        return True
    parent_id = 1
    row = None
    for depth, name in enumerate(components):
        row = ctx.dir_cache.get(parent_id, name) if ctx.dir_cache is not None else None
        if row is None:
            row = yield from txn.read(INODES_TABLE, (parent_id, name), partition_key=parent_id)
            if row is not None and row.is_dir and ctx.dir_cache is not None:
                ctx.dir_cache.put(row)
        if row is None:
            return False
        if not row.is_dir:
            # A file mid-path means the full path cannot exist.
            return depth == len(components) - 1
        parent_id = row.id
    return row is not None


def list_dir(ctx: FsContext, txn: NdbTransaction, path: str):
    """Consistent directory listing: one partition-pruned index scan."""
    row = yield from resolve_inode(txn, path, ctx.dir_cache)
    _require_dir(row, path)
    children = yield from txn.scan(INODES_TABLE, row.id)
    return sorted(child.name for _pk, child in children)


def delete(ctx: FsContext, txn: NdbTransaction, path: str, recursive: bool = False):
    """Delete a file or directory (optionally an entire subtree).

    The whole subtree delete runs in one transaction — HopsFS's subtree
    protocol batches very large trees, which we do not need at test scale.
    Returns the number of inodes removed.
    """
    parent, name = yield from resolve_parent(txn, path, ctx.dir_cache)
    row = yield from _lock_slot(txn, parent.id, name)
    if row is None:
        raise FileNotFoundFsError(f"{path} does not exist")
    if ctx.dir_cache is not None:
        ctx.dir_cache.invalidate(parent.id, name)
    removed = yield from _delete_tree(ctx, txn, row, recursive, path)
    return removed


def _delete_tree(ctx, txn, row: InodeRow, recursive: bool, path: str):
    removed = 1
    if row.is_dir:
        children = yield from txn.scan(INODES_TABLE, row.id)
        if children and not recursive:
            raise DirectoryNotEmptyError(f"{path} is not empty")
        for _pk, child in children:
            locked = yield from _lock_slot(txn, child.parent_id, child.name)
            if locked is None:
                continue
            removed += yield from _delete_tree(
                ctx, txn, locked, recursive, f"{path}/{child.name}"
            )
    else:
        for block_id in row.block_ids:
            yield from txn.delete(BLOCKS_TABLE, block_id, partition_key=row.id)
        if row.under_construction:
            yield from txn.delete(LEASES_TABLE, row.id)
    yield from txn.delete(INODES_TABLE, row.pk, partition_key=row.parent_id)
    return removed


def rename(ctx: FsContext, txn: NdbTransaction, src: str, dst: str):
    """Atomic rename — the operation object stores cannot do (Section I).

    Renaming a directory is O(1): children are keyed by the directory's
    inode id, which does not change.
    """
    src_parent, src_name = yield from resolve_parent(txn, src, ctx.dir_cache)
    dst_parent, dst_name = yield from resolve_parent(txn, dst, ctx.dir_cache)
    src_pk = (src_parent.id, src_name)
    dst_pk = (dst_parent.id, dst_name)
    if src_pk == dst_pk:
        raise InvalidPathError("rename onto itself")
    # Deterministic lock order prevents rename/rename deadlocks.
    locked = {}
    for pk in sorted((src_pk, dst_pk), key=repr):
        locked[pk] = yield from _lock_slot(txn, pk[0], pk[1])
    src_row = locked[src_pk]
    if src_row is None:
        raise FileNotFoundFsError(f"{src} does not exist")
    if locked[dst_pk] is not None:
        raise FileAlreadyExistsError(f"{dst} already exists")
    if src_row.is_dir:
        # Refuse to move a directory under itself (would cut a cycle out
        # of the namespace): check every ancestor of the destination.
        dst_components = split_path(dst)[:-1]
        ancestor_rows = yield from resolve_components(
            txn, dst_components, ctx.dir_cache
        )
        for ancestor in ancestor_rows:
            if ancestor is not None and ancestor.id == src_row.id:
                raise InvalidPathError(f"cannot move {src} under itself")
    yield from txn.delete(INODES_TABLE, src_pk, partition_key=src_parent.id)
    new_row = src_row.with_(parent_id=dst_parent.id, name=dst_name, mtime_ms=ctx.now())
    yield from txn.write(INODES_TABLE, dst_pk, new_row, partition_key=dst_parent.id)
    if ctx.dir_cache is not None:
        ctx.dir_cache.invalidate(src_parent.id, src_name)
        if new_row.is_dir:
            ctx.dir_cache.put(new_row)
    return new_row.id


def chmod(ctx: FsContext, txn: NdbTransaction, path: str, permission: int):
    parent, name = yield from resolve_parent(txn, path, ctx.dir_cache)
    row = yield from _lock_slot(txn, parent.id, name)
    if row is None:
        raise FileNotFoundFsError(f"{path} does not exist")
    yield from txn.write(
        INODES_TABLE, row.pk, row.with_(permission=permission, mtime_ms=ctx.now()),
        partition_key=parent.id,
    )


def set_replication(ctx: FsContext, txn: NdbTransaction, path: str, replication: int):
    if replication < 1:
        raise FsError("replication must be >= 1")
    parent, name = yield from resolve_parent(txn, path, ctx.dir_cache)
    row = yield from _lock_slot(txn, parent.id, name)
    if row is None:
        raise FileNotFoundFsError(f"{path} does not exist")
    if row.is_dir:
        raise FsError(f"{path} is a directory")
    yield from txn.write(
        INODES_TABLE, row.pk, row.with_(replication=replication), partition_key=parent.id
    )


def add_block(ctx: FsContext, txn: NdbTransaction, path: str, client: str = ""):
    """Allocate the next block of a file under construction.

    Placement is delegated to the block storage layer's policy (AZ-aware in
    HopsFS-CL, Section IV-C).  Returns the new :class:`BlockRow`.
    """
    parent, name = yield from resolve_parent(txn, path, ctx.dir_cache)
    row = yield from _lock_slot(txn, parent.id, name)
    if row is None:
        raise FileNotFoundFsError(f"{path} does not exist")
    if row.is_dir or not row.under_construction:
        raise FsError(f"{path} is not under construction")
    lease = yield from txn.read(LEASES_TABLE, row.id, lock=LockMode.SHARED)
    if lease is None or (client and lease.holder != client):
        raise LeaseExpiredError(f"no valid lease on {path} for {client!r}")
    if ctx.place_block is None:
        raise FsError("no block storage layer configured")
    locations = ctx.place_block(client, row.replication, ())
    block = BlockRow(
        block_id=ctx.ids.next_block_id(),
        inode_id=row.id,
        index=len(row.block_ids),
        size=0,
        locations=tuple(locations),
    )
    yield from txn.write(BLOCKS_TABLE, block.block_id, block, partition_key=row.id)
    yield from txn.write(
        INODES_TABLE,
        row.pk,
        row.with_(block_ids=row.block_ids + (block.block_id,)),
        partition_key=parent.id,
    )
    return block


def abandon_block(ctx: FsContext, txn: NdbTransaction, path: str, block_id: int, client: str = ""):
    """Discard an allocated block whose write pipeline failed.

    Removes both sides of the allocation — the block row and the id's slot
    in the inode's ``block_ids`` — so a later read never chases a block
    that holds no data.  The client calls this before asking for a fresh
    block with a new pipeline.
    """
    parent, name = yield from resolve_parent(txn, path, ctx.dir_cache)
    row = yield from _lock_slot(txn, parent.id, name)
    if row is None:
        raise FileNotFoundFsError(f"{path} does not exist")
    if row.is_dir or not row.under_construction:
        raise FsError(f"{path} is not under construction")
    lease = yield from txn.read(LEASES_TABLE, row.id, lock=LockMode.SHARED)
    if lease is None or (client and lease.holder != client):
        raise LeaseExpiredError(f"no valid lease on {path} for {client!r}")
    if block_id not in row.block_ids:
        # Retried abandon after the first attempt committed: nothing to do.
        return row.id
    yield from txn.delete(BLOCKS_TABLE, block_id, partition_key=row.id)
    yield from txn.write(
        INODES_TABLE,
        row.pk,
        row.with_(block_ids=tuple(b for b in row.block_ids if b != block_id)),
        partition_key=parent.id,
    )
    return row.id


def complete_file(ctx: FsContext, txn: NdbTransaction, path: str, size: int, client: str = ""):
    """Close a file under construction and release its lease."""
    parent, name = yield from resolve_parent(txn, path, ctx.dir_cache)
    row = yield from _lock_slot(txn, parent.id, name)
    if row is None:
        raise FileNotFoundFsError(f"{path} does not exist")
    if not row.under_construction:
        raise FsError(f"{path} is not under construction")
    yield from txn.write(
        INODES_TABLE,
        row.pk,
        row.with_(under_construction=False, size=size, mtime_ms=ctx.now()),
        partition_key=parent.id,
    )
    yield from txn.delete(LEASES_TABLE, row.id)
    return row.id
