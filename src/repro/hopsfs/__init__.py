"""HopsFS / HopsFS-CL: the distributed hierarchical file system.

Three layers (Fig. 1): the metadata storage layer (:mod:`repro.ndb`), the
metadata serving layer (stateless namenodes, leader election, AZ-local
server selection), and the block storage layer (placement policies,
pipelines, re-replication).  ``build_hopsfs(az_aware=True, ...)`` yields
HopsFS-CL; ``az_aware=False`` yields vanilla HopsFS.
"""

from .blocks import BlockManager, PlacementPolicy, choose_targets
from .client import HopsFsClient
from .config import HopsFsConfig
from .datanode import BlockStoreDatanode
from .elastic import (
    Autoscaler,
    ElasticConfig,
    ProvisionRecord,
    ReconfigEvent,
    elastic_summary,
)
from .filesystem import HopsFsDeployment, build_hopsfs
from .groupcommit import (
    AsyncCommitConfig,
    GroupAck,
    GroupCommitLedger,
    GroupCommitter,
)
from .leader import LeaderElectionService
from .listcache import ListingCache, ListingCacheConfig
from .metadata import (
    BLOCK_SIZE_BYTES,
    ROOT_INODE_ID,
    SMALL_FILE_MAX_BYTES,
    BlockRow,
    IdGenerator,
    InodeRow,
    LeaderRow,
    LeaseRow,
    define_fs_schema,
)
from .namenode import Namenode
from .ops import FileContent, FsContext
from .robust import CircuitBreaker, Deadline, RetryCache, RetryPolicy, RobustConfig

__all__ = [
    "BlockManager",
    "PlacementPolicy",
    "choose_targets",
    "HopsFsClient",
    "HopsFsConfig",
    "BlockStoreDatanode",
    "Autoscaler",
    "ElasticConfig",
    "ProvisionRecord",
    "ReconfigEvent",
    "elastic_summary",
    "HopsFsDeployment",
    "build_hopsfs",
    "AsyncCommitConfig",
    "GroupAck",
    "GroupCommitLedger",
    "GroupCommitter",
    "LeaderElectionService",
    "ListingCache",
    "ListingCacheConfig",
    "BLOCK_SIZE_BYTES",
    "ROOT_INODE_ID",
    "SMALL_FILE_MAX_BYTES",
    "BlockRow",
    "IdGenerator",
    "InodeRow",
    "LeaderRow",
    "LeaseRow",
    "define_fs_schema",
    "Namenode",
    "FileContent",
    "FsContext",
    "CircuitBreaker",
    "Deadline",
    "RetryCache",
    "RetryPolicy",
    "RobustConfig",
]
