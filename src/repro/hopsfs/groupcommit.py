"""Async group commit: batched metadata flushes with early acks.

The reproduced NDB commit protocol is synchronous — every metadata op
pays a full 2PC round before the client hears back (msg 14), which is the
protocol-level ceiling no kernel optimisation can lift.  This module adds
the AsyncFS-style escape hatch (PAPERS.md): the namenode groups multiple
*compatible* FS ops into one NDB transaction, lingers the flush behind a
size/time policy, and acks each client as soon as its op's redo record is
prepared — before the commit.  The ack carries an explicit *durability
horizon* (the group batch id); a client that needs durability issues an
``fsync`` barrier that waits for its horizon to settle.

Compatibility rule: two ops may share a batch only when no path of one is
a prefix of (or equal to) a path of the other.  Prefix-related ops are
serialized across batches, because an op's transaction reads the
namespace at read-committed and would not observe a prefix-related
sibling's still-prepared rows.  Non-grouped ops (reads, block ops) that
touch a path prefix-related to anything pending first wait for the
conflicting batches to settle — preserving read-your-writes on one NN.

Crash semantics: a namenode crash marks its open batch ``lost`` — the
flush RPC may or may not have reached the transaction coordinator, so the
batch either commits fully (NDB applies the whole transaction) or aborts
fully (take-over cleanup).  The chaos ``durability_horizon`` invariant
audits exactly that: committed batches' writes all survive, lost/aborted
batches apply all-or-nothing, and every fsync-confirmed horizon is
committed.

``HopsFsConfig.async_commit=None`` (the default) keeps all of this
dormant: no committer objects, no events, no RNG streams — the legacy
path stays bit-identical to the pinned golden schedules.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..errors import (
    ConfigError,
    DeadlineExceededError,
    FsError,
    NdbError,
    TransactionAbortedError,
)
from ..ndb.schema import TOMBSTONE, LockMode
from ..types import OpType
from .metadata import INODES_TABLE, RETRY_TABLE, SMALL_FILE_MAX_BYTES, RetryRow
from .pathlock import normalize_path, split_path

__all__ = [
    "GROUP_COMMIT_OPS",
    "AsyncCommitConfig",
    "GroupAck",
    "GroupBatch",
    "GroupCommitLedger",
    "GroupCommitter",
    "groupable",
    "op_paths",
    "paths_conflict",
]

# Ops the committer may fold into a shared transaction.  All of them
# validate before writing (see ops.py), so a failed member leaves no
# writes behind and the rest of the batch proceeds.  Block ops and reads
# stay on the sync path; large creates do too (their follow-up ADD_BLOCK
# needs the committed under-construction inode).
GROUP_COMMIT_OPS = frozenset(
    {
        OpType.MKDIR,
        OpType.MKDIRS,
        OpType.CREATE_FILE,
        OpType.DELETE_FILE,
        OpType.RENAME,
        OpType.CHMOD,
        OpType.SET_REPLICATION,
        OpType.COMPLETE_FILE,
    }
)


def groupable(op: OpType, kwargs) -> bool:
    """Whether this request may ride a group batch."""
    if op not in GROUP_COMMIT_OPS:
        return False
    if op is OpType.CREATE_FILE:
        data = kwargs.get("data") or b""
        return len(data) <= SMALL_FILE_MAX_BYTES
    return True


def op_paths(op: OpType, kwargs):
    """Normalized path component tuples an op touches (for conflicts)."""
    try:
        if op is OpType.RENAME:
            return (
                tuple(split_path(normalize_path(kwargs["src"]))),
                tuple(split_path(normalize_path(kwargs["dst"]))),
            )
        path = kwargs.get("path")
        if not path:
            return ()
        return (tuple(split_path(normalize_path(path))),)
    except (FsError, KeyError, TypeError):
        # Malformed paths fail validation in the op body; nothing for the
        # conflict rule to protect.
        return ()


def _prefix_related(a, b) -> bool:
    n = min(len(a), len(b))
    return a[:n] == b[:n]


def paths_conflict(a_paths, b_paths) -> bool:
    """True when any path of one side prefix-relates to one of the other."""
    for pa in a_paths:
        for pb in b_paths:
            if _prefix_related(pa, pb):
                return True
    return False


@dataclass(frozen=True)
class AsyncCommitConfig:
    """Opt-in group-commit policy (mirrors the ``robust`` pattern).

    ``linger_ms`` bounds how long an open batch waits for more ops after
    its first member; ``max_batch_ops`` flushes a full batch early.
    ``max_inflight_batches`` bounds the flush pipeline: the committer
    gathers (and acks) the next batch while up to that many earlier
    batches are still committing.  The flush retry loop mirrors
    :func:`repro.ndb.client.run_transaction`'s backoff, re-executing
    every member body in a fresh transaction.
    """

    linger_ms: float = 1.0
    max_batch_ops: int = 16
    max_inflight_batches: int = 4
    max_flush_retries: int = 8
    flush_backoff_base_ms: float = 2.0
    flush_backoff_max_ms: float = 40.0

    def __post_init__(self) -> None:
        if self.linger_ms < 0:
            raise ConfigError("group-commit linger cannot be negative")
        if self.max_batch_ops < 1:
            raise ConfigError("group-commit batch needs at least one op")
        if self.max_inflight_batches < 1:
            raise ConfigError("group-commit pipeline needs at least one slot")
        if self.max_flush_retries < 0:
            raise ConfigError("flush retry budget cannot be negative")
        if self.flush_backoff_base_ms <= 0 or self.flush_backoff_max_ms <= 0:
            raise ConfigError("flush backoff bounds must be positive")


class GroupAck:
    """Early ack: the op's result plus the durability horizon it rides."""

    __slots__ = ("result", "horizon")

    def __init__(self, result, horizon: int):
        self.result = result
        self.horizon = horizon

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GroupAck(horizon={self.horizon}, result={self.result!r})"


class GroupBatch:
    """One group-commit batch: its recorded writes and settle state."""

    __slots__ = (
        "batch_id",
        "owner",
        "state",  # 'open' | 'committed' | 'aborted' | 'lost'
        "writes",  # (table, pk, partition_key, value-or-TOMBSTONE), exec order
        "ops",  # (op.value, retry_id-or-None) per member, for reports
        "acked_ops",
        "opened_ms",
        "settled_ms",
    )

    def __init__(self, batch_id: int, owner):
        self.batch_id = batch_id
        self.owner = owner
        self.state = "open"
        self.writes: list = []
        self.ops: list = []
        self.acked_ops = 0
        self.opened_ms: Optional[float] = None
        self.settled_ms: Optional[float] = None


class GroupCommitLedger:
    """Deployment-wide record of every batch and its settle state.

    Batch ids are the durability horizons acks carry; ``confirmed`` holds
    the horizons fsync barriers have vouched for (the durability-horizon
    invariant checks those are committed).  ``lost_acks`` counts acks
    whose batch settled without committing — the early-ack gamble lost.
    """

    def __init__(self, env):
        self.env = env
        self.batches: dict[int, GroupBatch] = {}
        self._ids = itertools.count(1)
        self.confirmed: set[int] = set()
        self.lost_acks = 0
        self._waiters: dict[int, list] = {}

    def open_batch(self, owner) -> GroupBatch:
        batch = GroupBatch(next(self._ids), owner)
        self.batches[batch.batch_id] = batch
        return batch

    @property
    def horizon(self) -> int:
        """Highest committed batch id (0 when nothing committed yet)."""
        return max(
            (bid for bid, b in self.batches.items() if b.state == "committed"),
            default=0,
        )

    def settle(self, batch: GroupBatch, state: str) -> None:
        batch.state = state
        batch.settled_ms = self.env.now
        for ev in self._waiters.pop(batch.batch_id, ()):
            ev.succeed(state)

    def wait(self, batch_id: int):
        """Generator: wait until ``batch_id`` settles; returns its state."""
        batch = self.batches.get(batch_id)
        if batch is None:
            return "committed"  # ids only come from acks; settled long ago
        if batch.state != "open":
            return batch.state
        ev = self.env.event()
        self._waiters.setdefault(batch_id, []).append(ev)
        state = yield ev
        return state


class _Replayed:
    """Sentinel: a retried mutation found its durable retry-cache row."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class _RecordingTxn:
    """NdbTransaction proxy that mirrors writes into the batch record.

    The ledger needs the batch's effective write set to audit crash
    outcomes; ops run unmodified against this proxy.
    """

    __slots__ = ("txn", "batch")

    def __init__(self, txn, batch: GroupBatch):
        self.txn = txn
        self.batch = batch

    @property
    def txid(self):
        return self.txn.txid

    def read(self, table, pk, partition_key=None, lock=LockMode.NONE):
        return self.txn.read(table, pk, partition_key, lock)

    def scan(self, table, partition_key):
        return self.txn.scan(table, partition_key)

    def write(self, table, pk, value, partition_key=None, size_hint=None):
        self.batch.writes.append(
            (table, pk, pk if partition_key is None else partition_key, value)
        )
        return self.txn.write(table, pk, value, partition_key, size_hint)

    def delete(self, table, pk, partition_key=None):
        self.batch.writes.append(
            (table, pk, pk if partition_key is None else partition_key, TOMBSTONE)
        )
        return self.txn.delete(table, pk, partition_key)


class _GroupOp:
    """One queued request riding the group-commit path."""

    __slots__ = (
        "msg",
        "op",
        "fn",
        "kwargs",
        "span",
        "retry_id",
        "deadline_ms",
        "paths",
        "acked",
        "replayed",
        "result",
        "ack_ms",
    )

    def __init__(self, msg, op, fn, kwargs, span, retry_id, deadline_ms):
        self.msg = msg
        self.op = op
        self.fn = fn
        self.kwargs = kwargs
        self.span = span
        self.retry_id = retry_id
        self.deadline_ms = deadline_ms
        self.paths = op_paths(op, kwargs)
        self.acked = False
        self.replayed = False
        self.result = None
        self.ack_ms: Optional[float] = None


class _BatchCtx:
    """Execution context of one batch: its txn, members, span, fate."""

    __slots__ = ("batch", "txn", "rtxn", "members", "procs", "span", "retry_exc")

    def __init__(self, batch: GroupBatch, txn, rtxn, span):
        self.batch = batch
        self.txn = txn
        self.rtxn = rtxn
        self.members: list = []  # admitted _GroupOps still in the batch
        self.procs: list = []  # member body processes
        self.span = span
        self.retry_exc = None  # set by a member that hit a retryable abort


class GroupCommitter:
    """Per-namenode batching engine for the async metadata path.

    Two axes of concurrency make the batch path *faster* than the sync
    path rather than a serial bottleneck:

    - member bodies execute concurrently on the shared transaction (their
      paths are disjoint by the admission rule, so their lock footprints
      cannot collide), and each member is acked the moment its own body
      has prepared — the commit round is off the client's critical path;
    - flushes pipeline: while up to ``max_inflight_batches`` earlier
      batches run their commit rounds, the drain loop is already
      gathering and executing the next batch.  Only ops prefix-related
      to a still-unsettled batch are held back.
    """

    def __init__(self, nn, config: AsyncCommitConfig, ledger: GroupCommitLedger):
        self.nn = nn
        self.env = nn.env
        self.config = config
        self.ledger = ledger
        self.queue: deque = deque()
        self._wake = None
        self._proc = None
        self._gather: Optional[_BatchCtx] = None
        self._inflight: list = []  # _BatchCtx, flushing but not settled
        self._settle_waiters: list = []
        # Set by a barriered sync-path op: flush the open batch now rather
        # than waiting out the linger.
        self._flush_now = False
        # Crash epoch: bumped by on_crash().  Processes from a stale
        # generation abandon at their next resume point instead of touching
        # shared state — their open NDB transactions are left for the
        # cluster's inactivity reaper, exactly like a client that died
        # mid-txn.
        self._gen = 0
        self._rng = nn.ndb.rng.stream(f"groupcommit:{nn.addr}")
        self.batches_committed = 0
        self.batches_aborted = 0
        self.ops_grouped = 0

    # ------------------------------------------------------------- intake
    def submit(self, msg, op, fn, kwargs, span, retry_id, deadline_ms) -> None:
        """Enqueue one request; replies are the committer's job from here."""
        self.queue.append(_GroupOp(msg, op, fn, kwargs, span, retry_id, deadline_ms))
        self.ops_grouped += 1
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.env.process(
                self._drain(), name=f"{self.nn.addr}:group-commit"
            )
        elif self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    # ------------------------------------------------- sync-path barrier
    def _pending_conflict(self, paths) -> bool:
        """Paths prefix-related to any un-settled (gathering/flushing) op?"""
        gather = self._gather
        if gather is not None:
            for gop in gather.members:
                if paths_conflict(paths, gop.paths):
                    return True
        for ctx in self._inflight:
            for gop in ctx.members:
                if paths_conflict(paths, gop.paths):
                    return True
        return False

    def has_conflict(self, paths) -> bool:
        """Any pending (queued, gathering, or flushing) op conflicts?"""
        if not paths:
            return False
        if self._pending_conflict(paths):
            return True
        for gop in self.queue:
            if paths_conflict(paths, gop.paths):
                return True
        return False

    def await_clear(self, paths):
        """Generator: wait until nothing pending conflicts with ``paths``.

        Keeps read-your-writes on one NN: a sync-path op (read, block op)
        on a path prefix-related to an un-settled grouped mutation must
        not run at read-committed until that mutation's batch settles.
        """
        while self.has_conflict(paths):
            # A reader is blocked on the open batch: cut the linger short so
            # the barrier pays only the commit round, not the full linger.
            self._flush_now = True
            if self._wake is not None and not self._wake.triggered:
                self._wake.succeed()
            ev = self.env.event()
            self._settle_waiters.append(ev)
            yield ev

    def _notify_settled(self) -> None:
        waiters, self._settle_waiters = self._settle_waiters, []
        for ev in waiters:
            ev.succeed()

    # ----------------------------------------------------- graceful drain
    def drain_gracefully(self):
        """Generator: flush everything pending and wait for it to settle.

        The graceful-decommission counterpart of :meth:`on_crash`: instead
        of declaring open batches "lost", every queued and gathering op
        runs to a real commit or abort, so an acked op ends the drain
        confirmed durable and a failed one was replied-to with its error —
        nothing the NN acked is ever in doubt.  The caller has already
        stopped admission, so no new work arrives while we wait.
        """
        while self.queue or self._gather is not None or self._inflight:
            # Cut the linger short: a draining NN has no reason to wait for
            # more batch members that can no longer arrive.
            self._flush_now = True
            if self._wake is not None and not self._wake.triggered:
                self._wake.succeed()
            ev = self.env.event()
            self._settle_waiters.append(ev)
            yield ev

    @property
    def pending_batches(self) -> int:
        """Batches not yet settled (gathering + flushing)."""
        return len(self._inflight) + (1 if self._gather is not None else 0)

    # ------------------------------------------------------------- crash
    def on_crash(self) -> None:
        """The NN died: every un-settled batch's commit fate is ambiguous."""
        obs = self.env.obs
        doomed = list(self._inflight)
        if self._gather is not None:
            doomed.append(self._gather)
        for ctx in doomed:
            if ctx.batch.state != "open":
                continue
            for gop in ctx.members:
                if gop.acked:
                    self.ledger.lost_acks += 1
            self.ledger.settle(ctx.batch, "lost")
            if ctx.span is not None:
                obs.tracer.finish(ctx.span, outcome="lost")
                ctx.span = None
        self._gather = None
        self._inflight = []
        # Queued, never-executed requests: the network layer already failed
        # their client RPCs when the address went down.
        self.queue.clear()
        # Abandon (don't interrupt) in-flight processes: one may be parked
        # on an RPC whose completion event would then fail with no observer
        # and crash the kernel.  They stay registered, absorb the failure,
        # see the stale generation, and return silently.
        self._gen += 1
        self._proc = None
        self._wake = None
        self._notify_settled()

    # -------------------------------------------------------------- drain
    def _drain(self):
        gen = self._gen
        while self._gen == gen and self.queue:
            yield from self._gather_batch(gen)

    def _gather_batch(self, gen):
        env = self.env
        cfg = self.config
        nn = self.nn
        obs = env.obs
        # Backpressure: bound the flush pipeline.
        while len(self._inflight) >= cfg.max_inflight_batches:
            ev = env.event()
            self._settle_waiters.append(ev)
            yield ev
            if self._gen != gen:
                return
        batch = self.ledger.open_batch(nn.addr)
        ctx = _BatchCtx(batch, None, None, None)
        self._gather = ctx
        self._flush_now = False
        flush_deadline = env.now

        # Admit + launch: each admitted member's body runs as its own
        # process against the shared transaction and acks on completion.
        while True:
            if self.queue:
                cand = self.queue[0]
                blocked = (
                    not cand.paths
                    or any(
                        paths_conflict(cand.paths, g.paths) for g in ctx.members
                    )
                    or self._inflight_conflict(cand.paths)
                )
                if ctx.txn is not None and (
                    len(ctx.members) >= cfg.max_batch_ops or blocked
                ):
                    break  # flush; a later batch picks the head up
                if ctx.txn is None and cand.paths and self._inflight_conflict(cand.paths):
                    # Head must serialize after a flushing batch: wait for
                    # a settle, then re-check admission.
                    ev = env.event()
                    self._settle_waiters.append(ev)
                    yield ev
                    if self._gen != gen:
                        return
                    continue
                if ctx.txn is None and not cand.paths:
                    # Unparseable paths conflict with everything: run the
                    # op solo once the pipeline is empty (it will fail
                    # validation in its body anyway).
                    if self._inflight:
                        ev = env.event()
                        self._settle_waiters.append(ev)
                        yield ev
                        if self._gen != gen:
                            return
                        continue
                self.queue.popleft()
                if cand.deadline_ms is not None and env.now >= cand.deadline_ms:
                    nn.ops_failed += 1
                    nn.network.reply(
                        cand.msg,
                        DeadlineExceededError(
                            f"{cand.op.value} deadline expired in group queue"
                        ),
                        ok=False,
                    )
                    self._notify_settled()
                    continue
                if ctx.txn is None:
                    ctx.txn = nn.api.transaction(
                        hint_table=INODES_TABLE, hint_key=nn._hint_for(cand.kwargs)
                    )
                    batch.opened_ms = env.now
                    flush_deadline = env.now + cfg.linger_ms
                    if obs is not None:
                        ctx.span = obs.tracer.start(
                            "nn.group_commit",
                            host=str(nn.addr),
                            az=nn.az,
                            batch=batch.batch_id,
                        )
                        ctx.txn.obs_span = ctx.span
                    ctx.rtxn = _RecordingTxn(ctx.txn, batch)
                ctx.members.append(cand)
                ctx.procs.append(
                    env.process(
                        self._member(ctx, cand, gen),
                        name=f"{nn.addr}:group-op:{batch.batch_id}",
                    )
                )
                if not cand.paths:
                    break  # solo batch
                continue
            if ctx.txn is None:
                # Everything queued was shed before joining; nothing opened.
                self._gather = None
                self.ledger.settle(batch, "aborted")
                self._notify_settled()
                return
            remaining = flush_deadline - env.now
            if (
                remaining <= 0
                or len(ctx.members) >= cfg.max_batch_ops
                or (self._flush_now and ctx.txn is not None)
            ):
                # Linger expired, the batch filled (the size trigger must
                # fire even with an empty queue), or a reader barriers.
                break
            wake = env.event()
            self._wake = wake
            timer = env.timeout(remaining)
            yield env.any_of([wake, timer])
            if self._gen != gen:
                return
            self._wake = None

        # Hand the batch to the flush pipeline and keep gathering.
        self._gather = None
        if ctx.txn is None:
            self.ledger.settle(batch, "aborted")
            self._notify_settled()
            return
        self._inflight.append(ctx)
        env.process(
            self._flush(ctx, env.now - batch.opened_ms, gen),
            name=f"{nn.addr}:group-flush:{batch.batch_id}",
        )

    def _inflight_conflict(self, paths) -> bool:
        for ctx in self._inflight:
            for gop in ctx.members:
                if paths_conflict(paths, gop.paths):
                    return True
        return False

    # ------------------------------------------------------------- member
    def _member(self, ctx, gop, gen):
        """One member body: execute on the shared txn, ack early."""
        nn = self.nn
        try:
            result = yield from self._execute(ctx.rtxn, gop)
        except FsError as exc:
            if self._gen != gen:
                return  # crashed mid-body: on_crash settled the batch
            # Validation failure before any write (groupable ops
            # validate-then-write): fail this member, the batch proceeds.
            ctx.members.remove(gop)
            nn.ops_failed += 1
            nn.network.reply(gop.msg, exc, ok=False)
            self._notify_settled()
            return
        except NdbError as exc:
            # Includes "txn already finished": a sibling member's abort
            # finishes the shared txn while this body is still reading.
            if self._gen != gen:
                return
            ctx.retry_exc = exc  # whole-batch retry in the flush; unacked
            return
        if self._gen != gen:
            return
        if isinstance(result, _Replayed):
            # Durable retry row found: previously committed, so the reply
            # needs no horizon.
            ctx.members.remove(gop)
            nn.ops_served += 1
            if nn.retry_cache is not None:
                nn.retry_cache.put(tuple(gop.retry_id), result.value)
            nn.network.reply(
                gop.msg, result.value, size=nn.config.client_response_bytes
            )
            self._notify_settled()
            return
        ctx.batch.ops.append((gop.op.value, gop.retry_id))
        self._ack(gop, ctx.batch, result)

    # -------------------------------------------------------------- flush
    def _flush(self, ctx, linger_actual, gen):
        env = self.env
        cfg = self.config
        nn = self.nn
        batch = ctx.batch
        # Every member body must have prepared (or failed) before commit.
        alive = [p for p in ctx.procs if p.is_alive]
        if alive:
            yield env.all_of(alive)
        if self._gen != gen:
            return
        txn = ctx.txn
        rtxn = ctx.rtxn
        admitted = ctx.members
        retry_exc = ctx.retry_exc
        if not admitted:
            # Every member failed validation or replayed: nothing to commit.
            yield from txn.abort()
            if self._gen != gen:
                return
            self.ledger.settle(batch, "aborted")
            if ctx.span is not None:
                env.obs.tracer.finish(ctx.span, outcome="empty")
                ctx.span = None
            self._retire(ctx)
            return
        attempt = 0
        while True:
            if retry_exc is None:
                try:
                    yield from txn.commit()
                except TransactionAbortedError as exc:
                    if self._gen != gen:
                        return
                    retry_exc = exc
                else:
                    if self._gen != gen:
                        # Crash raced the commit and lost: the batch already
                        # settled as lost (the commit did land — "lost" means
                        # ambiguous, and the all-or-nothing audit still holds).
                        return
                    self.ledger.settle(batch, "committed")
                    self.batches_committed += 1
                    self._finish_commit(ctx, linger_actual, txn.write_count)
                    return
            yield from txn.abort()
            if self._gen != gen:
                return
            attempt += 1
            if not getattr(retry_exc, "retryable", True) or attempt > cfg.max_flush_retries:
                self._abort_batch(ctx, retry_exc)
                return
            backoff = min(
                cfg.flush_backoff_max_ms,
                cfg.flush_backoff_base_ms * (2 ** (attempt - 1)),
            )
            yield env.timeout(backoff * (0.5 + self._rng.random()))
            if self._gen != gen:
                return
            # Fresh transaction; every member body re-runs against it
            # (serially — the retry path is rare and correctness-critical).
            batch.writes.clear()
            batch.ops.clear()
            txn = nn.api.transaction(
                hint_table=INODES_TABLE, hint_key=nn._hint_for(admitted[0].kwargs)
            )
            if ctx.span is not None:
                txn.obs_span = ctx.span
            rtxn = _RecordingTxn(txn, batch)
            retry_exc = None
            kept = []
            pending = list(admitted)
            while pending:
                gop = pending.pop(0)
                try:
                    result = yield from self._execute(rtxn, gop)
                except FsError as exc:
                    if self._gen != gen:
                        return
                    # The namespace moved under an already-acked member (a
                    # concurrent writer won); its ack is now a lie the
                    # invariant will count.  Unacked members just fail.
                    if gop.acked:
                        self.ledger.lost_acks += 1
                    else:
                        nn.ops_failed += 1
                        nn.network.reply(gop.msg, exc, ok=False)
                    continue
                except NdbError as exc:
                    if self._gen != gen:
                        return
                    retry_exc = exc
                    kept.append(gop)
                    kept.extend(pending)
                    break
                if self._gen != gen:
                    return
                if isinstance(result, _Replayed):
                    # An earlier, ambiguously-lost commit actually landed.
                    gop.result = result.value
                    gop.replayed = True
                    kept.append(gop)
                    continue
                gop.result = result
                batch.ops.append((gop.op.value, gop.retry_id))
                kept.append(gop)
            admitted[:] = kept
            if not admitted:
                yield from txn.abort()
                if self._gen != gen:
                    return
                self.ledger.settle(batch, "aborted")
                if ctx.span is not None:
                    env.obs.tracer.finish(ctx.span, outcome="empty")
                    ctx.span = None
                self._retire(ctx)
                return

    # ---------------------------------------------------------- settling
    def _retire(self, ctx) -> None:
        """Drop a settled batch from the pipeline and wake waiters."""
        if ctx in self._inflight:
            self._inflight.remove(ctx)
        self._notify_settled()

    def _ack(self, gop, batch, result) -> None:
        gop.acked = True
        gop.ack_ms = self.env.now
        gop.result = result
        batch.acked_ops += 1
        self.nn.ops_served += 1
        self.nn.network.reply(
            gop.msg,
            GroupAck(result, batch.batch_id),
            size=self.nn.config.client_response_bytes,
        )

    def _finish_commit(self, ctx, linger_actual, write_count) -> None:
        nn = self.nn
        env = self.env
        now = env.now
        admitted = ctx.members
        for gop in admitted:
            if not gop.acked:
                self._ack(gop, ctx.batch, gop.result)  # late ack: commit won
            if gop.retry_id is not None:
                if nn.retry_cache is not None:
                    nn.retry_cache.put(tuple(gop.retry_id), gop.result)
                if not gop.replayed:
                    nn.mutation_ledger.append((tuple(gop.retry_id), gop.op.value))
        obs = env.obs
        if obs is not None:
            if ctx.span is not None:
                obs.tracer.finish(
                    ctx.span, outcome="committed", ops=len(admitted),
                    writes=write_count,
                )
                ctx.span = None
            reg = obs.registry
            reg.histogram(
                "nn.group_commit.batch_ops", buckets=(1, 2, 4, 8, 16, 32, 64)
            ).observe(len(admitted))
            reg.histogram("nn.group_commit.linger_ms").observe(linger_actual)
            lag = reg.histogram("nn.group_commit.durability_lag_ms")
            for gop in admitted:
                if gop.ack_ms is not None:
                    lag.observe(now - gop.ack_ms)
            if obs.timeseries is not None:
                obs.timeseries.inc("nn.group_commit.committed", now)
        self._retire(ctx)

    def _abort_batch(self, ctx, exc) -> None:
        nn = self.nn
        self.ledger.settle(ctx.batch, "aborted")
        self.batches_aborted += 1
        for gop in ctx.members:
            if gop.acked:
                self.ledger.lost_acks += 1
            else:
                nn.ops_failed += 1
                nn.network.reply(gop.msg, exc, ok=False)
        obs = self.env.obs
        if obs is not None:
            if ctx.span is not None:
                obs.tracer.finish(ctx.span, outcome="aborted", ops=len(ctx.members))
                ctx.span = None
            obs.registry.counter("nn.group_commit.aborts").inc()
            if obs.timeseries is not None:
                obs.timeseries.inc("nn.group_commit.aborted", self.env.now)
        self._retire(ctx)

    # ------------------------------------------------------------ bodies
    def _execute(self, rtxn, gop):
        """One member body, with the exactly-once retry-row bracketing."""
        nn = self.nn
        retry_id = gop.retry_id
        if retry_id is not None:
            prior = yield from rtxn.read(
                RETRY_TABLE,
                tuple(retry_id),
                partition_key=retry_id[0],
                lock=LockMode.EXCLUSIVE,
            )
            if prior is not None:
                return _Replayed(prior.result)
        result = yield from gop.fn(nn.ctx, rtxn, **gop.kwargs)
        if retry_id is not None:
            yield from rtxn.write(
                RETRY_TABLE,
                tuple(retry_id),
                RetryRow(client_id=retry_id[0], op_seq=retry_id[1], result=result),
                partition_key=retry_id[0],
            )
        return result
