"""Leader election among the metadata servers, via NDB rows.

Implements the NewSQL-based election of [28] as used by HopsFS: every NN
periodically bumps a counter in its row of the ``leader`` table and scans
the table; rows whose timestamp is recent identify the live NNs, and the
live NN with the smallest id is the leader.  HopsFS-CL extends each round
to also report the server's ``locationDomainId`` (Section IV-B3), which is
what lets clients pick an AZ-local metadata server.
"""

from __future__ import annotations

from typing import Optional

from ..errors import NdbError, TransactionAbortedError
from ..ndb.client import run_transaction
from .metadata import LEADER_TABLE, LeaderRow

__all__ = ["LeaderElectionService"]

# All leader rows share one partition key so a single partition-pruned scan
# returns the full membership view.
_LEADER_PARTITION = "leader"


class LeaderElectionService:
    """One NN's participation in the election protocol."""

    def __init__(self, namenode, period_ms: float, missed_rounds: int = 2):
        self.nn = namenode
        self.period_ms = period_ms
        self.missed_rounds = missed_rounds
        self.counter = 0
        self.leader_id: Optional[int] = None
        # Latest membership view: [(nn_id, address, az)], sorted by id.
        self.active: list[tuple[int, object, int]] = []
        self.rounds = 0
        # A retired NN (graceful decommission) stops heartbeating and deletes
        # its leader row so the membership view converges without waiting for
        # the liveness horizon to expire.
        self.retired = False
        self._loop_proc = None

    @property
    def is_leader(self) -> bool:
        return self.leader_id == self.nn.nn_id

    def start(self) -> None:
        # The loop exits lazily when the NN stops running; a restart must not
        # race a second election loop against one that has not yet noticed.
        self.retired = False
        if self._loop_proc is not None and self._loop_proc.is_alive:
            return
        self._loop_proc = self.nn.env.process(
            self._loop(), name=f"{self.nn.addr}:election"
        )

    def deregister(self):
        """Leave the election: stop the loop, then delete our leader row.

        Ordering matters: an in-flight round could re-write the row after a
        premature delete, so we first mark ourselves retired, wait for the
        heartbeat loop to observe that and exit, and only then delete.  Peers
        drop us from their view on their next scan — immediately, rather
        than after ``missed_rounds`` liveness-horizon periods as a crash
        would require.
        """
        env = self.nn.env
        self.retired = True
        poll_ms = max(1.0, self.period_ms / 10.0)
        while self._loop_proc is not None and self._loop_proc.is_alive:
            yield env.timeout(poll_ms)

        def body(txn):
            yield from txn.delete(
                LEADER_TABLE, self.nn.nn_id, partition_key=_LEADER_PARTITION
            )

        try:
            yield from run_transaction(
                self.nn.api, body, hint_table=LEADER_TABLE,
                hint_key=_LEADER_PARTITION,
            )
        except (NdbError, TransactionAbortedError):
            # Row delete is best-effort: a stale row ages out of the view
            # via the liveness horizon anyway.
            pass

    def _loop(self):
        env = self.nn.env
        while self.nn.running and not self.retired:
            try:
                yield from self._round()
            except (NdbError, TransactionAbortedError):
                pass  # NDB hiccup: keep the previous view, try next round
            self.rounds += 1
            yield env.timeout(self.period_ms)

    def _round(self):
        env = self.nn.env
        self.counter += 1
        row = LeaderRow(
            nn_id=self.nn.nn_id,
            counter=self.counter,
            updated_ms=env.now,
            location_domain_id=self.nn.az,
            address=self.nn.addr,
        )

        def body(txn):
            yield from txn.write(
                LEADER_TABLE, self.nn.nn_id, row, partition_key=_LEADER_PARTITION
            )
            rows = yield from txn.scan(LEADER_TABLE, _LEADER_PARTITION)
            return rows

        rows = yield from run_transaction(
            self.nn.api, body, hint_table=LEADER_TABLE, hint_key=_LEADER_PARTITION
        )
        horizon = env.now - self.period_ms * self.missed_rounds
        live = sorted(
            (r.nn_id, r.address, r.location_domain_id)
            for _pk, r in rows
            if r.updated_ms >= horizon or r.nn_id == self.nn.nn_id
        )
        self.active = live
        new_leader = live[0][0] if live else self.nn.nn_id
        if new_leader != self.leader_id:
            obs = env.obs
            if obs is not None:
                obs.registry.counter("election.leader_changes").inc()
                obs.tracer.event(
                    "election.leader_change", host=str(self.nn.addr),
                    old=self.leader_id, new=new_leader,
                )
        self.leader_id = new_leader
