"""Deployment builder: assemble HopsFS / HopsFS-CL clusters.

``build_hopsfs(az_aware=False, ...)`` gives vanilla HopsFS; with
``az_aware=True`` every layer becomes AZ-aware (HopsFS-CL): Read Backup on
all tables, AZ-aware TC selection and proximity ordering in NDB, AZ-local
metadata-server selection for clients, and AZ-aware block placement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import ConfigError
from ..ndb import NdbCluster, NdbConfig
from ..ndb.cluster import az_assignment_for
from ..net import Network, build_us_west1
from ..sim import Environment, RngRegistry
from ..types import ANY_AZ, AzId, NodeAddress, NodeKind
from .blocks import PlacementPolicy
from .client import HopsFsClient
from .config import HopsFsConfig
from .datanode import BlockStoreDatanode
from .elastic import Autoscaler, ElasticConfig, ProvisionRecord, ReconfigEvent
from .groupcommit import GroupCommitLedger
from .metadata import IdGenerator, define_fs_schema
from .namenode import Namenode
from .pathlock import root_row

__all__ = ["HopsFsDeployment", "build_hopsfs"]


@dataclass
class HopsFsDeployment:
    """A running HopsFS(-CL) cluster plus factories for clients."""

    env: Environment
    network: Network
    ndb: NdbCluster
    namenodes: list[Namenode]
    block_datanodes: list[BlockStoreDatanode]
    config: HopsFsConfig
    azs: tuple[AzId, ...]
    az_aware: bool
    ids: IdGenerator
    rng: RngRegistry
    # One applied-mutation ledger shared by every NN (robust mode writes
    # it); the chaos exactly-once invariant audits it for duplicate ids.
    mutation_ledger: list = field(default_factory=list)
    # Async group commit (config.async_commit set): the shared batch
    # ledger the durability-horizon invariant audits.  None on the
    # synchronous path.
    group_ledger: Optional[GroupCommitLedger] = None
    # Elastic serving tier (config.elastic set): the autoscaler process,
    # the reconfiguration log (ReconfigEvent rows the artifact reports),
    # per-NN provisioned intervals (NN·second cost accounting), and the
    # addresses legitimately removed from the pool — decommissioned
    # (graceful) vs preempted (spot kill) — which the chaos target and the
    # SLO liveness exemptions consult.
    autoscaler: Optional[Autoscaler] = None
    reconfig_log: list = field(default_factory=list)
    provision_log: list = field(default_factory=list)
    decommissioned: set = field(default_factory=set)
    preempted: set = field(default_factory=set)
    _client_ids: itertools.count = field(default_factory=lambda: itertools.count(1))
    _client_az_cycle: Optional[itertools.cycle] = None
    _nn_ids: Optional[itertools.count] = None
    _election_enabled: bool = True

    @property
    def topology(self):
        return self.network.topology

    def namenode_addrs(self) -> list[NodeAddress]:
        return [nn.addr for nn in self.namenodes]

    def client(self, az: Optional[AzId] = None) -> HopsFsClient:
        """Create a client host; AZs rotate over the deployment's AZs."""
        if az is None:
            if self._client_az_cycle is None:
                self._client_az_cycle = itertools.cycle(self.azs)
            az = next(self._client_az_cycle)
        index = next(self._client_ids)
        addr = NodeAddress(NodeKind.CLIENT, index)
        self.topology.add_host(addr, az=az, cores=8)
        return HopsFsClient(
            env=self.env,
            network=self.network,
            addr=addr,
            namenode_addrs=self.namenode_addrs(),
            location_domain_id=az if self.az_aware else ANY_AZ,
            rng=self.rng.stream(f"client:{index}"),
            request_bytes=self.config.client_request_bytes,
            max_failovers=self.config.client_max_failovers,
            robust=self.config.robust,
            client_id=str(addr),
            retry_rng=(
                self.rng.stream(f"client:{index}:retry")
                if self.config.robust is not None
                else None
            ),
            membership_refresh_ms=(
                self.config.elastic.membership_refresh_ms
                if self.config.elastic is not None
                else None
            ),
        )

    def prewarm_listing_caches(self) -> None:
        """Pre-materialize every NN's listing cache from committed NDB state.

        The paper's namenode bootstraps its cache with a snapshot when it
        subscribes to the changelog; the stream keeps it fresh from there.
        Call after the namespace is installed (experiment setup reaches
        steady state long before the measurement window).  No-op with the
        cache disabled.
        """
        if self.config.listing_cache is None:
            return
        rows: dict = {}
        for dn in self.ndb.datanodes.values():
            if not dn.running:
                continue
            for pk, row in dn.store.iter_rows("inodes"):
                rows.setdefault(pk, row)
        snapshot = [rows[pk] for pk in sorted(rows)]
        for nn in self.namenodes:
            if nn.running and nn.listing_cache is not None:
                nn.listing_cache.prewarm(snapshot)

    def leader_namenode(self) -> Optional[Namenode]:
        for nn in self.namenodes:
            if nn.running and nn.is_leader:
                return nn
        return None

    def await_election(self):
        """Generator: wait until the election view has stabilized.

        The first round only shows each NN its own row (concurrent rounds
        commit after the scan); after every live NN has completed two
        rounds the membership view and leader are consistent.
        """
        while any(nn.running and nn.election.rounds < 2 for nn in self.namenodes):
            yield self.env.timeout(1.0)

    # ----------------------------------------------------- elastic lifecycle
    @property
    def elastic(self) -> Optional[ElasticConfig]:
        return self.config.elastic

    def serving_namenodes(self) -> list[Namenode]:
        """NNs currently admitting work (running and not draining)."""
        return [nn for nn in self.namenodes if nn.running and not nn.draining]

    def add_namenode(
        self, az: Optional[AzId] = None, reason: str = "manual"
    ) -> Namenode:
        """Provision a new NN into the running pool (stateless: no data moves).

        The new NN registers a fresh host, joins the election (peers see it
        on their next scan), and starts admitting as soon as clients learn
        of it via membership refresh.  Block datanodes add it to their
        heartbeat fan-out so its block manager learns DN liveness within
        one heartbeat interval.
        """
        if self._nn_ids is None:
            self._nn_ids = itertools.count(
                max((nn.nn_id for nn in self.namenodes), default=0) + 1
            )
        if az is None:
            counts = {a: 0 for a in self.azs}
            for nn in self.serving_namenodes():
                counts[nn.az] = counts.get(nn.az, 0) + 1
            az = min(counts, key=lambda a: (counts[a], a))
        index = next(self._nn_ids)
        addr = NodeAddress(NodeKind.NAMENODE, index)
        self.topology.add_host(addr, az=az, cores=self.config.nn_cores)
        nn = Namenode(
            self.env,
            self.network,
            self.ndb,
            self.config,
            addr,
            az,
            nn_id=index,
            ids=self.ids,
            placement_policy=(
                PlacementPolicy.AZ_AWARE if self.az_aware else PlacementPolicy.DEFAULT
            ),
        )
        nn.mutation_ledger = self.mutation_ledger
        if self.group_ledger is not None:
            nn.attach_group_commit(self.group_ledger)
        if self.config.listing_cache is not None:
            nn.attach_listing_cache(self.ndb.changelog)
            self.ndb.changelog.subscribe(nn.addr)
        self.namenodes.append(nn)
        self.provision_log.append(
            ProvisionRecord(index, str(addr), az, start_ms=self.env.now)
        )
        for dn in self.block_datanodes:
            dn.namenode_addrs.append(addr)
        nn.start(election=self._election_enabled)
        event = ReconfigEvent(
            "add", index, str(addr), az, decided_ms=self.env.now, detail=reason
        )
        self.reconfig_log.append(event)
        event.completed_ms = self.env.now
        self._count("elastic.add")
        self._watch_visibility(nn, event, joining=True)
        return nn

    def decommission_namenode(self, nn, reason: str = "manual"):
        """Generator: gracefully drain an NN out of the pool.

        Stop admitting → finish (or shed after the grace) in-flight ops →
        flush any open group-commit batch to a real commit/abort → delete
        the leader row so the membership view converges immediately →
        shut down.  Nothing the NN acked is left in doubt; the
        drained-NN-ack invariant audits exactly that.
        """
        nn = self._resolve(nn)
        if nn is None or not nn.running or nn.addr in self.decommissioned:
            return
        env = self.env
        cfg = self.config.elastic or ElasticConfig()
        event = ReconfigEvent(
            "decommission", nn.nn_id, str(nn.addr), nn.az,
            decided_ms=env.now, detail=reason,
        )
        self.reconfig_log.append(event)
        self._count("elastic.decommission")
        # Flag the retirement to the SLO engine *at decision time*: the
        # NN's per-server series goes quiet from here on, and the liveness
        # floor must know the silence is planned before it starts burning.
        self._mark_retired(nn)
        lost_before = (
            self.group_ledger.lost_acks if self.group_ledger is not None else 0
        )
        forced = yield from nn.drain(
            grace_ms=cfg.drain_grace_ms, poll_ms=cfg.drain_poll_ms
        )
        yield from nn.election.deregister()
        nn.shutdown()
        event.forced_shutdown = bool(forced)
        event.lost_acks_during_drain = (
            (self.group_ledger.lost_acks - lost_before)
            if self.group_ledger is not None
            else 0
        )
        self.decommissioned.add(nn.addr)
        self._end_provision(nn)
        event.completed_ms = env.now
        self._watch_visibility(nn, event, joining=False)

    def preempt_namenode(self, nn, warning_ms: float = 5.0):
        """Generator: spot-style kill — a short warning, then the plug.

        During the warning the NN drains best-effort (stops admitting,
        hurries its open batch); whatever has not settled when the window
        closes is lost exactly as a crash would lose it.  Unlike a
        decommission the leader row is not deregistered — peers drop the
        NN only after the liveness horizon expires, and the SLO monitor is
        expected to *detect* the preemption (its ground-truth window).
        """
        nn = self._resolve(nn)
        if nn is None or not nn.running:
            return
        env = self.env
        event = ReconfigEvent(
            "preempt", nn.nn_id, str(nn.addr), nn.az,
            decided_ms=env.now, detail=f"warning={warning_ms}ms",
        )
        self.reconfig_log.append(event)
        self._count("elastic.preempt")
        drain = env.process(
            nn.drain(grace_ms=warning_ms, poll_ms=1.0),
            name=f"{nn.addr}:preempt-drain",
        )
        yield env.any_of([drain, env.timeout(warning_ms)])
        if nn.running:
            nn.shutdown()
        self.preempted.add(nn.addr)
        self._end_provision(nn)
        event.completed_ms = env.now
        self._watch_visibility(nn, event, joining=False)

    def _resolve(self, nn) -> Optional[Namenode]:
        if isinstance(nn, Namenode):
            return nn
        for cand in self.namenodes:
            if cand.addr == nn or str(cand.addr) == str(nn):
                return cand
        return None

    def _end_provision(self, nn) -> None:
        for rec in self.provision_log:
            if rec.nn_id == nn.nn_id and rec.end_ms is None:
                rec.end_ms = self.env.now
        for dn in self.block_datanodes:
            if nn.addr in dn.namenode_addrs:
                dn.namenode_addrs.remove(nn.addr)
        if nn.listing_cache is not None:
            # Retired NNs stop receiving changelog fan-out (the bus would
            # otherwise keep sending to a permanently-down address).
            self.ndb.changelog.unsubscribe(nn.addr)

    def _watch_visibility(self, nn, event: ReconfigEvent, joining: bool) -> None:
        """Poll peers' membership views until the change is client-visible."""
        cfg = self.config.elastic or ElasticConfig()

        def watch():
            deadline = self.env.now + cfg.visibility_timeout_ms
            while self.env.now < deadline:
                peers = [
                    p for p in self.namenodes
                    if p.running and p is not nn and p.election.rounds > 0
                ]
                if peers:
                    seen = [
                        any(row[0] == nn.nn_id for row in p.election.active)
                        for p in peers
                    ]
                    if joining and any(seen):
                        # In ≥1 peer's view: a client refresh can route here.
                        event.visible_ms = self.env.now
                        return
                    if not joining and not any(seen):
                        # Out of every view: no refresh can route here.
                        event.visible_ms = self.env.now
                        return
                elif not joining:
                    event.visible_ms = self.env.now
                    return
                yield self.env.timeout(cfg.visibility_poll_ms)

        self.env.process(watch(), name=f"{nn.addr}:reconfig-watch")

    def _mark_retired(self, nn) -> None:
        obs = self.env.obs
        if obs is not None and obs.timeseries is not None:
            obs.timeseries.inc(
                f"component.retired.nn.handle.{nn.addr}", self.env.now
            )

    def _count(self, name: str) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.registry.counter(name).inc()


def build_hopsfs(
    num_namenodes: int = 2,
    azs: Sequence[AzId] = (2,),
    az_aware: bool = False,
    ndb_replication: int = 2,
    num_ndb_datanodes: int = 12,
    num_block_datanodes: int = 0,
    env: Optional[Environment] = None,
    seed: int = 0,
    hopsfs_config: Optional[HopsFsConfig] = None,
    ndb_config: Optional[NdbConfig] = None,
    election: bool = True,
    heartbeats: bool = False,
    jitter_frac: float = 0.0,
    az_link_bandwidth_bytes_per_ms: Optional[float] = None,
    fully_replicated_leader: bool = False,
) -> HopsFsDeployment:
    """Build a full deployment in a fresh (or given) simulation environment.

    ``azs`` lists the AZs hosting data (paper setups: ``(2,)`` for one AZ,
    ``(2, 3)`` or ``(1, 2, 3)`` for HA).  Management nodes are placed one
    per region AZ with the arbitrator in the AZ with the fewest datanodes
    (Figures 3 and 4).
    """
    azs = tuple(azs)
    if not azs:
        raise ConfigError("need at least one AZ")
    env = env or Environment()
    rng = RngRegistry(seed=seed)
    topology = build_us_west1()
    network = Network(
        env,
        topology,
        jitter_frac=jitter_frac,
        rng=rng.stream("net") if jitter_frac else None,
        az_link_bandwidth_bytes_per_ms=az_link_bandwidth_bytes_per_ms,
    )
    config = hopsfs_config or HopsFsConfig()
    if ndb_config is None:
        ndb_config = NdbConfig(
            num_datanodes=num_ndb_datanodes,
            replication=ndb_replication,
            az_aware=az_aware,
        )
    schema = define_fs_schema(
        read_backup=az_aware, fully_replicated_leader=fully_replicated_leader
    )

    # Arbitrator AZ first: the region AZ hosting the fewest NDB datanodes.
    data_az_load = {az: 0 for az in range(1, topology.num_azs + 1)}
    dn_azs = az_assignment_for(ndb_config.num_datanodes, ndb_config.replication, list(azs))
    for az in dn_azs:
        data_az_load[az] += 1
    mgmt_azs = sorted(data_az_load, key=lambda az: (data_az_load[az], az))

    ndb = NdbCluster(
        env,
        network,
        ndb_config,
        schema,
        datanode_azs=dn_azs,
        mgmt_azs=mgmt_azs,
        rng=rng,
    )

    ids = IdGenerator()
    namenodes = []
    for i in range(num_namenodes):
        az = azs[i % len(azs)]
        addr = NodeAddress(NodeKind.NAMENODE, i + 1)
        topology.add_host(addr, az=az, cores=config.nn_cores)
        namenodes.append(
            Namenode(
                env,
                network,
                ndb,
                config,
                addr,
                az,
                nn_id=i + 1,
                ids=ids,
                placement_policy=(
                    PlacementPolicy.AZ_AWARE if az_aware else PlacementPolicy.DEFAULT
                ),
            )
        )

    block_datanodes = []
    for i in range(num_block_datanodes):
        az = azs[i % len(azs)]
        addr = NodeAddress(NodeKind.DATANODE, i + 1)
        topology.add_host(addr, az=az, cores=8)
        block_datanodes.append(
            BlockStoreDatanode(
                env,
                network,
                addr,
                az,
                namenode_addrs=[nn.addr for nn in namenodes],
                heartbeat_interval_ms=config.dn_heartbeat_interval_ms,
                disk_bandwidth_bytes_per_ms=config.dn_disk_bandwidth_bytes_per_ms,
            )
        )

    # All NNs append applied retried mutations to one shared ledger so the
    # exactly-once invariant sees duplicates across failovers.
    mutation_ledger: list = []
    for nn in namenodes:
        nn.mutation_ledger = mutation_ledger

    # Async group commit: one batch ledger shared by every NN (horizons
    # are deployment-global) plus a per-NN committer.
    group_ledger: Optional[GroupCommitLedger] = None
    if config.async_commit is not None:
        group_ledger = GroupCommitLedger(env)
        for nn in namenodes:
            nn.attach_group_commit(group_ledger)

    # Pre-materialized listing cache (opt-in): attach a per-NN cache and
    # subscribe each NN to the NDB changelog bus.  With config.listing_cache
    # None the bus has zero subscribers and publishes nothing — the legacy
    # path stays bit-identical to the pinned golden schedules.
    if config.listing_cache is not None:
        for nn in namenodes:
            nn.attach_listing_cache(ndb.changelog)
            ndb.changelog.subscribe(nn.addr)

    # Install the root directory before anything runs.
    ndb.preload("inodes", [((0, ""), 0, root_row())])

    ndb.start(heartbeats=heartbeats)
    for nn in namenodes:
        nn.start(election=election)
    for dn in block_datanodes:
        dn.start()

    deployment = HopsFsDeployment(
        env=env,
        network=network,
        ndb=ndb,
        namenodes=namenodes,
        block_datanodes=block_datanodes,
        config=config,
        azs=azs,
        az_aware=az_aware,
        ids=ids,
        rng=rng,
        mutation_ledger=mutation_ledger,
        group_ledger=group_ledger,
        _election_enabled=election,
    )
    # Seed the NN·second cost accounting with the initial pool.
    for nn in namenodes:
        deployment.provision_log.append(
            ProvisionRecord(nn.nn_id, str(nn.addr), nn.az, start_ms=env.now)
        )
    # Elastic serving tier (opt-in): the load-driven autoscaler process.
    # With config.elastic None nothing here runs — the legacy fixed pool
    # stays bit-identical to the pinned golden schedules.
    if config.elastic is not None and config.elastic.autoscale:
        deployment.autoscaler = Autoscaler(deployment, config.elastic)
        deployment.autoscaler.start()
    return deployment
