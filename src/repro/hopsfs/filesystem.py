"""Deployment builder: assemble HopsFS / HopsFS-CL clusters.

``build_hopsfs(az_aware=False, ...)`` gives vanilla HopsFS; with
``az_aware=True`` every layer becomes AZ-aware (HopsFS-CL): Read Backup on
all tables, AZ-aware TC selection and proximity ordering in NDB, AZ-local
metadata-server selection for clients, and AZ-aware block placement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import ConfigError
from ..ndb import NdbCluster, NdbConfig
from ..ndb.cluster import az_assignment_for
from ..net import Network, build_us_west1
from ..sim import Environment, RngRegistry
from ..types import ANY_AZ, AzId, NodeAddress, NodeKind
from .blocks import PlacementPolicy
from .client import HopsFsClient
from .config import HopsFsConfig
from .datanode import BlockStoreDatanode
from .groupcommit import GroupCommitLedger
from .metadata import IdGenerator, define_fs_schema
from .namenode import Namenode
from .pathlock import root_row

__all__ = ["HopsFsDeployment", "build_hopsfs"]


@dataclass
class HopsFsDeployment:
    """A running HopsFS(-CL) cluster plus factories for clients."""

    env: Environment
    network: Network
    ndb: NdbCluster
    namenodes: list[Namenode]
    block_datanodes: list[BlockStoreDatanode]
    config: HopsFsConfig
    azs: tuple[AzId, ...]
    az_aware: bool
    ids: IdGenerator
    rng: RngRegistry
    # One applied-mutation ledger shared by every NN (robust mode writes
    # it); the chaos exactly-once invariant audits it for duplicate ids.
    mutation_ledger: list = field(default_factory=list)
    # Async group commit (config.async_commit set): the shared batch
    # ledger the durability-horizon invariant audits.  None on the
    # synchronous path.
    group_ledger: Optional[GroupCommitLedger] = None
    _client_ids: itertools.count = field(default_factory=lambda: itertools.count(1))
    _client_az_cycle: Optional[itertools.cycle] = None

    @property
    def topology(self):
        return self.network.topology

    def namenode_addrs(self) -> list[NodeAddress]:
        return [nn.addr for nn in self.namenodes]

    def client(self, az: Optional[AzId] = None) -> HopsFsClient:
        """Create a client host; AZs rotate over the deployment's AZs."""
        if az is None:
            if self._client_az_cycle is None:
                self._client_az_cycle = itertools.cycle(self.azs)
            az = next(self._client_az_cycle)
        index = next(self._client_ids)
        addr = NodeAddress(NodeKind.CLIENT, index)
        self.topology.add_host(addr, az=az, cores=8)
        return HopsFsClient(
            env=self.env,
            network=self.network,
            addr=addr,
            namenode_addrs=self.namenode_addrs(),
            location_domain_id=az if self.az_aware else ANY_AZ,
            rng=self.rng.stream(f"client:{index}"),
            request_bytes=self.config.client_request_bytes,
            max_failovers=self.config.client_max_failovers,
            robust=self.config.robust,
            client_id=str(addr),
            retry_rng=(
                self.rng.stream(f"client:{index}:retry")
                if self.config.robust is not None
                else None
            ),
        )

    def leader_namenode(self) -> Optional[Namenode]:
        for nn in self.namenodes:
            if nn.running and nn.is_leader:
                return nn
        return None

    def await_election(self):
        """Generator: wait until the election view has stabilized.

        The first round only shows each NN its own row (concurrent rounds
        commit after the scan); after every live NN has completed two
        rounds the membership view and leader are consistent.
        """
        while any(nn.running and nn.election.rounds < 2 for nn in self.namenodes):
            yield self.env.timeout(1.0)


def build_hopsfs(
    num_namenodes: int = 2,
    azs: Sequence[AzId] = (2,),
    az_aware: bool = False,
    ndb_replication: int = 2,
    num_ndb_datanodes: int = 12,
    num_block_datanodes: int = 0,
    env: Optional[Environment] = None,
    seed: int = 0,
    hopsfs_config: Optional[HopsFsConfig] = None,
    ndb_config: Optional[NdbConfig] = None,
    election: bool = True,
    heartbeats: bool = False,
    jitter_frac: float = 0.0,
    az_link_bandwidth_bytes_per_ms: Optional[float] = None,
    fully_replicated_leader: bool = False,
) -> HopsFsDeployment:
    """Build a full deployment in a fresh (or given) simulation environment.

    ``azs`` lists the AZs hosting data (paper setups: ``(2,)`` for one AZ,
    ``(2, 3)`` or ``(1, 2, 3)`` for HA).  Management nodes are placed one
    per region AZ with the arbitrator in the AZ with the fewest datanodes
    (Figures 3 and 4).
    """
    azs = tuple(azs)
    if not azs:
        raise ConfigError("need at least one AZ")
    env = env or Environment()
    rng = RngRegistry(seed=seed)
    topology = build_us_west1()
    network = Network(
        env,
        topology,
        jitter_frac=jitter_frac,
        rng=rng.stream("net") if jitter_frac else None,
        az_link_bandwidth_bytes_per_ms=az_link_bandwidth_bytes_per_ms,
    )
    config = hopsfs_config or HopsFsConfig()
    if ndb_config is None:
        ndb_config = NdbConfig(
            num_datanodes=num_ndb_datanodes,
            replication=ndb_replication,
            az_aware=az_aware,
        )
    schema = define_fs_schema(
        read_backup=az_aware, fully_replicated_leader=fully_replicated_leader
    )

    # Arbitrator AZ first: the region AZ hosting the fewest NDB datanodes.
    data_az_load = {az: 0 for az in range(1, topology.num_azs + 1)}
    dn_azs = az_assignment_for(ndb_config.num_datanodes, ndb_config.replication, list(azs))
    for az in dn_azs:
        data_az_load[az] += 1
    mgmt_azs = sorted(data_az_load, key=lambda az: (data_az_load[az], az))

    ndb = NdbCluster(
        env,
        network,
        ndb_config,
        schema,
        datanode_azs=dn_azs,
        mgmt_azs=mgmt_azs,
        rng=rng,
    )

    ids = IdGenerator()
    namenodes = []
    for i in range(num_namenodes):
        az = azs[i % len(azs)]
        addr = NodeAddress(NodeKind.NAMENODE, i + 1)
        topology.add_host(addr, az=az, cores=config.nn_cores)
        namenodes.append(
            Namenode(
                env,
                network,
                ndb,
                config,
                addr,
                az,
                nn_id=i + 1,
                ids=ids,
                placement_policy=(
                    PlacementPolicy.AZ_AWARE if az_aware else PlacementPolicy.DEFAULT
                ),
            )
        )

    block_datanodes = []
    for i in range(num_block_datanodes):
        az = azs[i % len(azs)]
        addr = NodeAddress(NodeKind.DATANODE, i + 1)
        topology.add_host(addr, az=az, cores=8)
        block_datanodes.append(
            BlockStoreDatanode(
                env,
                network,
                addr,
                az,
                namenode_addrs=[nn.addr for nn in namenodes],
                heartbeat_interval_ms=config.dn_heartbeat_interval_ms,
                disk_bandwidth_bytes_per_ms=config.dn_disk_bandwidth_bytes_per_ms,
            )
        )

    # All NNs append applied retried mutations to one shared ledger so the
    # exactly-once invariant sees duplicates across failovers.
    mutation_ledger: list = []
    for nn in namenodes:
        nn.mutation_ledger = mutation_ledger

    # Async group commit: one batch ledger shared by every NN (horizons
    # are deployment-global) plus a per-NN committer.
    group_ledger: Optional[GroupCommitLedger] = None
    if config.async_commit is not None:
        group_ledger = GroupCommitLedger(env)
        for nn in namenodes:
            nn.attach_group_commit(group_ledger)

    # Install the root directory before anything runs.
    ndb.preload("inodes", [((0, ""), 0, root_row())])

    ndb.start(heartbeats=heartbeats)
    for nn in namenodes:
        nn.start(election=election)
    for dn in block_datanodes:
        dn.start()

    return HopsFsDeployment(
        env=env,
        network=network,
        ndb=ndb,
        namenodes=namenodes,
        block_datanodes=block_datanodes,
        config=config,
        azs=azs,
        az_aware=az_aware,
        ids=ids,
        rng=rng,
        mutation_ledger=mutation_ledger,
        group_ledger=group_ledger,
    )
