"""HopsFS metadata schema: normalized file-system tables in NDB.

Mirrors HopsFS (FAST'17): the namespace is stored fully normalized in NDB.
The ``inodes`` table is keyed by ``(parent_id, name)`` and *partitioned by
parent_id*, so all children of a directory live in one partition — a
directory listing is a single partition-pruned index scan, and path
resolution is a chain of primary-key reads.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

from ..ndb.schema import Schema

__all__ = [
    "InodeRow",
    "BlockRow",
    "LeaseRow",
    "LeaderRow",
    "RetryRow",
    "ROOT_INODE_ID",
    "SMALL_FILE_MAX_BYTES",
    "BLOCK_SIZE_BYTES",
    "define_fs_schema",
    "IdGenerator",
]

ROOT_INODE_ID = 1
# Files under 128 KB live with their metadata in NDB (Section II-A3).
SMALL_FILE_MAX_BYTES = 128 * 1024
# Large files are split into 128 MB blocks.
BLOCK_SIZE_BYTES = 128 * 1024 * 1024

INODES_TABLE = "inodes"
BLOCKS_TABLE = "blocks"
LEASES_TABLE = "leases"
LEADER_TABLE = "leader"
RETRY_TABLE = "retry_cache"


@dataclass(frozen=True)
class InodeRow:
    """One row of the ``inodes`` table.

    pk = ``(parent_id, name)``; partition key = ``parent_id``.
    """

    id: int
    parent_id: int
    name: str
    is_dir: bool
    size: int = 0
    replication: int = 3
    permission: int = 0o755
    mtime_ms: float = 0.0
    # Small files: payload stored inline (None for directories/large files).
    small_data: Optional[bytes] = None
    # Large files: ordered block ids.
    block_ids: tuple[int, ...] = ()
    under_construction: bool = False

    @property
    def pk(self) -> tuple[int, str]:
        return (self.parent_id, self.name)

    def with_(self, **changes) -> "InodeRow":
        return replace(self, **changes)


@dataclass(frozen=True)
class BlockRow:
    """One row of the ``blocks`` table.

    pk = ``block_id``; partition key = ``inode_id`` so a file's blocks are
    colocated with a single partition scan.
    """

    block_id: int
    inode_id: int
    index: int
    size: int = 0
    # Addresses of block-storage datanodes holding replicas.
    locations: tuple = ()

    def with_(self, **changes) -> "BlockRow":
        return replace(self, **changes)


@dataclass(frozen=True)
class LeaseRow:
    """Writer lease for a file under construction; pk = inode_id."""

    inode_id: int
    holder: str
    expiry_ms: float


@dataclass(frozen=True)
class LeaderRow:
    """One metadata server's row in the leader-election table.

    The election protocol [28] stores a monotonically increasing counter per
    NN; HopsFS-CL extends each round to also report the server's AZ
    (Section IV-B3).
    """

    nn_id: int
    counter: int
    updated_ms: float
    location_domain_id: int = 0
    address: object = None


@dataclass(frozen=True)
class RetryRow:
    """Recorded result of one retried-mutation id (HDFS RetryCache, but
    transactional: written in the same NDB transaction as the mutation, so
    an NN crash after commit cannot lose it).

    pk = ``(client_id, op_seq)``; partition key = ``client_id`` so one
    client's retry state lives in one partition.
    """

    client_id: str
    op_seq: int
    result: object = None

    @property
    def pk(self) -> tuple[str, int]:
        return (self.client_id, self.op_seq)


def define_fs_schema(read_backup: bool, fully_replicated_leader: bool = False) -> Schema:
    """Create the HopsFS table set.

    HopsFS-CL "ensures that all the tables are Read Backup enabled"
    (Section IV-A5); vanilla HopsFS leaves the option off.  The tiny, hot
    leader-election table can additionally use the paper's Fully
    Replicated option (Section IV-A3) so every NN scans a local copy:
    slower (rare) writes for AZ-local reads everywhere.
    """
    schema = Schema()
    schema.define(INODES_TABLE, read_backup=read_backup, row_bytes=224)
    schema.define(BLOCKS_TABLE, read_backup=read_backup, row_bytes=160)
    schema.define(LEASES_TABLE, read_backup=read_backup, row_bytes=96)
    schema.define(RETRY_TABLE, read_backup=read_backup, row_bytes=128)
    schema.define(
        LEADER_TABLE,
        read_backup=read_backup,
        fully_replicated=fully_replicated_leader,
        row_bytes=96,
    )
    return schema


@dataclass
class IdGenerator:
    """Allocates inode/block ids in batches, like HopsFS's id service.

    HopsFS namenodes grab id ranges from NDB and hand them out locally; we
    model the outcome (globally unique, mostly-sequential ids) without the
    extra transactions.
    """

    _inode_ids: itertools.count = field(default_factory=lambda: itertools.count(ROOT_INODE_ID + 1))
    _block_ids: itertools.count = field(default_factory=lambda: itertools.count(1_000_000))

    def next_inode_id(self) -> int:
        return next(self._inode_ids)

    def next_block_id(self) -> int:
        return next(self._block_ids)
