"""Namenode-side directory (path-component) cache.

HopsFS namenodes cache the inodes of directory path components (FAST'17):
the top of the hierarchy is read-mostly, and without the cache every
operation's path resolution would hammer the partition holding the root
directory's children.  Entries are directories only, expire after a TTL,
and are invalidated locally when this NN mutates the directory.  Staleness
across NNs is bounded by the TTL and is safe: every operation's target
correctness is still guarded by its row locks in NDB (a stale parent makes
the operation's locked read fail, and the client retries).
"""

from __future__ import annotations

from typing import Callable, Optional

from .metadata import InodeRow

__all__ = ["DirCache"]


class DirCache:
    """Maps ``(parent_id, name)`` to a directory's :class:`InodeRow`."""

    def __init__(
        self,
        now: Callable[[], float],
        ttl_ms: float = 5000.0,
        max_entries: int = 100_000,
        env=None,
    ):
        self._now = now
        self.ttl_ms = ttl_ms
        self.max_entries = max_entries
        self._entries: dict[tuple[int, str], tuple[float, InodeRow]] = {}
        # Plain ints stay the source of truth (tests compare them as ints);
        # the obs registry mirrors them as mergeable Counters when tracing
        # is attached to the env.
        self.hits = 0
        self.misses = 0
        self._env = env

    def _count(self, name: str) -> None:
        env = self._env
        if env is not None and env.obs is not None:
            env.obs.registry.counter(name).inc()

    def get(self, parent_id: int, name: str) -> Optional[InodeRow]:
        entry = self._entries.get((parent_id, name))
        if entry is None:
            self.misses += 1
            self._count("nn.dircache.miss")
            return None
        cached_at, row = entry
        if self._now() - cached_at > self.ttl_ms:
            del self._entries[(parent_id, name)]
            self.misses += 1
            self._count("nn.dircache.miss")
            return None
        self.hits += 1
        self._count("nn.dircache.hit")
        return row

    def peek(self, parent_id: int, name: str) -> Optional[InodeRow]:
        """TTL-checked lookup that leaves the hit/miss counters untouched.

        The listing cache consults intermediate directory components here
        during its pre-pool peek; counting those probes would double-book
        every cacheable read against the dir-cache hit rate.
        """
        entry = self._entries.get((parent_id, name))
        if entry is None:
            return None
        cached_at, row = entry
        if self._now() - cached_at > self.ttl_ms:
            del self._entries[(parent_id, name)]
            return None
        return row

    def put(self, row: InodeRow) -> None:
        if not row.is_dir:
            return
        key = (row.parent_id, row.name)
        # Bounded LRU: evict the oldest insertion instead of wiping the
        # whole cache (which caused a deterministic periodic miss storm on
        # the root-component hot path every time the cap was reached).
        # Dict insertion order gives a deterministic eviction victim.
        if self._entries.pop(key, None) is None and len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = (self._now(), row)

    def invalidate(self, parent_id: int, name: str) -> None:
        self._entries.pop((parent_id, name), None)

    def __len__(self) -> int:
        return len(self._entries)
