"""Namenode-side directory (path-component) cache.

HopsFS namenodes cache the inodes of directory path components (FAST'17):
the top of the hierarchy is read-mostly, and without the cache every
operation's path resolution would hammer the partition holding the root
directory's children.  Entries are directories only, expire after a TTL,
and are invalidated locally when this NN mutates the directory.  Staleness
across NNs is bounded by the TTL and is safe: every operation's target
correctness is still guarded by its row locks in NDB (a stale parent makes
the operation's locked read fail, and the client retries).
"""

from __future__ import annotations

from typing import Callable, Optional

from .metadata import InodeRow

__all__ = ["DirCache"]


class DirCache:
    """Maps ``(parent_id, name)`` to a directory's :class:`InodeRow`."""

    def __init__(self, now: Callable[[], float], ttl_ms: float = 5000.0, max_entries: int = 100_000):
        self._now = now
        self.ttl_ms = ttl_ms
        self.max_entries = max_entries
        self._entries: dict[tuple[int, str], tuple[float, InodeRow]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, parent_id: int, name: str) -> Optional[InodeRow]:
        entry = self._entries.get((parent_id, name))
        if entry is None:
            self.misses += 1
            return None
        cached_at, row = entry
        if self._now() - cached_at > self.ttl_ms:
            del self._entries[(parent_id, name)]
            self.misses += 1
            return None
        self.hits += 1
        return row

    def put(self, row: InodeRow) -> None:
        if not row.is_dir:
            return
        if len(self._entries) >= self.max_entries:
            self._entries.clear()
        self._entries[(row.parent_id, row.name)] = (self._now(), row)

    def invalidate(self, parent_id: int, name: str) -> None:
        self._entries.pop((parent_id, name), None)

    def __len__(self) -> int:
        return len(self._entries)
