"""The HopsFS DFS client.

Clients pick one metadata server and stick with it until it fails
(Section II-A2).  In HopsFS-CL the selection is AZ-local: the client asks
the leader-maintained membership list for servers sharing its
``locationDomainId`` and falls back to a random live server (Section
IV-B3, ``locationDomainId`` 0 disables the affinity).

With :class:`~repro.hopsfs.robust.RobustConfig` attached the request path
is hardened against *gray* failures: every RPC carries a timeout and the
op's absolute deadline, timeouts trigger failover, retries back off with
deterministic jitter under a retry budget, read-class ops hedge to a
second NN after a configurable delay, mutations carry ``(client_id,
op_seq)`` retry ids for exactly-once replay, and a per-NN circuit breaker
routes around persistently slow servers.  Without it (the default) the
legacy fail-stop path is bit-identical to earlier releases.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import (
    DeadlineExceededError,
    FsError,
    HostUnreachableError,
    NoNamenodeError,
    RpcTimeoutError,
    ServerBusyError,
    ServerDrainingError,
)
from ..net.network import Network
from ..sim import Environment
from ..types import ANY_AZ, AzId, NodeAddress, OpType
from .datanode import ReadBlockReq, WriteBlockReq
from .groupcommit import GroupAck
from .metadata import BLOCK_SIZE_BYTES, SMALL_FILE_MAX_BYTES
from .robust import CircuitBreaker, Deadline, RobustConfig

__all__ = ["HopsFsClient"]


class HopsFsClient:
    """A file-system client bound to one simulated host."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        addr: NodeAddress,
        namenode_addrs,
        location_domain_id: AzId = ANY_AZ,
        rng=None,
        request_bytes: int = 256,
        max_failovers: int = 4,
        robust: Optional[RobustConfig] = None,
        client_id: Optional[str] = None,
        retry_rng=None,
        membership_refresh_ms: Optional[float] = None,
    ):
        self.env = env
        self.network = network
        self.addr = addr
        self.namenode_addrs = list(namenode_addrs)
        self.location_domain_id = location_domain_id
        self.rng = rng
        self.request_bytes = request_bytes
        self.max_failovers = max_failovers
        self.robust = robust
        self.client_id = client_id if client_id is not None else str(addr)
        # Jitter comes from its own named stream so enabling retries never
        # perturbs the draws of the selection RNG (determinism contract).
        self.retry_rng = retry_rng
        self.current_nn: Optional[NodeAddress] = None
        self.failovers = 0
        self.timeouts = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.busy_rejections = 0
        self.bootstrap_exhaustions = 0
        # (op, deadline_expires_ms, finished_ms) for ops that outlived their
        # deadline by more than the one-hop slack — the chaos deadline
        # invariant reads this.
        self.deadline_overruns: list[tuple] = []
        # Async group commit: highest durability horizon acked to this
        # client, and the horizons not yet confirmed by an fsync barrier.
        self.durability_horizon = 0
        self._pending_horizons: set[int] = set()
        self._op_seq = itertools.count(1)
        self._breakers: dict[NodeAddress, CircuitBreaker] = {}
        # Servers that bounced us with ServerDrainingError: skipped by
        # selection and membership refresh until they leave the advertised
        # view for good (the view still lists them while they drain).
        self._draining_nns: set[NodeAddress] = set()
        network.register(addr)
        # Elastic serving tier (opt-in): periodically swap the static
        # bootstrap list for the leader-maintained membership view, so the
        # client tracks NNs joining and leaving the pool.  None (the
        # default) spawns nothing — legacy schedules are untouched.
        self.membership_refresh_ms = membership_refresh_ms
        self.membership_refreshes = 0
        if membership_refresh_ms is not None:
            env.process(
                self._membership_loop(), name=f"{addr}:membership"
            )

    # ------------------------------------------------------- NN selection
    def _choice(self, seq):
        if self.rng is None:
            return seq[0]
        return self.rng.choice(seq)

    def _count(self, name: str) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.registry.counter(name).inc()

    def _breaker(self, nn: NodeAddress) -> CircuitBreaker:
        breaker = self._breakers.get(nn)
        if breaker is None:
            breaker = CircuitBreaker(
                self.robust.breaker_threshold, self.robust.breaker_reset_ms
            )
            self._breakers[nn] = breaker
        return breaker

    def _breaker_open(self, nn: NodeAddress) -> bool:
        breaker = self._breakers.get(nn)
        return breaker is not None and breaker.is_open(self.env.now)

    def _record_nn_failure(self, nn: NodeAddress) -> None:
        if self.robust is not None and nn is not None:
            if self._breaker(nn).record_failure(self.env.now):
                self._count("client.breaker_trips")

    def _membership_loop(self):
        env = self.env
        while True:
            yield env.timeout(self.membership_refresh_ms)
            yield from self._refresh_membership()

    def _refresh_membership(self):
        """Generator: one membership-refresh round against any live NN.

        On success the active view *replaces* the bootstrap list, and all
        per-NN client state keyed by address — circuit breakers, the sticky
        current NN, and thereby the hedge-candidate set (which is drawn
        from ``namenode_addrs``) — is dropped for NNs no longer in the
        view, so a decommissioned NN can never be picked as a hedge target
        or leak breaker entries.
        """
        robust = self.robust
        candidates = [] if self.current_nn is None else [self.current_nn]
        candidates += [nn for nn in self.namenode_addrs if nn not in candidates]
        for nn in candidates:
            if robust is not None and self._breaker_open(nn):
                continue
            try:
                active = yield self.network.call(
                    self.addr, nn, "get_active_nns", size=self.request_bytes,
                    timeout_ms=(
                        robust.op_timeout_ms if robust is not None else None
                    ),
                )
            except HostUnreachableError:
                continue
            except RpcTimeoutError:
                self.timeouts += 1
                self._count("client.timeouts")
                self._record_nn_failure(nn)
                continue
            if active:  # empty ⇒ election not converged: keep the old view
                self._apply_membership(active)
            return
        # Every candidate unreachable this round: retry next period.

    def _discard_namenode(self, nn: Optional[NodeAddress]) -> None:
        """Drop one server from the local view (it told us it is leaving).

        The drop is sticky: the draining server stays in the advertised
        membership view until its drain finishes, so without the tombstone
        the next refresh or discovery round would re-add it and we would
        bounce off it again.
        """
        if nn is None:
            return
        self._draining_nns.add(nn)
        self.namenode_addrs = [a for a in self.namenode_addrs if a != nn]
        self._breakers.pop(nn, None)
        if self.current_nn == nn:
            self.current_nn = None

    def _apply_membership(self, active) -> None:
        view = [entry[1] for entry in active]
        # Draining servers gone from the view are gone for good (handles
        # are never reused); the ones still advertised stay tombstoned.
        self._draining_nns.intersection_update(view)
        addrs = [a for a in view if a not in self._draining_nns]
        self.namenode_addrs = addrs
        current = set(addrs)
        for nn in list(self._breakers):
            if nn not in current:
                del self._breakers[nn]
        if self.current_nn is not None and self.current_nn not in current:
            self.current_nn = None
        self.membership_refreshes += 1
        self._count("client.membership_refresh")

    def _pick_namenode(self, deadline: Optional[Deadline] = None):
        """Fetch the active-NN list from any live NN, then apply the policy.

        With a robust config, bootstrap calls are themselves bounded by the
        RPC timeout (a degraded link must not hang server discovery) and
        NNs behind an open circuit breaker are skipped — unless every
        breaker is open, in which case the client fails open and tries
        them all rather than giving up without a single packet.
        """
        robust = self.robust
        bootstrap = list(self.namenode_addrs)
        if self.rng is not None:
            self.rng.shuffle(bootstrap)
        if robust is not None:
            closed = [nn for nn in bootstrap if not self._breaker_open(nn)]
            if closed:
                bootstrap = closed
        active = None
        for nn in bootstrap:
            timeout_ms = None
            if robust is not None:
                timeout_ms = robust.op_timeout_ms
                if deadline is not None:
                    remaining = deadline.remaining(self.env.now)
                    if remaining <= 0:
                        raise DeadlineExceededError(
                            "deadline expired during server discovery"
                        )
                    timeout_ms = min(timeout_ms, remaining)
            try:
                active = yield self.network.call(
                    self.addr, nn, "get_active_nns", size=self.request_bytes,
                    timeout_ms=timeout_ms,
                )
                break
            except HostUnreachableError:
                continue
            except RpcTimeoutError:
                self.timeouts += 1
                self._count("client.timeouts")
                self._record_nn_failure(nn)
                continue
        if active is None:
            # Bootstrap exhausted every candidate: that is a failover event
            # too — count it so trace/metric breakdowns see these ops.
            self.failovers += 1
            self.bootstrap_exhaustions += 1
            self._count("client.failovers")
            raise NoNamenodeError("no metadata server reachable")
        if not active:
            # Election has not yet converged; fall back to the static list.
            active = [(i, nn, 0) for i, nn in enumerate(bootstrap)]
        if self._draining_nns:
            undrained = [a for a in active if a[1] not in self._draining_nns]
            if undrained:
                active = undrained
        if robust is not None:
            closed = [a for a in active if not self._breaker_open(a[1])]
            if closed:
                active = closed
        if self.location_domain_id != ANY_AZ:
            local = [a for a in active if a[2] == self.location_domain_id]
            if local:
                self.current_nn = self._choice(local)[1]
                return self.current_nn
        self.current_nn = self._choice(active)[1]
        return self.current_nn

    # ------------------------------------------------------------ operations
    def op(self, op: OpType, **kwargs):
        """Run one metadata operation, failing over across NN deaths.

        ``obs_parent`` (popped before the request goes on the wire) nests
        this op's span under an enclosing data-path span when tracing.
        """
        parent = kwargs.pop("obs_parent", None)
        obs = self.env.obs
        span = None
        ts = None
        start_ms = 0.0
        if obs is not None:
            span = obs.tracer.start(
                "client.op", parent=parent, op=op.value,
                host=str(self.addr), az=self.location_domain_id,
            )
            ts = obs.timeseries
            if ts is not None:
                start_ms = self.env.now
        state = {"failures": 0}
        try:
            if self.robust is not None:
                result = yield from self._robust_op(op, kwargs, span, state)
            else:
                result = yield from self._op_body(op, kwargs, span, state)
            if type(result) is GroupAck:
                # Early ack from the async commit path: record the horizon
                # this mutation rides and hand back the plain result.
                self._pending_horizons.add(result.horizon)
                if result.horizon > self.durability_horizon:
                    self.durability_horizon = result.horizon
                result = result.result
            if span is not None:
                span.tags["ok"] = True
            if ts is not None:
                now = self.env.now
                ts.record_op(self.location_domain_id, now - start_ms, True, now)
            return result
        except (FsError, RpcTimeoutError, HostUnreachableError) as exc:
            # Terminal failures must be tagged too (NoNamenodeError and
            # FsError exits previously finished with neither ok nor error,
            # undercounting failures in trace breakdowns).
            if span is not None:
                span.tags["ok"] = False
                span.tags["error"] = type(exc).__name__
            if ts is not None:
                now = self.env.now
                ts.record_op(self.location_domain_id, now - start_ms, False, now)
            raise
        finally:
            # Drivers read this into OpResult.retries for per-op breakdowns.
            self.last_op_failures = state["failures"]
            if span is not None:
                obs.tracer.finish(span, retries=state["failures"])

    def _op_body(self, op: OpType, kwargs, span, state):
        """Legacy fail-stop request path (bit-identical to prior releases)."""
        obs = self.env.obs
        while True:
            if self.current_nn is None:
                yield from self._pick_namenode()
            try:
                result = yield self.network.call(
                    self.addr,
                    self.current_nn,
                    "fs_op",
                    (op, kwargs),
                    size=self.request_bytes,
                    parent_span=span,
                )
                return result
            except HostUnreachableError:
                # Select a random surviving metadata server and retry.
                self.current_nn = None
                self.failovers += 1
                state["failures"] += 1
                if obs is not None:
                    obs.registry.counter("client.failovers").inc()
                if state["failures"] > self.max_failovers:
                    raise NoNamenodeError(f"{op}: no metadata server after retries")

    # ------------------------------------------------- robust request path
    def _robust_op(self, op: OpType, kwargs, span, state):
        """Deadline-bounded request loop: timeouts fail over, busy backs off."""
        robust = self.robust
        env = self.env
        deadline = Deadline(env.now + robust.deadline_ms)
        extra = {"deadline_ms": deadline.expires_ms}
        if op.mutates:
            # Exactly-once retried mutations: the NN-side RetryCache keys
            # replays off this id (same id across every retry of this op).
            extra["retry_id"] = (self.client_id, next(self._op_seq))
        attempt = 0
        last_error = None
        try:
            while True:
                if deadline.expired(env.now):
                    self._count("client.deadline_exceeded")
                    raise DeadlineExceededError(
                        f"{op.value}: client deadline expired"
                    ) from last_error
                if self.current_nn is None:
                    yield from self._pick_namenode(deadline=deadline)
                try:
                    result = yield from self._attempt(op, kwargs, span, deadline, extra)
                    breaker = self._breakers.get(self.current_nn)
                    if breaker is not None:
                        breaker.record_success()
                    return result
                except RpcTimeoutError as exc:
                    # Gray failure: the NN may be alive but slow.  Treat the
                    # timeout as a failover trigger and route elsewhere.
                    last_error = exc
                    self.timeouts += 1
                    self._count("client.timeouts")
                    self._record_nn_failure(self.current_nn)
                    self._fail_over(state)
                except HostUnreachableError as exc:
                    last_error = exc
                    self._record_nn_failure(self.current_nn)
                    self._fail_over(state)
                except ServerDrainingError as exc:
                    # Operator-ordered drain, not overload: the server will
                    # never take this op, so drop it from the local view at
                    # once (membership refresh would do it ~a period later)
                    # and go straight at a peer without backing off.
                    last_error = exc
                    self._count("client.drain_redirects")
                    self._discard_namenode(self.current_nn)
                    attempt += 1
                    if attempt > robust.retry.max_retries:
                        raise NoNamenodeError(
                            f"{op.value}: retry budget exhausted "
                            f"({robust.retry.max_retries} retries)"
                        ) from last_error
                    continue
                except ServerBusyError as exc:
                    # Shed by admission control: honor it with backoff and
                    # spread the retry over the other servers.
                    last_error = exc
                    self.busy_rejections += 1
                    self._count("client.busy_rejections")
                    self.current_nn = None
                attempt += 1
                if attempt > robust.retry.max_retries:
                    raise NoNamenodeError(
                        f"{op.value}: retry budget exhausted "
                        f"({robust.retry.max_retries} retries)"
                    ) from last_error
                yield from self._backoff(attempt, deadline, last_error)
        finally:
            overrun = env.now - deadline.expires_ms
            if overrun > robust.op_timeout_ms:
                # The deadline invariant's slack is one hop (one RPC
                # timeout); anything beyond it is a contract violation.
                self.deadline_overruns.append((op.value, deadline.expires_ms, env.now))

    def _fail_over(self, state) -> None:
        self.current_nn = None
        self.failovers += 1
        state["failures"] += 1
        self._count("client.failovers")

    def _backoff(self, attempt: int, deadline: Deadline, last_error):
        delay = self.robust.retry.backoff_ms(attempt, self.retry_rng)
        if deadline.remaining(self.env.now) <= delay:
            # Sleeping past the deadline is doomed work; fail fast instead.
            self._count("client.deadline_exceeded")
            raise DeadlineExceededError(
                "deadline would expire during retry backoff"
            ) from last_error
        yield self.env.timeout(delay)

    def _rpc_timeout_ms(self, deadline: Deadline) -> float:
        """Per-call timeout, capped so no RPC outlives the op deadline."""
        return max(
            0.001, min(self.robust.op_timeout_ms, deadline.remaining(self.env.now))
        )

    def _attempt(self, op: OpType, kwargs, span, deadline: Deadline, extra):
        """One bounded attempt; read-class ops hedge to a second NN."""
        robust = self.robust
        env = self.env
        primary_nn = self.current_nn
        primary = self.network.call(
            self.addr, primary_nn, "fs_op", (op, kwargs),
            size=self.request_bytes, parent_span=span,
            timeout_ms=self._rpc_timeout_ms(deadline), extra=extra,
        )
        if op.mutates or robust.hedge_delay_ms is None:
            result = yield primary
            return result
        # Hedged read: wait the hedge delay; if the primary has not
        # answered, fire the same request at a different NN and take the
        # first reply.  The loser's reply (or timeout) resolves through the
        # abandoned event — callback-suppressed and defused, never raised.
        hedge_timer = env.timeout(robust.hedge_delay_ms)
        yield env.any_of([primary, hedge_timer])
        if primary.triggered:
            if primary.ok:
                return primary.value
            raise primary.value
        alt_nn = self._hedge_target(primary_nn)
        if alt_nn is None:
            result = yield primary
            return result
        self.hedges += 1
        self._count("client.hedges")
        hedge = self.network.call(
            self.addr, alt_nn, "fs_op", (op, kwargs),
            size=self.request_bytes, parent_span=span,
            timeout_ms=self._rpc_timeout_ms(deadline), extra=extra,
        )
        yield env.any_of([primary, hedge])
        if primary.triggered and primary.ok:
            hedge.defuse()
            return primary.value
        if hedge.triggered and hedge.ok:
            primary.defuse()
            self.hedge_wins += 1
            self._count("client.hedge_wins")
            # The hedge answering first is evidence the primary is slow;
            # ride the faster server from here on.
            self.current_nn = alt_nn
            return hedge.value
        # Both resolved in the same step, both failed: surface the primary's
        # error (deterministic choice) and defuse the other.
        hedge.defuse()
        raise primary.value

    def _hedge_target(self, primary_nn: NodeAddress) -> Optional[NodeAddress]:
        """A different, breaker-closed NN to hedge to (deterministic pick)."""
        candidates = [
            nn for nn in self.namenode_addrs
            if nn != primary_nn and not self._breaker_open(nn)
        ]
        if not candidates:
            return None
        return self._choice(candidates)

    # Convenience wrappers -----------------------------------------------------
    def mkdir(self, path: str):
        result = yield from self.op(OpType.MKDIR, path=path)
        return result

    def mkdirs(self, path: str):
        """Create a directory and any missing ancestors (mkdir -p)."""
        result = yield from self.op(OpType.MKDIRS, path=path)
        return result

    def create(self, path: str, data: bytes = b"", replication: Optional[int] = None):
        """Create a file; large payloads stream through the block layer."""
        obs = self.env.obs
        span = None
        if obs is not None and len(data) > SMALL_FILE_MAX_BYTES:
            # One umbrella span for multi-block creates, so the metadata ops
            # and block pipeline writes show up as siblings of one request.
            span = obs.tracer.start(
                "client.op", op="create_data",
                host=str(self.addr), az=self.location_domain_id,
            )
        try:
            inode_id = yield from self.op(
                OpType.CREATE_FILE,
                path=path,
                data=data,
                replication=replication,
                client=str(self.addr),
                obs_parent=span,
            )
            if len(data) <= SMALL_FILE_MAX_BYTES:
                return inode_id
            remaining = len(data)
            while remaining > 0:
                chunk = min(remaining, BLOCK_SIZE_BYTES)
                yield from self._write_block(path, chunk, span)
                remaining -= chunk
            yield from self.op(
                OpType.COMPLETE_FILE, path=path, size=len(data),
                client=str(self.addr), obs_parent=span,
            )
            return inode_id
        finally:
            if span is not None:
                obs.tracer.finish(span)

    def _write_block(self, path: str, chunk: int, span):
        """Allocate one block and push it through the DN pipeline.

        A broken pipeline (DN death mid-write) no longer fails the whole
        multi-block create: the client abandons the broken block, asks the
        NN for a fresh one (fresh placement excludes nothing, but the dead
        DN no longer heartbeats, so new placements avoid it) and retries
        the pipeline once before giving up.
        """
        block = yield from self.op(
            OpType.ADD_BLOCK, path=path, client=str(self.addr), obs_parent=span
        )
        try:
            yield from self._write_pipeline(block, chunk, parent_span=span)
            return
        except FsError:
            self._count("client.pipeline_retries")
            yield from self.op(
                OpType.ABANDON_BLOCK, path=path, block_id=block.block_id,
                client=str(self.addr), obs_parent=span,
            )
        block = yield from self.op(
            OpType.ADD_BLOCK, path=path, client=str(self.addr), obs_parent=span
        )
        yield from self._write_pipeline(block, chunk, parent_span=span)

    def _write_pipeline(self, block, nbytes: int, parent_span=None):
        req = WriteBlockReq(
            block_id=block.block_id, nbytes=nbytes, pipeline=tuple(block.locations), hop=0
        )
        try:
            yield self.network.call(
                self.addr, block.locations[0], "write_block", req, size=nbytes,
                parent_span=parent_span,
            )
        except (HostUnreachableError, RpcTimeoutError) as exc:
            raise FsError(f"write pipeline failed: {exc}") from exc

    def read(self, path: str):
        result = yield from self.op(OpType.READ_FILE, path=path)
        return result

    def read_data(self, path: str):
        """Read a file's *data*: inline bytes, or blocks from datanodes.

        Block replicas are fetched from the replica nearest to this client
        (same AZ when one exists) — the cost-aware reading the paper's
        future work motivates: intra-AZ block traffic is free, inter-AZ
        is billed (Section III C2).  Returns the number of bytes read.
        """
        obs = self.env.obs
        span = None
        if obs is not None:
            span = obs.tracer.start(
                "client.op", op="read_data",
                host=str(self.addr), az=self.location_domain_id,
            )
        try:
            total = yield from self._read_data_body(path, span)
            return total
        finally:
            if span is not None:
                obs.tracer.finish(span)

    def _read_data_body(self, path: str, span):
        content = yield from self.op(OpType.READ_FILE, path=path, obs_parent=span)
        if content.is_small:
            return len(content.small_data)
        topology = self.network.topology
        total = 0
        for block in content.blocks:
            locations = list(block.locations)
            if not locations:
                raise FsError(f"block {block.block_id} has no replicas")
            if self.location_domain_id != ANY_AZ:
                local = [
                    dn for dn in locations
                    if topology.az_of(dn) == self.location_domain_id
                ]
                if local:
                    locations = local
            # Try the preferred (AZ-local) replicas first, then the rest.
            ordered = list(locations)
            if self.rng is not None:
                self.rng.shuffle(ordered)
            others = [dn for dn in block.locations if dn not in ordered]
            nbytes = None
            last_error = None
            for target in ordered + others:
                try:
                    nbytes = yield self.network.call(
                        self.addr,
                        target,
                        "read_block",
                        ReadBlockReq(block_id=block.block_id),
                        size=64,
                        parent_span=span,
                    )
                    break
                except (HostUnreachableError, RpcTimeoutError, FsError) as exc:
                    last_error = exc
            if nbytes is None:
                raise FsError(
                    f"no live replica for block {block.block_id}: {last_error}"
                )
            total += nbytes
        return total

    def fsync(self):
        """Durability barrier for the async commit path.

        Waits until every horizon this client's early acks rode has
        settled; returns True when they all committed.  A horizon that
        aborted or was lost in an NN crash raises :class:`FsError` — the
        early-acked data did not survive.  A no-op (returns True) when
        nothing is pending, including on the synchronous path.
        """
        if not self._pending_horizons:
            return True
        horizons = sorted(self._pending_horizons)
        try:
            result = yield from self.op(OpType.FSYNC, horizons=horizons)
        finally:
            # Settled either way (committed, aborted, or lost): retrying
            # the same horizons could never change the answer.
            self._pending_horizons.difference_update(horizons)
        return result

    def stat(self, path: str):
        result = yield from self.op(OpType.STAT, path=path)
        return result

    def exists(self, path: str):
        result = yield from self.op(OpType.EXISTS, path=path)
        return result

    def listdir(self, path: str):
        result = yield from self.op(OpType.LIST_DIR, path=path)
        return result

    def delete(self, path: str, recursive: bool = False):
        result = yield from self.op(OpType.DELETE_FILE, path=path, recursive=recursive)
        return result

    def rename(self, src: str, dst: str):
        result = yield from self.op(OpType.RENAME, src=src, dst=dst)
        return result

    def chmod(self, path: str, permission: int):
        result = yield from self.op(OpType.CHMOD, path=path, permission=permission)
        return result

    def set_replication(self, path: str, replication: int):
        result = yield from self.op(
            OpType.SET_REPLICATION, path=path, replication=replication
        )
        return result
