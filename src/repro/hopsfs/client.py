"""The HopsFS DFS client.

Clients pick one metadata server and stick with it until it fails
(Section II-A2).  In HopsFS-CL the selection is AZ-local: the client asks
the leader-maintained membership list for servers sharing its
``locationDomainId`` and falls back to a random live server (Section
IV-B3, ``locationDomainId`` 0 disables the affinity).
"""

from __future__ import annotations

from typing import Optional

from ..errors import FsError, HostUnreachableError, NoNamenodeError
from ..net.network import Network
from ..sim import Environment
from ..types import ANY_AZ, AzId, NodeAddress, OpType
from .datanode import ReadBlockReq, WriteBlockReq
from .metadata import BLOCK_SIZE_BYTES, SMALL_FILE_MAX_BYTES

__all__ = ["HopsFsClient"]


class HopsFsClient:
    """A file-system client bound to one simulated host."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        addr: NodeAddress,
        namenode_addrs,
        location_domain_id: AzId = ANY_AZ,
        rng=None,
        request_bytes: int = 256,
        max_failovers: int = 4,
    ):
        self.env = env
        self.network = network
        self.addr = addr
        self.namenode_addrs = list(namenode_addrs)
        self.location_domain_id = location_domain_id
        self.rng = rng
        self.request_bytes = request_bytes
        self.max_failovers = max_failovers
        self.current_nn: Optional[NodeAddress] = None
        self.failovers = 0
        network.register(addr)

    # ------------------------------------------------------- NN selection
    def _choice(self, seq):
        if self.rng is None:
            return seq[0]
        return self.rng.choice(seq)

    def _pick_namenode(self):
        """Fetch the active-NN list from any live NN, then apply the policy."""
        bootstrap = list(self.namenode_addrs)
        if self.rng is not None:
            self.rng.shuffle(bootstrap)
        active = None
        for nn in bootstrap:
            try:
                active = yield self.network.call(
                    self.addr, nn, "get_active_nns", size=self.request_bytes
                )
                break
            except HostUnreachableError:
                continue
        if active is None:
            raise NoNamenodeError("no metadata server reachable")
        if not active:
            # Election has not yet converged; fall back to the static list.
            active = [(i, nn, 0) for i, nn in enumerate(bootstrap)]
        if self.location_domain_id != ANY_AZ:
            local = [a for a in active if a[2] == self.location_domain_id]
            if local:
                self.current_nn = self._choice(local)[1]
                return self.current_nn
        self.current_nn = self._choice(active)[1]
        return self.current_nn

    # ------------------------------------------------------------ operations
    def op(self, op: OpType, **kwargs):
        """Run one metadata operation, failing over across NN deaths.

        ``obs_parent`` (popped before the request goes on the wire) nests
        this op's span under an enclosing data-path span when tracing.
        """
        parent = kwargs.pop("obs_parent", None)
        obs = self.env.obs
        span = None
        if obs is not None:
            span = obs.tracer.start(
                "client.op", parent=parent, op=op.value,
                host=str(self.addr), az=self.location_domain_id,
            )
        failures = 0
        try:
            while True:
                if self.current_nn is None:
                    yield from self._pick_namenode()
                try:
                    result = yield self.network.call(
                        self.addr,
                        self.current_nn,
                        "fs_op",
                        (op, kwargs),
                        size=self.request_bytes,
                        parent_span=span,
                    )
                    if span is not None:
                        span.tags["ok"] = True
                    return result
                except HostUnreachableError:
                    # Select a random surviving metadata server and retry.
                    self.current_nn = None
                    self.failovers += 1
                    failures += 1
                    if obs is not None:
                        obs.registry.counter("client.failovers").inc()
                    if failures > self.max_failovers:
                        raise NoNamenodeError(f"{op}: no metadata server after retries")
        finally:
            if span is not None:
                obs.tracer.finish(span, retries=failures)

    # Convenience wrappers -----------------------------------------------------
    def mkdir(self, path: str):
        result = yield from self.op(OpType.MKDIR, path=path)
        return result

    def mkdirs(self, path: str):
        """Create a directory and any missing ancestors (mkdir -p)."""
        result = yield from self.op(OpType.MKDIRS, path=path)
        return result

    def create(self, path: str, data: bytes = b"", replication: Optional[int] = None):
        """Create a file; large payloads stream through the block layer."""
        obs = self.env.obs
        span = None
        if obs is not None and len(data) > SMALL_FILE_MAX_BYTES:
            # One umbrella span for multi-block creates, so the metadata ops
            # and block pipeline writes show up as siblings of one request.
            span = obs.tracer.start(
                "client.op", op="create_data",
                host=str(self.addr), az=self.location_domain_id,
            )
        try:
            inode_id = yield from self.op(
                OpType.CREATE_FILE,
                path=path,
                data=data,
                replication=replication,
                client=str(self.addr),
                obs_parent=span,
            )
            if len(data) <= SMALL_FILE_MAX_BYTES:
                return inode_id
            remaining = len(data)
            while remaining > 0:
                block = yield from self.op(
                    OpType.ADD_BLOCK, path=path, client=str(self.addr), obs_parent=span
                )
                chunk = min(remaining, BLOCK_SIZE_BYTES)
                yield from self._write_pipeline(block, chunk, parent_span=span)
                remaining -= chunk
            yield from self.op(
                OpType.COMPLETE_FILE, path=path, size=len(data),
                client=str(self.addr), obs_parent=span,
            )
            return inode_id
        finally:
            if span is not None:
                obs.tracer.finish(span)

    def _write_pipeline(self, block, nbytes: int, parent_span=None):
        req = WriteBlockReq(
            block_id=block.block_id, nbytes=nbytes, pipeline=tuple(block.locations), hop=0
        )
        try:
            yield self.network.call(
                self.addr, block.locations[0], "write_block", req, size=nbytes,
                parent_span=parent_span,
            )
        except HostUnreachableError as exc:
            raise FsError(f"write pipeline failed: {exc}") from exc

    def read(self, path: str):
        result = yield from self.op(OpType.READ_FILE, path=path)
        return result

    def read_data(self, path: str):
        """Read a file's *data*: inline bytes, or blocks from datanodes.

        Block replicas are fetched from the replica nearest to this client
        (same AZ when one exists) — the cost-aware reading the paper's
        future work motivates: intra-AZ block traffic is free, inter-AZ
        is billed (Section III C2).  Returns the number of bytes read.
        """
        obs = self.env.obs
        span = None
        if obs is not None:
            span = obs.tracer.start(
                "client.op", op="read_data",
                host=str(self.addr), az=self.location_domain_id,
            )
        try:
            total = yield from self._read_data_body(path, span)
            return total
        finally:
            if span is not None:
                obs.tracer.finish(span)

    def _read_data_body(self, path: str, span):
        content = yield from self.op(OpType.READ_FILE, path=path, obs_parent=span)
        if content.is_small:
            return len(content.small_data)
        topology = self.network.topology
        total = 0
        for block in content.blocks:
            locations = list(block.locations)
            if not locations:
                raise FsError(f"block {block.block_id} has no replicas")
            if self.location_domain_id != ANY_AZ:
                local = [
                    dn for dn in locations
                    if topology.az_of(dn) == self.location_domain_id
                ]
                if local:
                    locations = local
            # Try the preferred (AZ-local) replicas first, then the rest.
            ordered = list(locations)
            if self.rng is not None:
                self.rng.shuffle(ordered)
            others = [dn for dn in block.locations if dn not in ordered]
            nbytes = None
            last_error = None
            for target in ordered + others:
                try:
                    nbytes = yield self.network.call(
                        self.addr,
                        target,
                        "read_block",
                        ReadBlockReq(block_id=block.block_id),
                        size=64,
                        parent_span=span,
                    )
                    break
                except (HostUnreachableError, FsError) as exc:
                    last_error = exc
            if nbytes is None:
                raise FsError(
                    f"no live replica for block {block.block_id}: {last_error}"
                )
            total += nbytes
        return total

    def stat(self, path: str):
        result = yield from self.op(OpType.STAT, path=path)
        return result

    def exists(self, path: str):
        result = yield from self.op(OpType.EXISTS, path=path)
        return result

    def listdir(self, path: str):
        result = yield from self.op(OpType.LIST_DIR, path=path)
        return result

    def delete(self, path: str, recursive: bool = False):
        result = yield from self.op(OpType.DELETE_FILE, path=path, recursive=recursive)
        return result

    def rename(self, src: str, dst: str):
        result = yield from self.op(OpType.RENAME, src=src, dst=dst)
        return result

    def chmod(self, path: str, permission: int):
        result = yield from self.op(OpType.CHMOD, path=path, permission=permission)
        return result

    def set_replication(self, path: str, replication: int):
        result = yield from self.op(
            OpType.SET_REPLICATION, path=path, replication=replication
        )
        return result
