"""Path handling and hierarchical (implicit) locking helpers.

HopsFS avoids database-level serialization by locking only the inode(s) an
operation mutates, reading everything else (ancestors, associated metadata)
at read-committed (Section II-A2).  These helpers implement path parsing
and the read-committed resolution walk used by every operation.
"""

from __future__ import annotations

from typing import Optional

from ..errors import FileNotFoundFsError, InvalidPathError, NotDirectoryError
from ..ndb.client import NdbTransaction
from .metadata import INODES_TABLE, ROOT_INODE_ID, InodeRow

__all__ = [
    "split_path",
    "normalize_path",
    "resolve_components",
    "resolve_inode",
    "resolve_parent",
]


def split_path(path: str) -> list[str]:
    """Split an absolute path into components; '/' yields []."""
    if not isinstance(path, str) or not path.startswith("/"):
        raise InvalidPathError(f"path must be absolute: {path!r}")
    components = [c for c in path.split("/") if c]
    for component in components:
        if component in (".", ".."):
            raise InvalidPathError(f"'.'/'..' not supported: {path!r}")
        if "\x00" in component:
            raise InvalidPathError(f"NUL byte in path component: {path!r}")
    return components


def normalize_path(path: str) -> str:
    return "/" + "/".join(split_path(path))


_ROOT_ROW = InodeRow(id=ROOT_INODE_ID, parent_id=0, name="", is_dir=True)


def root_row() -> InodeRow:
    return _ROOT_ROW


def resolve_components(txn: NdbTransaction, components: list[str], cache=None):
    """Walk the inode chain at read-committed; yields from NDB reads.

    Directory components found in the NN's path-component ``cache`` are
    used without a database read (HopsFS's top-of-hierarchy caching);
    resolved directories are written back to the cache.

    Returns a list of rows, one per component, with ``None`` from the first
    missing component onward.  Raises :class:`NotDirectoryError` when an
    intermediate component is a file.
    """
    rows: list[Optional[InodeRow]] = []
    parent: Optional[InodeRow] = _ROOT_ROW
    for depth, name in enumerate(components):
        if parent is None:
            rows.append(None)
            continue
        if not parent.is_dir:
            raise NotDirectoryError(
                "/" + "/".join(components[:depth]) + " is not a directory"
            )
        row = cache.get(parent.id, name) if cache is not None else None
        if row is None:
            row = yield from txn.read(
                INODES_TABLE, (parent.id, name), partition_key=parent.id
            )
            if row is not None and row.is_dir and cache is not None:
                cache.put(row)
        rows.append(row)
        parent = row
    return rows


def resolve_inode(txn: NdbTransaction, path: str, cache=None):
    """Resolve ``path`` to its inode row; raises if any component missing."""
    components = split_path(path)
    if not components:
        return _ROOT_ROW
    rows = yield from resolve_components(txn, components, cache)
    if rows[-1] is None:
        missing = components[: rows.index(None) + 1]
        raise FileNotFoundFsError("/" + "/".join(missing) + " does not exist")
    return rows[-1]


def resolve_parent(txn: NdbTransaction, path: str, cache=None):
    """Resolve the parent directory of ``path``.

    Returns ``(parent_row, basename)``; raises if the parent chain is
    missing or crosses a file.
    """
    components = split_path(path)
    if not components:
        raise InvalidPathError("operation not allowed on the root directory")
    name = components[-1]
    if len(components) == 1:
        return _ROOT_ROW, name
    rows = yield from resolve_components(txn, components[:-1], cache)
    parent = rows[-1]
    if parent is None:
        missing = components[: rows.index(None) + 1]
        raise FileNotFoundFsError("/" + "/".join(missing) + " does not exist")
    if not parent.is_dir:
        raise NotDirectoryError("/" + "/".join(components[:-1]) + " is not a directory")
    return parent, name
