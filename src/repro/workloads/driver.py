"""Workload drivers: closed-loop and open-loop clients.

Closed-loop: N clients each issue the next operation as soon as the
previous one completes — the saturation-throughput methodology of Fig. 5.
Open-loop: operations arrive at a fixed rate regardless of completions —
used for the 50%-load latency percentiles of Fig. 9.
"""

from __future__ import annotations

from ..errors import FsError, NoNamenodeError, ReproError, TransactionAbortedError
from ..metrics.collectors import MetricsCollector
from ..types import OpResult

__all__ = ["ClosedLoopDriver", "OpenLoopDriver", "EXPECTED_ERRORS"]

# Error classes a driver treats as a failed op rather than a harness bug.
# Shared with the aggregated-arrival engine (repro.workloads.arrivals).
EXPECTED_ERRORS = (FsError, TransactionAbortedError, NoNamenodeError)
_EXPECTED_ERRORS = EXPECTED_ERRORS  # backwards-compatible alias


class ClosedLoopDriver:
    """Runs ``num_clients`` closed-loop clients against a deployment."""

    def __init__(
        self,
        env,
        clients,
        workload,
        collector: MetricsCollector,
    ):
        self.env = env
        self.clients = list(clients)
        self.workload = workload
        self.collector = collector
        self.stopped = False
        self._procs = []

    def start(self) -> None:
        for index, client in enumerate(self.clients):
            self._procs.append(
                self.env.process(
                    self._client_loop(client, index), name="closed-loop-client"
                )
            )

    def stop(self) -> None:
        self.stopped = True

    def _client_loop(self, client, index):
        while not self.stopped:
            op, kwargs = self.workload.next_op(client_id=index)
            start = self.env.now
            ok, error = True, None
            try:
                yield from client.op(op, **kwargs)
            except _EXPECTED_ERRORS as exc:
                ok, error = False, type(exc).__name__
            self.collector.record(
                OpResult(
                    op=op,
                    start_ms=start,
                    end_ms=self.env.now,
                    ok=ok,
                    error=error,
                    retries=getattr(client, "last_op_failures", 0),
                    served_by=getattr(client, "current_nn", None),
                )
            )


class OpenLoopDriver:
    """Issues operations at ``rate_per_ms`` using a pool of client stubs.

    Arrivals are deterministic at 1/rate spacing (adding Poisson jitter
    does not change the percentile ordering the figure reports, and keeps
    runs reproducible).
    """

    def __init__(
        self,
        env,
        clients,
        workload,
        collector: MetricsCollector,
        rate_per_ms: float,
    ):
        if rate_per_ms <= 0:
            raise ReproError("open-loop rate must be positive")
        self.env = env
        self.clients = list(clients)
        self.workload = workload
        self.collector = collector
        self.rate_per_ms = rate_per_ms
        self.stopped = False
        self._next_client = 0

    def start(self) -> None:
        self.env.process(self._arrival_loop(), name="open-loop-arrivals")

    def stop(self) -> None:
        self.stopped = True

    def _arrival_loop(self):
        gap = 1.0 / self.rate_per_ms
        while not self.stopped:
            index = self._next_client % len(self.clients)
            client = self.clients[index]
            self._next_client += 1
            op, kwargs = self.workload.next_op(client_id=index)
            self.env.process(self._one_op(client, op, kwargs), name="open-loop-op")
            yield self.env.timeout(gap)

    def _one_op(self, client, op, kwargs):
        start = self.env.now
        ok, error = True, None
        try:
            yield from client.op(op, **kwargs)
        except _EXPECTED_ERRORS as exc:
            ok, error = False, type(exc).__name__
        self.collector.record(
            OpResult(
                op=op, start_ms=start, end_ms=self.env.now, ok=ok, error=error,
                retries=getattr(client, "last_op_failures", 0),
            )
        )
