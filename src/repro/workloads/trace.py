"""Trace-file workloads: record and replay operation streams.

The paper replays operational traces from Spotify's Hadoop cluster; the
trace itself is proprietary, but this module gives the reproduction the
same capability: record any workload run to a trace file (one op per
line), and replay a trace file against any deployment.

Trace format (text, one operation per line):

    <op> <path> [<dst-path>]

e.g. ::

    createFile /proj1/dir3/part-0001
    readFile   /proj1/dir3/part-0001
    rename     /proj1/dir3/part-0001 /proj1/dir3/part-0001.done
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Union

from ..errors import ReproError
from ..types import OpType

__all__ = ["TraceWorkload", "write_trace", "parse_trace_line", "format_trace_line"]

_TWO_PATH_OPS = frozenset({OpType.RENAME})


def format_trace_line(op: OpType, kwargs: dict) -> str:
    if op in _TWO_PATH_OPS:
        return f"{op.value} {kwargs['src']} {kwargs['dst']}"
    return f"{op.value} {kwargs['path']}"


def parse_trace_line(line: str) -> Optional[tuple[OpType, dict]]:
    """Parse one trace line; returns None for blanks/comments."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = line.split()
    try:
        op = OpType(parts[0])
    except ValueError:
        raise ReproError(f"unknown trace operation {parts[0]!r}") from None
    if op in _TWO_PATH_OPS:
        if len(parts) != 3:
            raise ReproError(f"{op.value} needs two paths: {line!r}")
        return op, {"src": parts[1], "dst": parts[2]}
    if len(parts) != 2:
        raise ReproError(f"{op.value} needs one path: {line!r}")
    kwargs = {"path": parts[1]}
    if op is OpType.CREATE_FILE:
        kwargs["data"] = b""
    elif op is OpType.CHMOD:
        kwargs["permission"] = 0o644  # payload args are not serialized
    return op, kwargs


def write_trace(path: Union[str, Path], ops: Iterable[tuple[OpType, dict]]) -> int:
    """Write operations to a trace file; returns the number written."""
    count = 0
    with open(path, "w") as out:
        for op, kwargs in ops:
            out.write(format_trace_line(op, kwargs) + "\n")
            count += 1
    return count


class TraceWorkload:
    """Replays a trace file through the workload-driver interface.

    Clients share one cursor: operations are handed out in trace order
    regardless of which client asks, like a shared replay queue.  When the
    trace is exhausted the workload either loops (``loop=True``) or keeps
    returning the final op (keeping closed-loop drivers busy).
    """

    def __init__(self, source: Union[str, Path, Iterable[str]], loop: bool = True):
        if isinstance(source, (str, Path)):
            with open(source) as f:
                lines = f.readlines()
        else:
            lines = list(source)
        self.ops: list[tuple[OpType, dict]] = []
        for line in lines:
            parsed = parse_trace_line(line)
            if parsed is not None:
                self.ops.append(parsed)
        if not self.ops:
            raise ReproError("empty trace")
        self.loop = loop
        self._cursor = 0
        self.replayed = 0

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def exhausted(self) -> bool:
        return not self.loop and self._cursor >= len(self.ops)

    def next_op(self, client_id=None) -> tuple[OpType, dict]:
        if self._cursor >= len(self.ops):
            if self.loop:
                self._cursor = 0
            else:
                op, kwargs = self.ops[-1]
                return op, dict(kwargs)
        op, kwargs = self.ops[self._cursor]
        self._cursor += 1
        self.replayed += 1
        return op, dict(kwargs)
