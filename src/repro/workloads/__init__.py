"""Workloads: namespace generation, the Spotify mix, and load drivers."""

from .arrivals import AggregatedArrivalEngine, ZipfPopulation
from .driver import ClosedLoopDriver, OpenLoopDriver
from .namespace import Namespace, generate_namespace, install_cephfs, install_hopsfs
from .spotify import SPOTIFY_MIX, SingleOpWorkload, SpotifyWorkload
from .trace import TraceWorkload, parse_trace_line, write_trace

__all__ = [
    "AggregatedArrivalEngine",
    "ZipfPopulation",
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "Namespace",
    "generate_namespace",
    "install_cephfs",
    "install_hopsfs",
    "SPOTIFY_MIX",
    "SingleOpWorkload",
    "SpotifyWorkload",
    "TraceWorkload",
    "parse_trace_line",
    "write_trace",
]
