"""Benchmark namespace generation and installation.

Builds a Hadoop-style directory tree (a few top-level project dirs, many
leaf dirs, many files) and installs it into a deployment *before*
measurements start — into NDB fragment stores for HopsFS and into the MDS
shards for CephFS.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..hopsfs.metadata import INODES_TABLE, InodeRow

__all__ = ["Namespace", "generate_namespace", "install_hopsfs", "install_cephfs"]


@dataclass
class Namespace:
    """A generated namespace: directories, files, and popularity weights."""

    top_dirs: list[str]
    dirs: list[str]  # leaf directories (excluding top-level)
    files: list[str]
    # Zipf-ish popularity weights aligned with ``files`` (sum to ~1).
    file_weights: list[float] = field(default_factory=list)

    @property
    def all_dirs(self) -> list[str]:
        return self.top_dirs + self.dirs

    def size(self) -> int:
        return len(self.top_dirs) + len(self.dirs) + len(self.files)


def generate_namespace(
    num_top_dirs: int = 8,
    dirs_per_top: int = 64,
    files_per_dir: int = 32,
    zipf_s: float = 0.5,
    seed: int = 0,
) -> Namespace:
    """Generate the tree ``/projN/dirM/fileK``.

    File popularity follows a Zipf(s) law over a random permutation of the
    files — hot files dominate reads, as in real Hadoop traces.
    """
    rng = random.Random(seed)
    top_dirs = [f"/proj{i}" for i in range(num_top_dirs)]
    dirs, files = [], []
    for top in top_dirs:
        for j in range(dirs_per_top):
            d = f"{top}/dir{j}"
            dirs.append(d)
            for k in range(files_per_dir):
                files.append(f"{d}/file{k}")
    order = list(range(len(files)))
    rng.shuffle(order)
    raw = [0.0] * len(files)
    for rank, idx in enumerate(order, start=1):
        raw[idx] = 1.0 / (rank ** zipf_s)
    total = sum(raw)
    weights = [w / total for w in raw]
    return Namespace(top_dirs=top_dirs, dirs=dirs, files=files, file_weights=weights)


def install_hopsfs(deployment, namespace: Namespace, warm_caches: bool = True) -> int:
    """Preload the namespace into NDB, assigning inode ids like HopsFS would.

    ``warm_caches`` also installs the directory rows into every namenode's
    path-component cache: benchmarks measure steady state, where the
    read-mostly top of the hierarchy is long since cached (FAST'17).
    """
    ids = deployment.ids
    path_to_id: dict[str, int] = {"/": 1}
    rows = []
    dir_rows = []
    for path in namespace.top_dirs + namespace.dirs + namespace.files:
        parent_path, _slash, name = path.rpartition("/")
        parent_id = path_to_id[parent_path or "/"]
        is_dir = path not in _file_set(namespace)
        inode_id = ids.next_inode_id()
        path_to_id[path] = inode_id
        row = InodeRow(
            id=inode_id,
            parent_id=parent_id,
            name=name,
            is_dir=is_dir,
            small_data=None if is_dir else b"",
        )
        rows.append(((parent_id, name), parent_id, row))
        if is_dir:
            dir_rows.append(row)
    count = deployment.ndb.preload(INODES_TABLE, rows)
    if warm_caches:
        for nn in deployment.namenodes:
            for row in dir_rows:
                nn.dir_cache.put(row)
    return count


def _file_set(namespace: Namespace) -> set:
    cached = getattr(namespace, "_file_set", None)
    if cached is None:
        cached = set(namespace.files)
        namespace._file_set = cached
    return cached


def install_cephfs(cluster, namespace: Namespace) -> int:
    """Preload the namespace into the MDS shards."""
    entries = [(d, True) for d in namespace.top_dirs + namespace.dirs]
    entries += [(f, False) for f in namespace.files]
    return cluster.preload(entries)
