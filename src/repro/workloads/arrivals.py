"""Aggregated open-loop arrivals for very large virtual-client populations.

The per-client drivers in :mod:`repro.workloads.driver` spawn one DES
process per client, so memory and event count scale with the client count —
fine for the paper's few-thousand-client figure runs, hopeless for the
1M+-client regime the paper's headline numbers (HopsFS-CL at ~1.66M ops/s)
come from.  This module inverts the representation: clients become a
*population distribution*, and a single generator process per shard draws

* inter-arrival gaps from an exponential stream (open-loop Poisson
  arrivals at the shard's share of the offered load), and
* the identity of the virtual client issuing each operation from a
  Zipf-skewed population sampler (:class:`ZipfPopulation`), hotspot-heavy
  the way CFS characterises container-platform metadata traffic.

Memory and event count now scale with *traffic*, not with population size:
a million virtual clients cost exactly as much as a hundred, because a
client only exists at the instants it issues operations.

Every arrival is accounted (offered load, distinct clients, per-client
skew); a deterministic 1-in-``detail_every`` subsample is executed in full
detail through the real client/server/transaction stack so latency numbers
come from the actual system model rather than a closed-form approximation.
Sampled execution is the standard DES answer to open-loop streams whose
full event cost would dwarf the machine (the alternative — simulating
every one of millions of ops/s — is exactly the per-client scaling wall
this module removes).

Determinism: all draws come from named streams of a per-shard
:class:`~repro.sim.rng.RngRegistry` (``(seed, shard_id, stream)``
derivation), so two shards never share a sequence and one shard replays
bit-identically.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..errors import ReproError
from ..metrics.collectors import MetricsCollector
from ..types import OpResult
from .driver import EXPECTED_ERRORS

__all__ = ["ZipfPopulation", "AggregatedArrivalEngine"]


def _helper1(x: float) -> float:
    """Numerically stable ``log1p(x) / x``."""
    if abs(x) > 1e-8:
        return math.log1p(x) / x
    return 1.0 - x / 2.0 + x * x / 3.0


def _helper2(x: float) -> float:
    """Numerically stable ``expm1(x) / x``."""
    if abs(x) > 1e-8:
        return math.expm1(x) / x
    return 1.0 + x / 2.0 + x * x / 6.0


class ZipfPopulation:
    """O(1)-memory Zipf(s) sampler over client ids ``0..n-1``.

    Implements rejection-inversion sampling (Hörmann & Derflinger, the
    algorithm behind YCSB's and commons-math's Zipf generators): the
    inverse of the integral of ``x^-s`` proposes a rank, a cheap acceptance
    test corrects the discretisation, and no per-client state is ever
    materialised — which is the whole point at a million clients.  Client
    id ``k`` is rank ``k+1``, so id 0 is the hottest client.

    The expected share of the top ``m`` clients is
    ``H(m, s) / H(n, s)`` with ``H`` the generalised harmonic number;
    tests pin the sampler against that closed form.
    """

    __slots__ = ("n", "s", "rng", "_hx1", "_hn", "_c")

    def __init__(self, n: int, s: float, rng: random.Random):
        if n < 1:
            raise ReproError(f"population must be >= 1 (got {n})")
        if s <= 0:
            raise ReproError(f"zipf exponent must be > 0 (got {s})")
        self.n = n
        self.s = s
        self.rng = rng
        self._hx1 = self._h_integral(1.5) - 1.0
        self._hn = self._h_integral(n + 0.5)
        self._c = 2.0 - self._h_integral_inverse(
            self._h_integral(2.5) - self._h(2.0)
        )

    def _h(self, x: float) -> float:
        return math.exp(-self.s * math.log(x))

    def _h_integral(self, x: float) -> float:
        log_x = math.log(x)
        return _helper2((1.0 - self.s) * log_x) * log_x

    def _h_integral_inverse(self, x: float) -> float:
        t = x * (1.0 - self.s)
        if t < -1.0:
            t = -1.0  # clamp round-off so the root stays in domain
        return math.exp(_helper1(t) * x)

    def sample(self) -> int:
        """Draw one client id in ``[0, n)``; typically one iteration."""
        random_ = self.rng.random
        hn, hx1 = self._hn, self._hx1
        while True:
            u = hn + random_() * (hx1 - hn)
            x = self._h_integral_inverse(u)
            k = int(x + 0.5)
            if k < 1:
                k = 1
            elif k > self.n:
                k = self.n
            if k - x <= self._c or u >= self._h_integral(k + 0.5) - self._h(k):
                return k - 1

    def expected_top_share(self, top: int) -> float:
        """Closed-form traffic share of the ``top`` hottest clients."""
        top = min(top, self.n)
        h_top = sum(k ** -self.s for k in range(1, top + 1))
        h_all = h_top + sum(k ** -self.s for k in range(top + 1, self.n + 1))
        return h_top / h_all


class AggregatedArrivalEngine:
    """One shard's arrival generator: population in, operations out.

    Driver-shaped (``start()`` / ``stop()`` / a shared
    :class:`MetricsCollector`) so it slots into the same harness code as
    :class:`~repro.workloads.driver.OpenLoopDriver`, but arrivals are
    aggregated: the generator is a single DES process pinned to one AZ
    whose per-event work is a gap draw, a client-identity draw and
    bookkeeping.  Detailed ops run open-loop on a small pool of client
    stubs, capped at ``max_inflight`` so an overloaded deployment degrades
    into shed detail samples instead of unbounded in-flight state.
    """

    def __init__(
        self,
        env,
        stubs,
        workload,
        collector: MetricsCollector,
        population: ZipfPopulation,
        rate_per_ms: float,
        arrival_rng: random.Random,
        detail_every: int = 64,
        max_inflight: int = 64,
        az: Optional[int] = None,
    ):
        if rate_per_ms <= 0:
            raise ReproError("arrival rate must be positive")
        if detail_every < 1:
            raise ReproError("detail_every must be >= 1")
        if not stubs:
            raise ReproError("need at least one client stub")
        self.env = env
        self.stubs = list(stubs)
        self.workload = workload
        self.collector = collector
        self.population = population
        self.rate_per_ms = rate_per_ms
        self.arrival_rng = arrival_rng
        self.detail_every = detail_every
        self.max_inflight = max_inflight
        self.az = az
        self.stopped = False
        # -- accounting (all deterministic under a fixed seed) -----------
        self.arrivals = 0
        self.shed = 0  # detail samples skipped because max_inflight was hit
        self.inflight = 0
        self.detailed = 0
        self.max_client_id = -1
        self.distinct_clients: set[int] = set()
        self._next_stub = 0

    def offered_ops(self) -> int:
        """Total arrivals generated so far (the offered load numerator)."""
        return self.arrivals

    def start(self) -> None:
        name = "scale-arrivals" if self.az is None else f"scale-arrivals-az{self.az}"
        self.env.process(self._arrival_loop(), name=name)

    def stop(self) -> None:
        self.stopped = True

    def _arrival_loop(self):
        env = self.env
        timeout = env.timeout
        expovariate = self.arrival_rng.expovariate
        sample = self.population.sample
        rate = self.rate_per_ms
        detail_every = self.detail_every
        distinct = self.distinct_clients.add
        # Hot loop: one kernel event per arrival; everything else is a few
        # C-implemented draws and integer bookkeeping.
        while not self.stopped:
            yield timeout(expovariate(rate))
            client_id = sample()
            self.arrivals += 1
            distinct(client_id)
            if client_id > self.max_client_id:
                self.max_client_id = client_id
            if self.arrivals % detail_every == 0:
                if self.inflight >= self.max_inflight:
                    self.shed += 1
                    continue
                op, kwargs = self.workload.next_op(client_id=client_id)
                stub = self.stubs[self._next_stub]
                self._next_stub = (self._next_stub + 1) % len(self.stubs)
                self.inflight += 1
                env.process(self._one_op(stub, op, kwargs), name="scale-op")

    def _one_op(self, stub, op, kwargs):
        start = self.env.now
        ok, error = True, None
        try:
            yield from stub.op(op, **kwargs)
        except EXPECTED_ERRORS as exc:
            ok, error = False, type(exc).__name__
        finally:
            self.inflight -= 1
        self.detailed += 1
        self.collector.record(
            OpResult(
                op=op,
                start_ms=start,
                end_ms=self.env.now,
                ok=ok,
                error=error,
                retries=getattr(stub, "last_op_failures", 0),
            )
        )
