"""Operation generators: the Spotify industrial mix and single-op loads.

The Spotify operation mix approximates the workload published with HopsFS
(FAST'17, operational traces from Spotify's Hadoop cluster): ~95% of
metadata operations are reads (getBlockLocations / getFileInfo / listing)
and ~5% mutate the namespace.  The proprietary trace itself is not
available; the published mix is what the paper's benchmark replays.
"""

from __future__ import annotations

import random
from itertools import accumulate
import zlib
from ..types import OpType
from .namespace import Namespace

__all__ = ["SPOTIFY_MIX", "SpotifyWorkload", "SingleOpWorkload"]

# Fractions of each operation in the Spotify workload (approximation of
# HopsFS FAST'17 Table 1; documented in EXPERIMENTS.md).
SPOTIFY_MIX: dict[OpType, float] = {
    OpType.READ_FILE: 0.669,
    OpType.STAT: 0.140,
    OpType.LIST_DIR: 0.090,
    OpType.EXISTS: 0.047,
    OpType.CREATE_FILE: 0.027,
    OpType.DELETE_FILE: 0.0075,
    OpType.RENAME: 0.0075,
    OpType.CHMOD: 0.010,
    OpType.MKDIR: 0.0015,
}


class SpotifyWorkload:
    """Draws (op, kwargs) pairs following the Spotify mix.

    Reads target Zipf-popular preloaded files; creates add fresh names;
    deletes and renames consume files this generator created earlier so
    they never fail with not-found.  One instance is shared by all clients
    of a run (its RNG is the source of op-level randomness).
    """

    def __init__(
        self,
        namespace: Namespace,
        seed: int = 0,
        tag: str = "",
        working_set_size: int = 32,
        working_set_locality: float = 0.97,
    ):
        self.namespace = namespace
        self.rng = random.Random(zlib.crc32(f"{seed}:{tag}".encode()))
        self._ops = list(SPOTIFY_MIX)
        self._weights = [SPOTIFY_MIX[o] for o in self._ops]
        self._created: list[str] = []
        self._counter = 0
        self._mkdir_counter = 0
        # Per-client working sets: Hadoop tasks re-read the same project
        # files, which is what makes client-side caches effective and keeps
        # any single inode's share of cluster load bounded.
        self.working_set_size = working_set_size
        self.working_set_locality = working_set_locality
        self._working_sets: dict = {}
        # random.choices() recomputes the cumulative weights on every call;
        # precompute them once per namespace generation.  choices() draws
        # the same uniforms either way, so the RNG stream is unchanged.
        self._cum_weights: list = []
        self._cum_weights_len = -1

    def _file_cum_weights(self) -> list:
        files = self.namespace.files
        if self._cum_weights_len != len(files):
            self._cum_weights = list(accumulate(self.namespace.file_weights))
            self._cum_weights_len = len(files)
        return self._cum_weights

    def working_set(self, client_id) -> list[str]:
        """The file working set of one client (created on first use)."""
        ws = self._working_sets.get(client_id)
        if ws is None:
            ws = self.rng.choices(
                self.namespace.files,
                cum_weights=self._file_cum_weights(),
                k=self.working_set_size,
            )
            self._working_sets[client_id] = ws
        return ws

    def _fresh_name(self) -> str:
        self._counter += 1
        return f"bench-{self._counter}"

    def _popular_file(self, client_id=None) -> str:
        if client_id is not None and self.working_set_size > 0:
            ws = self.working_set(client_id)
            if self.rng.random() < self.working_set_locality:
                return self.rng.choice(ws)
        return self.rng.choices(
            self.namespace.files, cum_weights=self._file_cum_weights(), k=1
        )[0]

    def next_op(self, client_id=None) -> tuple[OpType, dict]:
        op = self.rng.choices(self._ops, weights=self._weights, k=1)[0]
        if op in (OpType.READ_FILE, OpType.STAT, OpType.EXISTS):
            return op, {"path": self._popular_file(client_id)}
        if op is OpType.LIST_DIR:
            return op, {"path": self.rng.choice(self.namespace.dirs)}
        if op is OpType.CREATE_FILE:
            directory = self.rng.choice(self.namespace.dirs)
            path = f"{directory}/{self._fresh_name()}"
            self._created.append(path)
            return op, {"path": path, "data": b""}
        if op is OpType.DELETE_FILE:
            if self._created:
                return op, {"path": self._created.pop()}
            return OpType.STAT, {"path": self._popular_file(client_id)}
        if op is OpType.RENAME:
            if self._created:
                src = self._created.pop()
                dst = f"{src}-r{self._counter}"
                self._created.append(dst)
                return op, {"src": src, "dst": dst}
            return OpType.STAT, {"path": self._popular_file(client_id)}
        if op is OpType.CHMOD:
            # Permission changes hit uniform (mostly cold) files; chmod on a
            # hot file would trigger capability-revocation storms no real
            # workload exhibits at this rate.
            return op, {"path": self.rng.choice(self.namespace.files), "permission": 0o644}
        if op is OpType.MKDIR:
            self._mkdir_counter += 1
            top = self.rng.choice(self.namespace.top_dirs)
            return op, {"path": f"{top}/bench-dir-{self._mkdir_counter}"}
        raise AssertionError(f"unhandled op {op}")


class SingleOpWorkload:
    """Microbenchmark generator: a stream of one operation type (Fig. 7)."""

    def __init__(self, op: OpType, namespace: Namespace, seed: int = 0):
        self.op = op
        self.namespace = namespace
        self.rng = random.Random(seed)
        self._counter = 0
        self._pre_created: list[str] = []

    def precreate_paths(self, count: int) -> list[str]:
        """Paths that must exist before a deleteFile microbenchmark."""
        paths = []
        for _ in range(count):
            self._counter += 1
            directory = self.rng.choice(self.namespace.dirs)
            paths.append(f"{directory}/pre-{self._counter}")
        self._pre_created = list(reversed(paths))
        return paths

    def next_op(self, client_id=None) -> tuple[OpType, dict]:
        if self.op is OpType.READ_FILE:
            return self.op, {
                "path": self.rng.choices(
                    self.namespace.files, weights=self.namespace.file_weights, k=1
                )[0]
            }
        if self.op is OpType.CREATE_FILE:
            self._counter += 1
            directory = self.rng.choice(self.namespace.dirs)
            return self.op, {"path": f"{directory}/new-{self._counter}", "data": b""}
        if self.op is OpType.MKDIR:
            self._counter += 1
            top = self.rng.choice(self.namespace.top_dirs)
            return self.op, {"path": f"{top}/mk-{self._counter}"}
        if self.op is OpType.DELETE_FILE:
            if self._pre_created:
                return self.op, {"path": self._pre_created.pop()}
            # Ran out of pre-created files: fall back to reads so the
            # driver keeps load on the cluster instead of erroring.
            return OpType.READ_FILE, {"path": self.rng.choice(self.namespace.files)}
        raise AssertionError(f"unsupported microbenchmark op {self.op}")
