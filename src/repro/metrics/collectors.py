"""Throughput and latency collection for benchmark runs."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from ..types import OpResult, OpType

__all__ = ["percentile", "MetricsCollector"]


def percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank-interpolated percentile; ``p`` in [0, 100]."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    value = sorted_values[low] * (1 - frac) + sorted_values[high] * frac
    # Clamp: float interpolation may escape the bounds by an ulp.
    return min(max(value, sorted_values[0]), sorted_values[-1])


@dataclass
class MetricsCollector:
    """Records operation results inside a measurement window.

    The driver calls :meth:`record` for every completed op; only ops that
    *finish* inside ``[window_start, window_end]`` count (set the window
    with :meth:`open_window` / :meth:`close_window`).
    """

    window_start: Optional[float] = None
    window_end: Optional[float] = None
    completed: int = 0
    failed: int = 0
    retried: int = 0
    latencies_ms: list[float] = field(default_factory=list)
    # Failed ops' latencies, kept apart from the success population so
    # error-path analysis (how long did doomed ops burn?) is possible
    # without skewing the headline percentiles.
    failed_latencies_ms: list[float] = field(default_factory=list)
    by_op: dict[OpType, int] = field(default_factory=lambda: defaultdict(int))
    latencies_by_op: dict[OpType, list[float]] = field(
        default_factory=lambda: defaultdict(list)
    )

    def open_window(self, now: float) -> None:
        self.window_start = now

    def close_window(self, now: float) -> None:
        self.window_end = now

    def _in_window(self, t: float) -> bool:
        if self.window_start is None:
            return False  # measurement has not started (warmup)
        if t < self.window_start:
            return False
        if self.window_end is not None and t > self.window_end:
            return False
        return True

    def record(self, result: OpResult) -> None:
        if not self._in_window(result.end_ms):
            return
        if not result.ok:
            self.failed += 1
            self.retried += result.retries
            self.failed_latencies_ms.append(result.latency_ms)
            return
        self.completed += 1
        self.retried += result.retries
        self.by_op[result.op] += 1
        self.latencies_ms.append(result.latency_ms)
        self.latencies_by_op[result.op].append(result.latency_ms)

    def merge(self, other: "MetricsCollector") -> "MetricsCollector":
        """Return a new collector combining two measurement shards.

        The merge is associative and commutative: counters add, per-op maps
        add key-wise, the window is the union (min start, max end), and the
        combined latency populations are sorted so the result never depends
        on which shard contributed first.  Sorting is safe because every
        consumer of the latency lists (percentiles, averages) is
        order-insensitive.  Callers that fold many shards should still do so
        in sorted shard order so any future order-sensitive field stays
        deterministic.
        """
        merged = MetricsCollector()
        starts = [s for s in (self.window_start, other.window_start) if s is not None]
        ends = [e for e in (self.window_end, other.window_end) if e is not None]
        merged.window_start = min(starts) if starts else None
        merged.window_end = max(ends) if ends else None
        merged.completed = self.completed + other.completed
        merged.failed = self.failed + other.failed
        merged.retried = self.retried + other.retried
        merged.latencies_ms = sorted(self.latencies_ms + other.latencies_ms)
        merged.failed_latencies_ms = sorted(
            self.failed_latencies_ms + other.failed_latencies_ms
        )
        for source in (self.by_op, other.by_op):
            for op, count in source.items():
                merged.by_op[op] += count
        for source in (self.latencies_by_op, other.latencies_by_op):
            for op, values in source.items():
                merged.latencies_by_op[op].extend(values)
        for op in merged.latencies_by_op:
            merged.latencies_by_op[op].sort()
        return merged

    def summary(self) -> dict:
        """Deterministic, JSON-ready view used by merged scale artifacts."""
        pcts = self.latency_percentiles()
        return {
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "window_ms": self.window_ms,
            "throughput_ops_s": self.throughput_ops_per_sec(),
            "avg_latency_ms": self.avg_latency_ms(),
            "p50_ms": pcts[50],
            "p90_ms": pcts[90],
            "p99_ms": pcts[99],
            "by_op": {op.name: count for op, count in sorted(
                self.by_op.items(), key=lambda kv: kv[0].name)},
        }

    # -- derived ----------------------------------------------------------
    @property
    def window_ms(self) -> float:
        if self.window_start is None or self.window_end is None:
            return 0.0
        return self.window_end - self.window_start

    def throughput_ops_per_sec(self) -> float:
        window = self.window_ms
        return self.completed / window * 1000.0 if window > 0 else 0.0

    def avg_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)

    def latency_percentiles(self, ps=(50, 90, 99), op: Optional[OpType] = None):
        values = self.latencies_by_op[op] if op is not None else self.latencies_ms
        values = sorted(values)
        return {p: percentile(values, p) for p in ps}

    def avg_failed_latency_ms(self) -> float:
        """Mean time burnt by ops that ultimately failed."""
        if not self.failed_latencies_ms:
            return 0.0
        return sum(self.failed_latencies_ms) / len(self.failed_latencies_ms)

    def failure_rate(self) -> float:
        total = self.completed + self.failed
        return self.failed / total if total else 0.0
