"""Resource-utilization reports (Figures 10-13)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ResourceReport"]


@dataclass
class ResourceReport:
    """Averages over one measurement window.

    *storage* nodes are NDB datanodes (HopsFS) or OSDs (CephFS);
    *server* nodes are namenodes (HopsFS) or MDSs (CephFS).
    CPU is percent of the host's cores; network/disk are MB/s per node.
    """

    window_ms: float = 0.0
    storage_cpu_pct: float = 0.0
    server_cpu_pct: float = 0.0
    storage_net_read_mb_s: float = 0.0
    storage_net_write_mb_s: float = 0.0
    server_net_read_mb_s: float = 0.0
    server_net_write_mb_s: float = 0.0
    storage_disk_read_mb_s: float = 0.0
    storage_disk_write_mb_s: float = 0.0
    server_disk_write_mb_s: float = 0.0
    # HopsFS only: NDB per-thread-type CPU percent (Figure 11).
    ndb_thread_cpu_pct: dict[str, float] = field(default_factory=dict)
    cross_az_mb: float = 0.0
    intra_az_mb: float = 0.0

    def as_rows(self) -> list[tuple[str, float]]:
        rows = [
            ("storage CPU %", self.storage_cpu_pct),
            ("server CPU %", self.server_cpu_pct),
            ("storage net read MB/s", self.storage_net_read_mb_s),
            ("storage net write MB/s", self.storage_net_write_mb_s),
            ("server net read MB/s", self.server_net_read_mb_s),
            ("server net write MB/s", self.server_net_write_mb_s),
            ("storage disk read MB/s", self.storage_disk_read_mb_s),
            ("storage disk write MB/s", self.storage_disk_write_mb_s),
            ("cross-AZ MB", self.cross_az_mb),
            ("intra-AZ MB", self.intra_az_mb),
        ]
        return rows
