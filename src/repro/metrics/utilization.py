"""Resource-utilization reports (Figures 10-13)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ResourceReport", "AzUtilization", "per_az_utilization"]


@dataclass
class AzUtilization:
    """Per-AZ network aggregation over one measurement window.

    Rates are per-node averages within the AZ (same convention as the
    per-node fields of :class:`ResourceReport`), so AZ rows are directly
    comparable regardless of how many nodes each AZ hosts.
    """

    az: int
    storage_nodes: int = 0
    server_nodes: int = 0
    storage_net_read_mb_s: float = 0.0
    storage_net_write_mb_s: float = 0.0
    server_net_read_mb_s: float = 0.0
    server_net_write_mb_s: float = 0.0

    @property
    def storage_net_mb_s(self) -> float:
        return self.storage_net_read_mb_s + self.storage_net_write_mb_s

    @property
    def server_net_mb_s(self) -> float:
        return self.server_net_read_mb_s + self.server_net_write_mb_s


def per_az_utilization(delta, storage_addrs, server_addrs, az_of, window_ms: float):
    """Aggregate a traffic delta into per-AZ, per-node-average rates.

    ``delta`` is a :class:`repro.net.traffic.TrafficMatrix` delta;
    ``az_of`` maps an address to its AZ.  Returns ``{az: AzUtilization}``
    sorted by AZ id.
    """
    if window_ms <= 0:
        return {}
    mb = 1000.0  # bytes/ms -> MB/s, matching the per-node fields
    sums: dict[int, list] = {}  # az -> [stor_recv, stor_sent, srv_recv, srv_sent, n_stor, n_srv]
    for addrs, base in ((storage_addrs, 0), (server_addrs, 2)):
        for addr in addrs:
            az = az_of(addr)
            acc = sums.setdefault(az, [0.0, 0.0, 0.0, 0.0, 0, 0])
            acc[4 + base // 2] += 1
            node = delta.node.get(addr)
            if node is None:
                continue
            acc[base] += node.received
            acc[base + 1] += node.sent
    out = {}
    for az in sorted(sums):
        recv_s, sent_s, recv_m, sent_m, n_stor, n_srv = sums[az]
        out[az] = AzUtilization(
            az=az,
            storage_nodes=n_stor,
            server_nodes=n_srv,
            storage_net_read_mb_s=recv_s / max(1, n_stor) / window_ms / mb,
            storage_net_write_mb_s=sent_s / max(1, n_stor) / window_ms / mb,
            server_net_read_mb_s=recv_m / max(1, n_srv) / window_ms / mb,
            server_net_write_mb_s=sent_m / max(1, n_srv) / window_ms / mb,
        )
    return out


@dataclass
class ResourceReport:
    """Averages over one measurement window.

    *storage* nodes are NDB datanodes (HopsFS) or OSDs (CephFS);
    *server* nodes are namenodes (HopsFS) or MDSs (CephFS).
    CPU is percent of the host's cores; network/disk are MB/s per node.
    """

    window_ms: float = 0.0
    storage_cpu_pct: float = 0.0
    server_cpu_pct: float = 0.0
    storage_net_read_mb_s: float = 0.0
    storage_net_write_mb_s: float = 0.0
    server_net_read_mb_s: float = 0.0
    server_net_write_mb_s: float = 0.0
    storage_disk_read_mb_s: float = 0.0
    storage_disk_write_mb_s: float = 0.0
    server_disk_write_mb_s: float = 0.0
    # HopsFS only: NDB per-thread-type CPU percent (Figure 11).
    ndb_thread_cpu_pct: dict[str, float] = field(default_factory=dict)
    cross_az_mb: float = 0.0
    intra_az_mb: float = 0.0
    # Per-AZ aggregation (az -> AzUtilization), alongside the per-node
    # averages above; Figures 12/13 use it to report AZ skew.
    per_az: dict[int, AzUtilization] = field(default_factory=dict)

    def az_skew(self, tier: str = "storage") -> float:
        """Max/mean ratio of per-AZ network rates (1.0 = perfectly even)."""
        if not self.per_az:
            return 1.0
        attr = "storage_net_mb_s" if tier == "storage" else "server_net_mb_s"
        rates = [getattr(u, attr) for u in self.per_az.values()]
        mean = sum(rates) / len(rates)
        if mean <= 0:
            return 1.0
        return max(rates) / mean

    def as_rows(self) -> list[tuple[str, float]]:
        rows = [
            ("storage CPU %", self.storage_cpu_pct),
            ("server CPU %", self.server_cpu_pct),
            ("storage net read MB/s", self.storage_net_read_mb_s),
            ("storage net write MB/s", self.storage_net_write_mb_s),
            ("server net read MB/s", self.server_net_read_mb_s),
            ("server net write MB/s", self.server_net_write_mb_s),
            ("storage disk read MB/s", self.storage_disk_read_mb_s),
            ("storage disk write MB/s", self.storage_disk_write_mb_s),
            ("cross-AZ MB", self.cross_az_mb),
            ("intra-AZ MB", self.intra_az_mb),
        ]
        for az, util in sorted(self.per_az.items()):
            rows.append((f"az{az} storage net MB/s", util.storage_net_mb_s))
            rows.append((f"az{az} server net MB/s", util.server_net_mb_s))
        return rows
