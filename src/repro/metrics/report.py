"""Text tables for figures and paper-vs-measured comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Table", "format_value", "comparison_line", "az_skew_note"]


def format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """A printable result table for one figure/table of the paper."""

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        cells = [[format_value(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())

    def column(self, header: str) -> list:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


def az_skew_note(setup: str, resource, tier: str = "storage") -> Optional[str]:
    """One-line per-AZ skew summary for a figure note (None if no AZ data).

    ``resource`` is a :class:`repro.metrics.utilization.ResourceReport`
    whose ``per_az`` field was filled by the adapter.
    """
    if not resource.per_az:
        return None
    attr = "storage_net_mb_s" if tier == "storage" else "server_net_mb_s"
    parts = [
        f"az{az} {format_value(getattr(util, attr))}"
        for az, util in sorted(resource.per_az.items())
    ]
    skew = resource.az_skew(tier)
    return (
        f"{setup}: per-AZ {tier} net MB/s per node: "
        + ", ".join(parts)
        + f"  (max/mean {skew:.2f}x)"
    )


def comparison_line(
    claim: str, paper_value: str, measured_value, ok: Optional[bool] = None
) -> str:
    """One line of EXPERIMENTS.md-style paper-vs-measured reporting."""
    verdict = "" if ok is None else ("  [holds]" if ok else "  [DEVIATES]")
    return f"{claim}: paper={paper_value}  measured={format_value(measured_value)}{verdict}"
