"""Metrics: collection, utilization reports, and figure tables."""

from .collectors import MetricsCollector, percentile
from .report import Table, az_skew_note, comparison_line, format_value
from .utilization import AzUtilization, ResourceReport, per_az_utilization

__all__ = [
    "MetricsCollector",
    "percentile",
    "Table",
    "az_skew_note",
    "comparison_line",
    "format_value",
    "AzUtilization",
    "ResourceReport",
    "per_az_utilization",
]
