"""Metrics: collection, utilization reports, and figure tables."""

from .collectors import MetricsCollector, percentile
from .report import Table, comparison_line, format_value
from .utilization import ResourceReport

__all__ = [
    "MetricsCollector",
    "percentile",
    "Table",
    "comparison_line",
    "format_value",
    "ResourceReport",
]
