"""Exception hierarchy for the HopsFS-CL reproduction."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "NetworkError",
    "HostUnreachableError",
    "RpcTimeoutError",
    "NdbError",
    "TransactionAbortedError",
    "LockTimeoutError",
    "NodeFailedError",
    "NoDatanodesError",
    "ClusterShutdownError",
    "FsError",
    "FileNotFoundFsError",
    "FileAlreadyExistsError",
    "NotDirectoryError",
    "DirectoryNotEmptyError",
    "InvalidPathError",
    "LeaseExpiredError",
    "SafeModeError",
    "NoNamenodeError",
    "PlacementError",
    "DeadlineExceededError",
    "ServerBusyError",
    "ServerDrainingError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """Invalid deployment or component configuration."""


# --- network ---------------------------------------------------------------
class NetworkError(ReproError):
    """Base class for network-level failures."""


class HostUnreachableError(NetworkError):
    """Destination host is down or partitioned away from the sender."""


class RpcTimeoutError(NetworkError):
    """An RPC did not complete within its ``timeout_ms`` budget.

    The slow peer may still be alive (gray failure): a reply arriving
    after the timeout is discarded deterministically by the network.
    """


# --- NDB (metadata storage layer) -------------------------------------------
class NdbError(ReproError):
    """Base class for metadata-storage (NDB) errors."""


class TransactionAbortedError(NdbError):
    """The transaction was aborted; the caller may retry.

    Mirrors NDB's temporary errors (deadlock-detection timeout, node
    failure during commit, inactivity timeout) which HopsFS handles with a
    retry loop providing backpressure.
    """

    def __init__(self, message: str, retryable: bool = True):
        super().__init__(message)
        self.retryable = retryable


class LockTimeoutError(TransactionAbortedError):
    """TransactionDeadlockDetectionTimeout fired while waiting for a lock."""


class NodeFailedError(NdbError):
    """An NDB datanode needed by the operation has failed."""


class NoDatanodesError(NdbError):
    """No live NDB datanode can serve the requested partition."""


class ClusterShutdownError(NdbError):
    """The node was told to shut down (lost arbitration / partitioned)."""


# --- file system -------------------------------------------------------------
class FsError(ReproError):
    """Base class for file-system-level errors."""


class FileNotFoundFsError(FsError):
    """Path does not exist."""


class FileAlreadyExistsError(FsError):
    """Create/mkdir target already exists."""


class NotDirectoryError(FsError):
    """A path component is a file where a directory was required."""


class DirectoryNotEmptyError(FsError):
    """Refusing to remove / overwrite a non-empty directory."""


class InvalidPathError(FsError):
    """Malformed path string."""


class LeaseExpiredError(FsError):
    """Writer lease no longer held."""


class SafeModeError(FsError):
    """The namesystem is read-only (e.g. during startup or AZ shutdown)."""


class NoNamenodeError(FsError):
    """Client could not find any live metadata server."""


class PlacementError(FsError):
    """Block placement policy could not satisfy its constraints."""


class DeadlineExceededError(FsError):
    """The per-op deadline expired; a hop refused to start doomed work."""


class ServerBusyError(FsError):
    """Namenode admission control shed the request; retry after backoff."""


class ServerDrainingError(ServerBusyError):
    """The namenode is draining out of the pool; pick another server now.

    Unlike plain overload shedding, a drain never clears on its own —
    backing off and retrying the same server is wasted work, so clients
    drop it from their local view immediately instead of waiting for the
    next membership refresh.
    """
