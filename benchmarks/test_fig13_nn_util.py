"""Figure 13: network utilization per metadata server."""

from repro.experiments import figures

from .conftest import run_and_print


def _nums(cell):
    return [float(x) for x in cell.split("/")]


def test_fig13(benchmark):
    table = run_and_print(benchmark, figures.fig13)
    rows = {row[0]: row[1:] for row in table.rows}
    # HopsFS namenodes push an order of magnitude more traffic than MDSs
    # (CephFS serves most requests from the client-side cache).
    hops = _nums(rows["HopsFS-CL (3,3)"][0])[0]
    ceph = _nums(rows["CephFS"][0])[0]
    assert hops > 2 * ceph
