"""Kernel speed gate: events/sec now vs the numbers in BENCH_kernel.json.

Two kinds of assertion:

* The *recorded* speedups in the committed ``BENCH_kernel.json`` must show
  the fast-path kernel at >= 2x the pre-PR kernel (microbench and the
  fig5 reference point).  Those numbers were measured back-to-back on one
  machine, so they are not subject to the noise of whatever machine runs
  this test.
* The *live* kernel must not have regressed: re-measure here and fail if
  events/sec fall more than 20% below the committed numbers (the same
  threshold CI uses).  Wall-clock noise on a loaded machine is real, which
  is why the regression gate is 20% and the measurement is best-of-N.

Run explicitly (``PYTHONPATH=src python -m pytest benchmarks/test_kernel_speed.py``);
the tier-1 suite (testpaths=tests) does not include it.
"""

import json
import os
import pathlib

import pytest

from repro.experiments.perf import (
    async_point,
    fig5_reference_point,
    kernel_microbench,
    listing_point,
)

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_kernel.json"

# CI threshold: fail when live events/sec drop >20% below the committed
# baseline (see .github/workflows/ci.yml).
REGRESSION_TOLERANCE = 0.8


def _committed():
    if not BENCH_PATH.exists():
        pytest.skip("no committed BENCH_kernel.json (run `python -m repro perf`)")
    with open(BENCH_PATH) as fh:
        return json.load(fh)


def _require_scale_one():
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    if scale != 1.0:
        pytest.skip("BENCH_kernel.json numbers are recorded at REPRO_BENCH_SCALE=1")


def test_recorded_speedup_vs_pre_pr_kernel():
    """The committed record must show the >= 2x events/sec win."""
    report = _committed()
    assert report["microbench_speedup_vs_pre_pr"] >= 2.0
    assert report["fig5_speedup_vs_pre_pr"] >= 2.0


def test_microbench_has_not_regressed():
    report = _committed()
    _require_scale_one()
    committed = report["microbench"]["events_per_sec"]
    live = kernel_microbench(repeats=5)
    assert live["events"] == report["microbench"]["events"], (
        "microbench event count changed; re-record BENCH_kernel.json"
    )
    assert live["events_per_sec"] >= REGRESSION_TOLERANCE * committed, (
        f"kernel microbench regressed: {live['events_per_sec']:,} events/s live "
        f"vs {committed:,} committed"
    )


def test_fig5_point_has_not_regressed():
    report = _committed()
    _require_scale_one()
    committed = report["fig5_point"]["events_per_sec"]
    live = min(
        (fig5_reference_point() for _ in range(3)),
        key=lambda r: r["wall_s"],
    )
    assert live["events"] == report["fig5_point"]["events"], (
        "fig5 reference point event count changed; re-record BENCH_kernel.json"
    )
    # Simulated results are deterministic even though wall time is not.
    assert live["throughput_ops_s"] == report["fig5_point"]["throughput_ops_s"]
    assert live["events_per_sec"] >= REGRESSION_TOLERANCE * committed, (
        f"fig5 reference point regressed: {live['events_per_sec']:,} events/s live "
        f"vs {committed:,} committed"
    )


def test_async_point_recorded_win():
    """The committed record must show async group commit beating sync on
    the reference setup (throughput up or latency down)."""
    report = _committed()
    commit = report.get("async_point")
    assert commit is not None, (
        "BENCH_kernel.json has no async_point; re-record with `python -m repro perf`"
    )
    assert commit["async_speedup"] > 1.0 or commit["async_latency_ratio"] < 1.0, commit


def test_async_point_has_not_regressed():
    """The same 20% regression rule as the sync points, applied to the
    async group-commit throughput point."""
    report = _committed()
    _require_scale_one()
    if "async_point" not in report:
        pytest.skip("no async_point recorded; re-record BENCH_kernel.json")
    committed = report["async_point"]
    live = async_point()
    # Simulated throughput is deterministic; the tolerance covers deliberate
    # re-records on slightly different commit policies, not wall-clock noise.
    assert live["async"]["throughput_ops_s"] >= (
        REGRESSION_TOLERANCE * committed["async"]["throughput_ops_s"]
    ), (
        f"async point regressed: {live['async']['throughput_ops_s']:,} ops/s live "
        f"vs {committed['async']['throughput_ops_s']:,} committed"
    )
    assert live["async_speedup"] > 1.0, live


def test_listing_point_recorded_win():
    """The committed record must show the pre-materialized listing cache
    clearing its acceptance bar on the Spotify mix: >= 1.3x throughput
    over the legacy transactional read path."""
    report = _committed()
    commit = report.get("listing_point")
    assert commit is not None, (
        "BENCH_kernel.json has no listing_point; re-record with `python -m repro perf`"
    )
    assert commit["listing_speedup"] >= 1.3, commit


def test_listing_point_has_not_regressed():
    """The same 20% regression rule as the sync points, applied to the
    cache-on Spotify-mix throughput point."""
    report = _committed()
    _require_scale_one()
    if "listing_point" not in report:
        pytest.skip("no listing_point recorded; re-record BENCH_kernel.json")
    committed = report["listing_point"]
    live = listing_point()
    # Simulated throughput is deterministic; the tolerance covers deliberate
    # re-records on slightly different cache policies, not wall-clock noise.
    assert live["on"]["throughput_ops_s"] >= (
        REGRESSION_TOLERANCE * committed["on"]["throughput_ops_s"]
    ), (
        f"listing point regressed: {live['on']['throughput_ops_s']:,} ops/s live "
        f"vs {committed['on']['throughput_ops_s']:,} committed"
    )
    assert live["listing_speedup"] > 1.0, live


def test_live_fig5_speedup_vs_pre_pr_kernel():
    """The acceptance gate, measured live: >= 2x events/sec over the pre-PR
    kernel on the fig5 reference point (pre-PR number recorded in
    BENCH_kernel.json at PR start, same machine and protocol)."""
    report = _committed()
    _require_scale_one()
    pre = report["pre_pr_baseline"]["fig5_point"]["events_per_sec"]
    live = min(
        (fig5_reference_point() for _ in range(3)),
        key=lambda r: r["wall_s"],
    )
    assert live["events_per_sec"] >= 2.0 * pre, (
        f"live fig5 point {live['events_per_sec']:,} events/s is under 2x the "
        f"pre-PR kernel's {pre:,}"
    )
