"""Table II: the 27-thread NDB CPU configuration."""

from repro.experiments import figures

from .conftest import run_and_print


def test_table2(benchmark):
    table = run_and_print(benchmark, figures.table2)
    total_row = table.rows[-1]
    assert total_row[1] == 27
