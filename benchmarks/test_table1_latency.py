"""Table I: inter-AZ latency matrix of us-west1."""

from repro.experiments import figures
from repro.net import TABLE1_LATENCY_MS

from .conftest import run_and_print


def test_table1(benchmark):
    table = run_and_print(benchmark, figures.table1)
    # intra-AZ latency is always the row minimum (diagonal dominance)
    for row in table.rows:
        name, values = row[0], row[1:]
        diagonal = TABLE1_LATENCY_MS[(name, name)]
        assert diagonal == min(values)
