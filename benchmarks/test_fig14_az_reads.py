"""Figure 14: AZ-local reads with the Read Backup table option."""

from repro.experiments import figures

from .conftest import run_and_print


def test_fig14(benchmark):
    table = run_and_print(benchmark, lambda: figures.fig14(num_partitions_shown=12))
    enabled = [r for r in table.rows if r[0] == "ReadBackup Enabled"]
    disabled = [r for r in table.rows if r[0] == "ReadBackup Disabled"]
    assert enabled and disabled
    # Disabled: every read goes to the primary replica.
    for row in disabled:
        assert row[2] == 100.0
    # Enabled: backups serve a substantial share of reads (AZ-local reads).
    backup_share = sum(r[3] + r[4] for r in enabled) / len(enabled)
    assert backup_share > 30.0
