"""Figure 10: CPU utilization of storage nodes and metadata servers."""

from repro.experiments import figures

from .conftest import run_and_print


def test_fig10(benchmark):
    table = run_and_print(benchmark, figures.fig10)
    rows = {row[0]: row[1:] for row in table.rows}

    def storage(cell):
        return float(cell.split("/")[0])

    def server(cell):
        return float(cell.split("/")[1])

    # NDB CPU grows with metadata servers; CephFS OSD CPU stays low/flat.
    assert storage(rows["HopsFS (2,1)"][-1]) > storage(rows["HopsFS (2,1)"][0])
    assert storage(rows["CephFS"][-1]) < 30.0
    # The single-threaded MDS cannot use its 32-core host (Fig. 10b).
    assert server(rows["CephFS"][-1]) < 15.0
