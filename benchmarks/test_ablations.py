"""Ablations: which AZ-awareness mechanism buys what.

The paper bundles its mechanisms into HopsFS-CL; these benchmarks switch
them on one at a time to attribute the win (DESIGN.md §5):

* Read Backup only (AZ-local committed reads)
* full AZ awareness (RB + TC selection + NN selection)

measured as cross-AZ bytes per completed operation — the currency of
Section III (C2) and Section V-E.
"""

from repro.experiments.runner import RunConfig, run_point
from repro.experiments.setups import SetupSpec
from repro.metrics import Table

from .conftest import run_and_print

_CFG = RunConfig(warmup_ms=10, window_ms=10, clients_per_server=32)


def _cross_az_bytes_per_op(spec_name_or_spec, servers=6):
    point = run_point(spec_name_or_spec, servers, config=_CFG)
    if point.completed == 0:
        return 0.0, point
    total_mb = point.resource.cross_az_mb
    return total_mb * 1e6 / point.completed, point


def _ablation_table():
    table = Table(
        title="Ablation - cross-AZ bytes per op, 3-AZ deployments (6 NNs)",
        headers=["configuration", "cross-AZ B/op", "ops/s"],
    )
    vanilla = SetupSpec("vanilla", "hopsfs", 3, (1, 2, 3), az_aware=False)
    full = SetupSpec("full CL", "hopsfs", 3, (1, 2, 3), az_aware=True)
    for spec in (vanilla, full):
        per_op, point = _cross_az_bytes_per_op(spec)
        table.add_row(spec.name, per_op, point.throughput_ops_s)
    return table


def test_az_awareness_ablation(benchmark):
    table = run_and_print(benchmark, _ablation_table)
    rows = {r[0]: r[1] for r in table.rows}
    # Full AZ awareness cuts cross-AZ bytes per op by an order of magnitude.
    assert rows["full CL"] < 0.3 * rows["vanilla"]


def _replication_sweep():
    """Metadata replication factor sweep (the paper's R=2 vs R=3 axis)."""
    table = Table(
        title="Ablation - NDB replication factor vs mutation throughput (6 NNs)",
        headers=["R", "createFile ops/s"],
    )
    from repro.types import OpType

    for r in (2, 3):
        spec = SetupSpec(f"R{r}", "hopsfs", r, (2,), az_aware=False)
        point = run_point(spec, 6, workload="single", op=OpType.CREATE_FILE, config=_CFG)
        table.add_row(r, point.throughput_ops_s)
    return table


def test_replication_factor_ablation(benchmark):
    table = run_and_print(benchmark, _replication_sweep)
    r2, r3 = table.rows[0][1], table.rows[1][1]
    # Longer commit chains cost mutation throughput (Fig. 7's R2->R3 drop).
    assert r3 < r2
