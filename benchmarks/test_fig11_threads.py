"""Figure 11: per-thread-type NDB CPU for HopsFS-CL (3,3)."""

from repro.experiments import figures

from .conftest import run_and_print


def test_fig11(benchmark):
    table = run_and_print(benchmark, figures.fig11)
    rows = {row[0]: row[1:] for row in table.rows}
    # LDM threads dominate; utilization grows with load.
    assert max(rows["LDM"]) == max(max(v) for v in rows.values())
    assert rows["LDM"][-1] > rows["LDM"][0]
