"""Scale engine gates: golden smoke hash + aggregate events/sec vs committed.

Three kinds of assertion, mirroring ``test_kernel_speed.py``:

* The *golden* smoke run (``SMOKE_CONFIG``: 100k clients, 2 shards) must
  reproduce the committed merged dispatch hash and artifact hash exactly —
  simulated behaviour is deterministic, so any drift is a model change that
  needs a deliberate golden bump.
* The *recorded* scale point in ``BENCH_kernel.json`` must show the sharded
  engine at >= 2x the kernel microbench's events/sec on >= 4 shards, over a
  >= 1M virtual-client population.  Recorded back-to-back on one machine,
  so not subject to this machine's noise.
* The *live* engine must not have regressed: re-run the smoke config and
  fail if per-CPU-second event throughput falls more than 20% below the
  committed number (same tolerance as the kernel gate).

Run explicitly (``PYTHONPATH=src python -m pytest benchmarks/test_scale_speed.py``);
the tier-1 suite (testpaths=tests) does not include it.
"""

import json
import pathlib

import pytest

from repro.experiments.perf import SCALE_POINT_SHARDS
from repro.experiments.scale import SMOKE_CONFIG, run_scale

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_kernel.json"
GOLDEN_PATH = pathlib.Path(__file__).parent / "results" / "scale_smoke_golden.json"

REGRESSION_TOLERANCE = 0.8  # same 20% rule as the kernel-speed gate


def _committed():
    if not BENCH_PATH.exists():
        pytest.skip("no committed BENCH_kernel.json (run `python -m repro perf`)")
    with open(BENCH_PATH) as fh:
        return json.load(fh)


def _golden():
    if not GOLDEN_PATH.exists():
        pytest.skip("no committed scale smoke golden")
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def smoke_artifact():
    return run_scale(SMOKE_CONFIG)


def test_smoke_matches_golden_hashes(smoke_artifact):
    golden = _golden()
    assert smoke_artifact["merged"]["dispatch_hash"] == golden["merged_dispatch_hash"], (
        "merged dispatch hash drifted from the committed golden; if the "
        "simulation model changed deliberately, regenerate "
        "benchmarks/results/scale_smoke_golden.json"
    )
    assert smoke_artifact["artifact_hash"] == golden["artifact_hash"]
    for shard in smoke_artifact["shards"]:
        assert (
            shard["dispatch_hash"]
            == golden["shard_dispatch_hashes"][str(shard["shard_id"])]
        )
    for key, value in golden["merged_counts"].items():
        assert smoke_artifact["merged"][key] == value


def test_recorded_scale_point_meets_acceptance():
    """Committed scale_point: >= 1M clients, >= 4 shards, >= 2x microbench."""
    report = _committed()
    point = report.get("scale_point")
    if point is None:
        pytest.skip("BENCH_kernel.json has no scale_point (re-record)")
    assert point["population"] >= 1_000_000
    assert point["shards"] >= 4
    assert point["shards"] == SCALE_POINT_SHARDS
    micro = report["microbench"]["events_per_sec"]
    assert point["aggregate_events_per_sec"] >= 2.0 * micro, (
        f"recorded scale point {point['aggregate_events_per_sec']:,} events/s "
        f"aggregate is under 2x the microbench's {micro:,}"
    )
    assert point["aggregate_speedup_vs_microbench"] >= 2.0


def test_live_smoke_throughput_has_not_regressed(smoke_artifact):
    report = _committed()
    point = report.get("scale_point")
    if point is None:
        pytest.skip("BENCH_kernel.json has no scale_point (re-record)")
    committed_rate = point["aggregate_events_per_sec"] / point["shards"]
    # Best-of-N, like every wall-clock gate in this suite: the smoke windows
    # are short, so take the fastest shard over three behaviourally
    # identical runs.
    artifacts = [smoke_artifact] + [run_scale(SMOKE_CONFIG) for _ in range(2)]
    live_rate = max(
        s["events_per_cpu_sec"] for a in artifacts for s in a["timing"]["per_shard"]
    )
    assert live_rate >= REGRESSION_TOLERANCE * committed_rate, (
        f"scale engine regressed: best shard sustained {live_rate:,} "
        f"events/cpu-s live vs {committed_rate:,.0f} committed per shard"
    )
