"""Shared helpers for the figure/table benchmarks.

Each benchmark regenerates one table or figure of the paper, prints the
series, and persists it under ``benchmarks/results/<name>.txt``.
Figures 5, 6, 8, 10-13 share one cached Spotify sweep (as in the paper's
methodology), so the first of them pays the simulation cost and the rest
reuse it.

Scale knobs:
  REPRO_BENCH_FULL=1   -> the paper's full 1..60 metadata-server grid
  REPRO_BENCH_SCALE=x  -> multiply measurement windows
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_and_print(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark; print and persist its table."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    rendered = result.render()
    print()
    print(rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    name = benchmark.name.replace("/", "_")
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
    return result
