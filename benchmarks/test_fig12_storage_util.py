"""Figure 12: network/disk utilization of the metadata storage layer."""

from repro.experiments import figures

from .conftest import run_and_print


def _nums(cell):
    return [float(x) for x in cell.split("/")]


def test_fig12(benchmark):
    table = run_and_print(benchmark, figures.fig12)
    rows = {row[0]: row[1:] for row in table.rows}
    # NDB network utilization grows with the number of metadata servers.
    assert _nums(rows["HopsFS (2,1)"][-1])[0] > _nums(rows["HopsFS (2,1)"][0])[0]
    # CephFS OSDs are disk-write heavy (the MDS journal), not network heavy.
    ceph_last = _nums(rows["CephFS - DirPinned"][-1])
    assert ceph_last[2] > 0  # journal bytes hit the OSD disks
