"""Figure 8: average end-to-end latency under the Spotify workload."""

from repro.experiments import figures

from .conftest import run_and_print


def test_fig8(benchmark):
    table = run_and_print(benchmark, figures.fig8)
    rows = {row[0]: row[1:] for row in table.rows}
    # HopsFS-CL is never slower than the AZ-unaware 3-AZ deployments.
    for n in range(len(rows["HopsFS-CL (3,3)"])):
        assert rows["HopsFS-CL (3,3)"][n] <= rows["HopsFS (3,3)"][n] * 1.15
    # Loaded HopsFS latency stays in the paper's 5-15ms band at scale.
    assert 2.0 < rows["HopsFS (2,1)"][-1] < 20.0
