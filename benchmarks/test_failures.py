"""Section V-F: failure drills measured as benchmarks.

Covers the failure matrix of the paper: NDB node failure with promotion,
AZ-level failure of a (3,3) HopsFS-CL deployment, split-brain arbitration,
namenode failover, and block re-replication.
"""

from repro.errors import TransactionAbortedError
from repro.hopsfs import HopsFsConfig, build_hopsfs
from repro.ndb import NdbConfig, run_transaction


def _build(replication=3, azs=(1, 2, 3), heartbeats=True):
    return build_hopsfs(
        num_namenodes=3,
        azs=azs,
        az_aware=True,
        ndb_config=NdbConfig(
            num_datanodes=6,
            replication=replication,
            az_aware=True,
            heartbeat_interval_ms=10.0,
        ),
        hopsfs_config=HopsFsConfig(
            election_period_ms=50.0,
            op_cost_read_ms=0.01,
            op_cost_mutation_ms=0.01,
        ),
        heartbeats=heartbeats,
        seed=11,
    )


def _drill_az_failure():
    """Kill a whole AZ; the file system must keep serving."""
    fs = _build()
    client = fs.client(az=2)
    env = fs.env

    def scenario():
        yield from fs.await_election()
        yield from client.mkdir("/survive")
        yield from client.create("/survive/before")
        # AZ 1 goes dark: NDB datanodes, namenodes, everything.
        for dn in fs.ndb.datanodes.values():
            if fs.topology.az_of(dn.addr) == 1:
                dn.shutdown("AZ failure")
        for nn in fs.namenodes:
            if fs.topology.az_of(nn.addr) == 1:
                nn.shutdown()
        yield env.timeout(200)  # failure detection + promotions
        yield from client.create("/survive/after")
        listing = yield from client.listdir("/survive")
        return listing

    return fs.env.run_process(scenario(), until=120_000)


def test_az_failure_tolerated(benchmark):
    listing = benchmark.pedantic(_drill_az_failure, rounds=1, iterations=1)
    assert listing == ["after", "before"]


def _drill_split_brain():
    """Partition AZ2 from AZ3: the arbitrator keeps exactly one side."""
    fs = build_hopsfs(
        num_namenodes=2,
        azs=(2, 3),
        az_aware=True,
        ndb_config=NdbConfig(
            num_datanodes=4, replication=2, az_aware=True, heartbeat_interval_ms=10.0
        ),
        hopsfs_config=HopsFsConfig(election_period_ms=50.0),
        heartbeats=True,
        seed=12,
    )
    env = fs.env

    def scenario():
        yield from fs.await_election()
        fs.network.partition_azs({2}, {3})
        yield env.timeout(600)
        survivors = [dn for dn in fs.ndb.datanodes.values() if dn.running]
        azs = {fs.topology.az_of(dn.addr) for dn in survivors}
        return len(survivors), azs

    return env.run_process(scenario(), until=120_000)


def test_split_brain_arbitration(benchmark):
    count, azs = benchmark.pedantic(_drill_split_brain, rounds=1, iterations=1)
    assert count == 2  # one full side survives
    assert len(azs) == 1  # and it is AZ-pure


def _drill_ndb_node_failure():
    """A datanode crash aborts in-flight txns; retries succeed."""
    fs = _build(heartbeats=True)
    env = fs.env
    api = fs.ndb.api(fs.namenodes[0].addr)

    def scenario():
        yield from fs.await_election()

        def body(txn):
            yield from txn.write("inodes", (999, "probe"), {"v": 1}, partition_key=999)

        yield from run_transaction(api, body, hint_table="inodes", hint_key=999)
        victim = next(iter(fs.ndb.datanodes.values()))
        fs.ndb.crash_datanode(victim.addr)
        yield env.timeout(200)  # heartbeat detection

        def body2(txn):
            value = yield from txn.read("inodes", (999, "probe"), partition_key=999)
            return value

        value = yield from run_transaction(api, body2, hint_table="inodes", hint_key=999)
        return value, fs.ndb.is_operational()

    return env.run_process(scenario(), until=120_000)


def test_ndb_node_failure_promotes_backup(benchmark):
    value, operational = benchmark.pedantic(_drill_ndb_node_failure, rounds=1, iterations=1)
    assert value == {"v": 1}
    assert operational
