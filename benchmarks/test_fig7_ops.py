"""Figure 7: single-operation microbenchmarks (mkdir/create/delete/read)."""

from repro.experiments import figures

from .conftest import run_and_print


def test_fig7(benchmark):
    table = run_and_print(benchmark, figures.fig7)
    idx = {h: i for i, h in enumerate(table.headers)}
    rows = {row[0]: row for row in table.rows}

    def val(setup, op):
        return rows[setup][idx[op]]

    # Raising the metadata replication factor from 2 to 3 costs mutation
    # throughput (longer commit chains).
    assert val("HopsFS (3,1)", "createFile") < val("HopsFS (2,1)", "createFile")
    # HopsFS-CL beats CephFS on metadata mutations by a wide margin.
    assert val("HopsFS-CL (3,3)", "createFile") > 3 * val("CephFS", "createFile")
    # Cached CephFS reads are fast; skipping the cache collapses them.
    assert val("CephFS - SkipKCache", "readFile") < 0.2 * val("CephFS", "readFile")
