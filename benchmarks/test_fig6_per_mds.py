"""Figure 6: actual requests handled per metadata server."""

from repro.experiments import figures

from .conftest import run_and_print


def test_fig6(benchmark):
    table = run_and_print(benchmark, figures.fig6)
    rows = {row[0]: row[1:] for row in table.rows}
    # HopsFS-CL namenodes handle far more requests than CephFS MDSs: the
    # kernel cache hides most client reads from the MDS.
    assert max(rows["HopsFS-CL (3,3)"]) > 3 * max(rows["CephFS"])
