"""Figure 9: latency percentiles at 50% load."""

import os

from repro.experiments import figures

from .conftest import run_and_print


def test_fig9(benchmark):
    servers = 60 if os.environ.get("REPRO_BENCH_FULL") else 24
    table = run_and_print(benchmark, lambda: figures.fig9(num_servers=servers))
    rows = {(r[0], r[1]): r[2:] for r in table.rows}
    # Percentiles are ordered and unloaded reads are in the ms range.
    for (setup, op), (p50, p90, p99) in rows.items():
        if p50 or p90 or p99:
            assert p50 <= p90 <= p99
    read = rows[("HopsFS-CL (3,3)", "readFile")]
    if read[0]:
        assert read[0] < 30.0
