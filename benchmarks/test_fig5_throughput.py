"""Figure 5: Spotify-workload throughput vs metadata servers, 9 setups."""

from repro.experiments import figures
from repro.experiments.runner import server_grid

from .conftest import run_and_print


def test_fig5(benchmark):
    table = run_and_print(benchmark, figures.fig5)
    grid = server_grid()
    last = str(grid[-1])
    tput = {row[0]: row[1:] for row in table.rows}
    peak = {name: max(values) for name, values in tput.items()}

    # Headline: HopsFS at 1 AZ reaches ~1.6M ops/s at scale.
    assert peak["HopsFS (2,1)"] > 1_200_000
    # AZ-unaware 3-AZ deployments lose throughput vs 1 AZ.
    assert peak["HopsFS (2,3)"] < peak["HopsFS (2,1)"]
    assert peak["HopsFS (3,3)"] < peak["HopsFS (3,1)"]
    # HopsFS-CL restores (or beats) the single-AZ level.
    assert peak["HopsFS-CL (2,3)"] >= 0.95 * peak["HopsFS (2,1)"]
    assert peak["HopsFS-CL (3,3)"] >= peak["HopsFS (3,3)"]
    # HopsFS-CL beats the default CephFS setup by ~2x.
    assert peak["HopsFS-CL (3,3)"] > 1.5 * peak["CephFS"]
    # Skipping the kernel cache exposes the true (tiny) MDS throughput.
    assert peak["CephFS - SkipKCache"] < 0.1 * peak["CephFS"]
