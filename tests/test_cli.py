"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "HopsFS-CL (3,3)" in out
    assert "fig14" in out


def test_no_command_prints_help(capsys):
    assert main([]) == 1
    assert "usage" in capsys.readouterr().out.lower()


def test_table_targets(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "0.399" in out  # the b<->c latency from Table I
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "LDM" in out


def test_point_unknown_setup(capsys):
    assert main(["point", "NopeFS"]) == 2


def test_point_runs(capsys):
    code = main(
        ["point", "HopsFS (2,1)", "--servers", "1", "--warmup", "3", "--window", "5"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "ops/s" in out


def test_point_trace_writes_valid_chrome_trace(tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace

    trace = tmp_path / "trace.json"
    jsonl = tmp_path / "spans.jsonl"
    code = main([
        "point", "HopsFS-CL (3,3)", "--servers", "3",
        "--warmup", "3", "--window", "3",
        "--trace", str(trace), "--trace-jsonl", str(jsonl),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Latency breakdown" in out
    assert "perfetto" in out
    doc = json.loads(trace.read_text())
    assert validate_chrome_trace(doc) == []
    assert any(e.get("name") == "client.op" for e in doc["traceEvents"])
    first = json.loads(jsonl.read_text().splitlines()[0])
    assert "span_id" in first


def test_report_prints_breakdown_per_setup(capsys):
    code = main([
        "report", "--setups", "HopsFS (2,1)", "CephFS",
        "--servers", "1", "--warmup", "3", "--window", "3",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert out.count("Latency breakdown") == 2
    assert "HopsFS (2,1)" in out
    assert "CephFS" in out


def test_report_unknown_setup(capsys):
    assert main(["report", "--setups", "NopeFS"]) == 2


def test_chaos_list(capsys):
    assert main(["chaos", "list"]) == 0
    out = capsys.readouterr().out
    assert "az-outage-under-load" in out
    assert "hopsfs-cl-3-3" in out
    assert "HopsFS-CL (3,3)" in out


def test_chaos_unknown_scenario(capsys):
    assert main(["chaos", "warp-core-breach"]) == 2


def test_chaos_unknown_setup(capsys):
    assert main(["chaos", "az-outage-under-load", "--setup", "nope"]) == 2


def test_chaos_runs_and_writes_json(tmp_path, capsys):
    import json

    out_path = tmp_path / "chaos.json"
    code = main([
        "chaos", "az-outage-under-load",
        "--setup", "hopsfs-cl-3-3", "--servers", "2",
        "--json", str(out_path), "--trace",
    ])
    out = capsys.readouterr().out
    assert code == 0  # all invariants green
    assert "availability timeline" in out
    assert "[PASS]" in out
    assert "chaos.fault" in out
    doc = json.loads(out_path.read_text())
    assert doc["all_green"] is True
    assert doc["setup"] == "HopsFS-CL (3,3)"
    assert len(doc["fault_trace"]) == len(doc["schedule"]) == 2
