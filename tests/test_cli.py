"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "HopsFS-CL (3,3)" in out
    assert "fig14" in out


def test_no_command_prints_help(capsys):
    assert main([]) == 1
    assert "usage" in capsys.readouterr().out.lower()


def test_table_targets(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "0.399" in out  # the b<->c latency from Table I
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "LDM" in out


def test_point_unknown_setup(capsys):
    assert main(["point", "NopeFS"]) == 2


def test_point_runs(capsys):
    code = main(
        ["point", "HopsFS (2,1)", "--servers", "1", "--warmup", "3", "--window", "5"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "ops/s" in out
