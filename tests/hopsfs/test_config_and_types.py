"""Config objects, op-type metadata and deployment validation."""

import pytest

from repro.errors import ConfigError
from repro.hopsfs import HopsFsConfig, build_hopsfs
from repro.types import MUTATING_OPS, NodeAddress, NodeKind, OpResult, OpType


def test_op_cost_split_read_vs_mutation():
    config = HopsFsConfig()
    assert config.op_cost(OpType.READ_FILE) == config.op_cost_read_ms
    assert config.op_cost(OpType.CREATE_FILE) == config.op_cost_mutation_ms
    assert config.op_cost(OpType.MKDIR) > config.op_cost(OpType.STAT)


def test_config_validation():
    with pytest.raises(ConfigError):
        HopsFsConfig(nn_cores=0)


def test_mutating_ops_classification():
    assert OpType.CREATE_FILE.mutates
    assert OpType.RENAME.mutates
    assert not OpType.READ_FILE.mutates
    assert not OpType.LIST_DIR.mutates
    assert not OpType.EXISTS.mutates
    assert OpType.SET_REPLICATION in MUTATING_OPS


def test_op_result_latency():
    result = OpResult(op=OpType.STAT, start_ms=3.0, end_ms=7.5)
    assert result.latency_ms == 4.5
    assert result.ok


def test_node_address_str_and_ordering():
    a = NodeAddress(NodeKind.NAMENODE, 1)
    b = NodeAddress(NodeKind.NAMENODE, 2)
    assert str(a) == "nn1"
    assert a < b
    assert a != NodeAddress(NodeKind.DATANODE, 1)


def test_build_hopsfs_rejects_empty_azs():
    with pytest.raises(ConfigError):
        build_hopsfs(azs=())


def test_deployment_client_az_cycles():
    fs = build_hopsfs(
        num_namenodes=1,
        azs=(1, 2, 3),
        az_aware=True,
        num_ndb_datanodes=3,
        ndb_replication=3,
        election=False,
    )
    azs = [fs.topology.az_of(fs.client().addr) for _ in range(6)]
    assert azs == [1, 2, 3, 1, 2, 3]


def test_mgmt_arbitrator_in_least_loaded_az():
    """Figure 3: the arbitrator sits in the AZ without NDB data."""
    fs = build_hopsfs(
        num_namenodes=1,
        azs=(2, 3),
        az_aware=True,
        num_ndb_datanodes=4,
        ndb_replication=2,
        election=False,
    )
    arbitrator = fs.ndb.mgmt_nodes[0]
    assert arbitrator.az == 1  # the AZ with no datanodes
