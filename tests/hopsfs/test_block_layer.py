"""Block storage layer: placement, pipelines, failures, re-replication."""

import random

import pytest

from repro.errors import PlacementError
from repro.hopsfs import SMALL_FILE_MAX_BYTES, PlacementPolicy, choose_targets
from repro.types import NodeAddress, NodeKind

from .conftest import make_fs, run


def _dns(azs):
    return {
        NodeAddress(NodeKind.DATANODE, i + 1): az for i, az in enumerate(azs)
    }


def test_choose_targets_distinct():
    rng = random.Random(1)
    dns = _dns([1, 1, 2, 2, 3, 3])
    targets = choose_targets(dns, PlacementPolicy.DEFAULT, 1, 3, rng)
    assert len(set(targets)) == 3


def test_az_aware_placement_spans_azs():
    rng = random.Random(1)
    dns = _dns([1, 1, 2, 2, 3, 3])
    for _ in range(20):
        targets = choose_targets(dns, PlacementPolicy.AZ_AWARE, 2, 3, rng)
        azs = {dns[t] for t in targets}
        assert azs == {1, 2, 3}  # one replica per AZ with R=3 over 3 AZs
        assert dns[targets[0]] == 2  # first replica writer-local


def test_az_aware_placement_with_two_azs():
    rng = random.Random(1)
    dns = _dns([1, 1, 1, 2, 2, 2])
    for _ in range(20):
        targets = choose_targets(dns, PlacementPolicy.AZ_AWARE, 1, 3, rng)
        azs = {dns[t] for t in targets}
        assert azs == {1, 2}  # at least one replica in the other AZ


def test_placement_insufficient_nodes_raises():
    rng = random.Random(1)
    with pytest.raises(PlacementError):
        choose_targets(_dns([1, 2]), PlacementPolicy.DEFAULT, 1, 3, rng)


def test_large_file_write_and_read():
    fs = make_fs(num_block_datanodes=3, election_period_ms=20.0)
    client = fs.client()
    size = SMALL_FILE_MAX_BYTES + 1000  # forces the block path

    def scenario():
        yield from fs.await_election()
        yield fs.env.timeout(50)  # DN heartbeats register with the NNs
        yield from client.create("/big", data=b"x" * size)
        content = yield from client.read("/big")
        return content

    content = run(fs, scenario())
    assert not content.is_small
    assert len(content.blocks) == 1
    assert content.inode.size == size
    assert len(content.blocks[0].locations) == 3


def test_block_replicas_on_datanodes():
    fs = make_fs(num_block_datanodes=3, election_period_ms=20.0)
    client = fs.client()
    size = SMALL_FILE_MAX_BYTES * 2

    def scenario():
        yield from fs.await_election()
        yield fs.env.timeout(50)
        yield from client.create("/big", data=b"x" * size)
        content = yield from client.read("/big")
        block_id = content.blocks[0].block_id
        holders = [dn for dn in fs.block_datanodes if block_id in dn.blocks]
        return len(holders)

    assert run(fs, scenario()) == 3


def test_az_aware_block_placement_spans_azs_end_to_end():
    fs = make_fs(
        num_namenodes=3,
        azs=(1, 2, 3),
        az_aware=True,
        num_block_datanodes=6,
        election_period_ms=20.0,
    )
    client = fs.client(az=1)
    size = SMALL_FILE_MAX_BYTES + 1

    def scenario():
        yield from fs.await_election()
        yield fs.env.timeout(100)
        yield from client.create("/big", data=b"x" * size)
        content = yield from client.read("/big")
        return content.blocks[0].locations

    locations = run(fs, scenario())
    azs = {fs.topology.az_of(a) for a in locations}
    assert azs == {1, 2, 3}


def test_rereplication_after_dn_failure():
    """Section IV-C2: the leader restores the replication level."""
    fs = make_fs(num_block_datanodes=4, election_period_ms=20.0)
    client = fs.client()
    size = SMALL_FILE_MAX_BYTES + 1

    def scenario():
        yield from fs.await_election()
        yield fs.env.timeout(100)
        yield from client.create("/big", data=b"x" * size)
        content = yield from client.read("/big")
        block_id = content.blocks[0].block_id
        victim_addr = content.blocks[0].locations[0]
        victim = next(dn for dn in fs.block_datanodes if dn.addr == victim_addr)
        victim.shutdown()
        # DN heartbeat interval is 20ms, missed*3 => detection ~60ms; copy after.
        yield fs.env.timeout(1000)
        holders = [
            dn for dn in fs.block_datanodes if dn.running and block_id in dn.blocks
        ]
        return len(holders)

    assert run(fs, scenario()) == 3
    leader = fs.leader_namenode()
    assert leader.block_manager.rereplications >= 1


def test_lease_enforced_for_add_block():
    fs = make_fs(num_block_datanodes=3, election_period_ms=20.0)
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        yield fs.env.timeout(50)
        yield from client.create("/f", data=b"x" * (SMALL_FILE_MAX_BYTES + 1))
        # Another client without the lease cannot add blocks.
        from repro.types import OpType

        intruder = fs.client()
        with pytest.raises(Exception):
            yield from intruder.op(OpType.ADD_BLOCK, path="/f", client="intruder")
        return True

    assert run(fs, scenario())
