"""Metadata serving layer: leader election, NN selection, NN failover."""

import pytest

from repro.errors import NoNamenodeError
from repro.types import OpType

from .conftest import make_fs, run


def test_leader_election_converges():
    fs = make_fs(num_namenodes=4)

    def scenario():
        yield from fs.await_election()
        return [nn.election.leader_id for nn in fs.namenodes]

    leaders = run(fs, scenario())
    assert len(set(leaders)) == 1
    assert leaders[0] == 1  # smallest NN id wins


def test_election_reports_az_ids():
    fs = make_fs(num_namenodes=4, azs=(1, 2, 3), az_aware=True)

    def scenario():
        yield from fs.await_election()
        return fs.namenodes[0].election.active

    active = run(fs, scenario())
    assert len(active) == 4
    azs = {nn_id: az for nn_id, _addr, az in active}
    assert azs == {1: 1, 2: 2, 3: 3, 4: 1}


def test_new_leader_after_leader_death():
    fs = make_fs(num_namenodes=3, election_period_ms=20.0)

    def scenario():
        yield from fs.await_election()
        leader = fs.leader_namenode()
        assert leader is fs.namenodes[0]
        leader.shutdown()
        # Wait for the failed leader's rows to age out (missed rounds = 2).
        yield fs.env.timeout(200)
        return [nn.election.leader_id for nn in fs.namenodes if nn.running]

    leaders = run(fs, scenario())
    assert set(leaders) == {2}


def test_client_prefers_az_local_nn_when_aware():
    fs = make_fs(num_namenodes=6, azs=(1, 2, 3), az_aware=True)
    client = fs.client(az=2)

    def scenario():
        yield from fs.await_election()
        yield from client.mkdir("/x")
        return client.current_nn

    nn = run(fs, scenario())
    assert fs.topology.az_of(nn) == 2


def test_client_random_nn_without_awareness():
    fs = make_fs(num_namenodes=6, azs=(1, 2, 3), az_aware=False)

    def scenario():
        yield from fs.await_election()
        seen = set()
        for i in range(12):
            client = fs.client(az=2)
            yield from client.exists("/")
            seen.add(fs.topology.az_of(client.current_nn))
        return seen

    seen = run(fs, scenario())
    assert len(seen) > 1  # selection ignores the client's AZ


def test_client_sticks_to_one_nn():
    fs = make_fs(num_namenodes=4)
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        yield from client.mkdir("/a")
        first = client.current_nn
        for i in range(5):
            yield from client.exists("/a")
        return first, client.current_nn

    first, last = run(fs, scenario())
    assert first == last


def test_client_fails_over_on_nn_death():
    fs = make_fs(num_namenodes=3, election_period_ms=20.0)
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        yield from client.mkdir("/a")
        victim = client.current_nn
        for nn in fs.namenodes:
            if nn.addr == victim:
                nn.shutdown()
        yield from client.mkdir("/b")  # must fail over transparently
        assert client.current_nn != victim
        names = yield from client.listdir("/")
        return names

    assert run(fs, scenario()) == ["a", "b"]


def test_all_nns_dead_raises():
    fs = make_fs(num_namenodes=2)
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        for nn in fs.namenodes:
            nn.shutdown()
        with pytest.raises(NoNamenodeError):
            yield from client.exists("/")
        return True

    assert run(fs, scenario())


def test_cluster_tolerates_n_minus_1_nn_failures():
    """Section IV-B2: N-1 of N stateless metadata servers may fail."""
    fs = make_fs(num_namenodes=4, election_period_ms=20.0)
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        for nn in fs.namenodes[:-1]:
            nn.shutdown()
        yield fs.env.timeout(100)
        yield from client.create("/survivor-file")
        ok = yield from client.exists("/survivor-file")
        return ok

    assert run(fs, scenario()) is True


def test_unsupported_op_rejected(fs, client):
    def scenario():
        with pytest.raises(Exception):
            yield from client.op(OpType.ADD_BLOCK, path="/nope", client="x")
        return True

    assert run(fs, scenario())


def test_nn_counts_served_ops(fs, client):
    def scenario():
        yield from client.mkdir("/m")
        yield from client.exists("/m")
        return sum(nn.ops_served for nn in fs.namenodes)

    assert run(fs, scenario()) == 2
