"""Block write-pipeline failure handling."""

import pytest

from repro.errors import FsError
from repro.hopsfs import SMALL_FILE_MAX_BYTES

from .conftest import make_fs, run


def test_pipeline_tail_failure_surfaces_to_client():
    fs = make_fs(num_block_datanodes=3, election_period_ms=20.0)
    client = fs.client()
    size = SMALL_FILE_MAX_BYTES + 1

    def scenario():
        yield from fs.await_election()
        yield fs.env.timeout(60)  # DNs register
        # create the file + allocate the block, then kill the pipeline tail
        from repro.types import OpType

        yield from client.op(
            OpType.CREATE_FILE, path="/big", data=b"", replication=3, client=str(client.addr)
        )
        # force under-construction path by creating via ops directly
        return True

    assert run(fs, scenario())


def test_write_through_pipeline_with_dead_middle_dn():
    fs = make_fs(num_block_datanodes=4, election_period_ms=20.0)
    client = fs.client()
    size = SMALL_FILE_MAX_BYTES + 1

    def scenario():
        yield from fs.await_election()
        yield fs.env.timeout(60)
        from repro.types import OpType

        yield from client.op(
            OpType.CREATE_FILE,
            path="/big",
            data=b"x" * size,
            replication=3,
            client=str(client.addr),
        )
        block = yield from client.op(OpType.ADD_BLOCK, path="/big", client=str(client.addr))
        victim_addr = block.locations[1]  # middle of the pipeline
        victim = next(dn for dn in fs.block_datanodes if dn.addr == victim_addr)
        victim.shutdown()
        with pytest.raises(FsError):
            yield from client._write_pipeline(block, size)
        return True

    assert run(fs, scenario())


def test_client_create_large_file_happy_path_counts_dn_bytes():
    fs = make_fs(num_block_datanodes=3, election_period_ms=20.0)
    client = fs.client()
    size = SMALL_FILE_MAX_BYTES * 3

    def scenario():
        yield from fs.await_election()
        yield fs.env.timeout(60)
        yield from client.create("/big", data=b"x" * size)
        written = sum(dn.disk.bytes_written for dn in fs.block_datanodes)
        return written

    written = run(fs, scenario())
    assert written == size * 3  # three replicas hit three disks
