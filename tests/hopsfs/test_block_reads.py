"""AZ-aware block reads: data fetched from the client's AZ when possible."""

import pytest

from repro.hopsfs import SMALL_FILE_MAX_BYTES

from .conftest import make_fs, run

_SIZE = SMALL_FILE_MAX_BYTES + 512


def _fs(az_aware):
    return make_fs(
        num_namenodes=3,
        azs=(1, 2, 3),
        az_aware=az_aware,
        num_ndb_datanodes=6,
        ndb_replication=3,
        num_block_datanodes=6,
        election_period_ms=20.0,
    )


def test_read_data_small_file():
    fs = _fs(True)
    client = fs.client(az=1)

    def scenario():
        yield from fs.await_election()
        yield from client.create("/small", data=b"x" * 100)
        nbytes = yield from client.read_data("/small")
        return nbytes

    assert run(fs, scenario()) == 100


def test_read_data_large_file_returns_size():
    fs = _fs(True)
    client = fs.client(az=2)

    def scenario():
        yield from fs.await_election()
        yield fs.env.timeout(60)
        yield from client.create("/big", data=b"x" * _SIZE)
        nbytes = yield from client.read_data("/big")
        return nbytes

    assert run(fs, scenario()) == _SIZE


def test_az_aware_block_reads_stay_local():
    """With AZ-aware placement one replica is always in the reader's AZ,
    so the block bytes never cross an AZ boundary."""
    fs = _fs(True)
    client = fs.client(az=3)

    def scenario():
        yield from fs.await_election()
        yield fs.env.timeout(60)
        yield from client.create("/big", data=b"x" * _SIZE)
        snap = fs.network.traffic.snapshot()
        for _ in range(3):
            yield from client.read_data("/big")
        delta = fs.network.traffic.delta_since(snap)
        return delta.cross_az_bytes

    cross = run(fs, scenario())
    # only small control messages may cross; the block payloads must not
    assert cross < _SIZE


def test_block_reads_survive_local_replica_loss():
    fs = _fs(True)
    client = fs.client(az=1)

    def scenario():
        yield from fs.await_election()
        yield fs.env.timeout(60)
        yield from client.create("/big", data=b"x" * _SIZE)
        content = yield from client.read("/big")
        local = [
            dn for dn in content.blocks[0].locations
            if fs.topology.az_of(dn) == 1
        ]
        for addr in local:
            victim = next(d for d in fs.block_datanodes if d.addr == addr)
            victim.shutdown()
        nbytes = yield from client.read_data("/big")  # falls back cross-AZ
        return nbytes

    assert run(fs, scenario()) == _SIZE
