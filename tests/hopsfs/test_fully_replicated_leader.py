"""The Fully Replicated table option applied to the leader table."""

from repro.hopsfs import build_hopsfs, HopsFsConfig
from repro.ndb import NdbConfig


def _fs(fully_replicated_leader):
    return build_hopsfs(
        num_namenodes=3,
        azs=(1, 2, 3),
        az_aware=True,
        ndb_config=NdbConfig(num_datanodes=6, replication=3, az_aware=True),
        hopsfs_config=HopsFsConfig(
            election_period_ms=20.0, op_cost_read_ms=0.001, op_cost_mutation_ms=0.001
        ),
        fully_replicated_leader=fully_replicated_leader,
        seed=13,
    )


def test_leader_rows_on_every_datanode():
    fs = _fs(True)

    def scenario():
        yield from fs.await_election()
        holders = [
            dn for dn in fs.ndb.datanodes.values() if dn.store.row_count("leader") > 0
        ]
        return len(holders)

    # fully replicated: every datanode stores the leader rows
    assert fs.env.run_process(scenario(), until=60_000) == 6


def test_plain_leader_rows_only_on_one_group():
    fs = _fs(False)

    def scenario():
        yield from fs.await_election()
        holders = [
            dn for dn in fs.ndb.datanodes.values() if dn.store.row_count("leader") > 0
        ]
        return len(holders)

    # normal table: leader rows live on one node group (R=3 replicas)
    assert fs.env.run_process(scenario(), until=60_000) == 3


def test_election_converges_with_fr_leader_table():
    fs = _fs(True)

    def scenario():
        yield from fs.await_election()
        return {nn.election.leader_id for nn in fs.namenodes}

    assert fs.env.run_process(scenario(), until=60_000) == {1}
