"""Functional tests of the file-system operations through the full stack."""

import pytest

from repro.errors import (
    DirectoryNotEmptyError,
    FileAlreadyExistsError,
    FileNotFoundFsError,
    FsError,
    InvalidPathError,
    NotDirectoryError,
)

from .conftest import make_fs, run


def test_mkdir_and_stat(fs, client):
    def scenario():
        yield from client.mkdir("/data")
        row = yield from client.stat("/data")
        return row

    row = run(fs, scenario())
    assert row.is_dir
    assert row.name == "data"
    assert row.parent_id == 1


def test_mkdir_missing_parent_fails(fs, client):
    def scenario():
        with pytest.raises(FileNotFoundFsError):
            yield from client.mkdir("/a/b/c")
        return True

    assert run(fs, scenario())


def test_mkdir_duplicate_fails(fs, client):
    def scenario():
        yield from client.mkdir("/dup")
        with pytest.raises(FileAlreadyExistsError):
            yield from client.mkdir("/dup")
        return True

    assert run(fs, scenario())


def test_create_and_read_small_file(fs, client):
    payload = b"hello hopsfs" * 10

    def scenario():
        yield from client.mkdir("/d")
        yield from client.create("/d/f.txt", data=payload)
        content = yield from client.read("/d/f.txt")
        return content

    content = run(fs, scenario())
    assert content.is_small
    assert content.small_data == payload
    assert content.inode.size == len(payload)


def test_create_empty_file(fs, client):
    def scenario():
        yield from client.create("/empty")
        row = yield from client.stat("/empty")
        return row

    row = run(fs, scenario())
    assert not row.is_dir
    assert row.size == 0
    assert not row.under_construction


def test_read_nonexistent_fails(fs, client):
    def scenario():
        with pytest.raises(FileNotFoundFsError):
            yield from client.read("/nope")
        return True

    assert run(fs, scenario())


def test_read_directory_fails(fs, client):
    def scenario():
        yield from client.mkdir("/d")
        with pytest.raises(FsError):
            yield from client.read("/d")
        return True

    assert run(fs, scenario())


def test_listdir_consistent_listing(fs, client):
    def scenario():
        yield from client.mkdir("/dir")
        for name in ("c", "a", "b"):
            yield from client.create(f"/dir/{name}")
        names = yield from client.listdir("/dir")
        return names

    assert run(fs, scenario()) == ["a", "b", "c"]


def test_listdir_root(fs, client):
    def scenario():
        yield from client.mkdir("/x")
        yield from client.mkdir("/y")
        names = yield from client.listdir("/")
        return names

    assert run(fs, scenario()) == ["x", "y"]


def test_exists(fs, client):
    def scenario():
        yield from client.mkdir("/here")
        a = yield from client.exists("/here")
        b = yield from client.exists("/gone")
        return a, b

    assert run(fs, scenario()) == (True, False)


def test_delete_file(fs, client):
    def scenario():
        yield from client.create("/f")
        removed = yield from client.delete("/f")
        there = yield from client.exists("/f")
        return removed, there

    assert run(fs, scenario()) == (1, False)


def test_delete_nonempty_dir_requires_recursive(fs, client):
    def scenario():
        yield from client.mkdir("/d")
        yield from client.create("/d/f")
        with pytest.raises(DirectoryNotEmptyError):
            yield from client.delete("/d")
        removed = yield from client.delete("/d", recursive=True)
        there = yield from client.exists("/d")
        return removed, there

    assert run(fs, scenario()) == (2, False)


def test_recursive_delete_counts_subtree(fs, client):
    def scenario():
        yield from client.mkdir("/tree")
        yield from client.mkdir("/tree/sub")
        yield from client.create("/tree/sub/f1")
        yield from client.create("/tree/f2")
        removed = yield from client.delete("/tree", recursive=True)
        return removed

    assert run(fs, scenario()) == 4


def test_rename_file(fs, client):
    def scenario():
        yield from client.mkdir("/a")
        yield from client.mkdir("/b")
        yield from client.create("/a/f", data=b"payload")
        yield from client.rename("/a/f", "/b/g")
        content = yield from client.read("/b/g")
        old = yield from client.exists("/a/f")
        return content.small_data, old

    assert run(fs, scenario()) == (b"payload", False)


def test_rename_directory_keeps_children(fs, client):
    """Atomic O(1) directory rename — children keyed by inode id move free."""

    def scenario():
        yield from client.mkdir("/old")
        for i in range(5):
            yield from client.create(f"/old/f{i}")
        yield from client.rename("/old", "/new")
        names = yield from client.listdir("/new")
        old = yield from client.exists("/old")
        return names, old

    names, old = run(fs, scenario())
    assert names == [f"f{i}" for i in range(5)]
    assert old is False


def test_rename_to_existing_fails(fs, client):
    def scenario():
        yield from client.create("/f1")
        yield from client.create("/f2")
        with pytest.raises(FileAlreadyExistsError):
            yield from client.rename("/f1", "/f2")
        return True

    assert run(fs, scenario())


def test_rename_missing_source_fails(fs, client):
    def scenario():
        with pytest.raises(FileNotFoundFsError):
            yield from client.rename("/ghost", "/dst")
        return True

    assert run(fs, scenario())


def test_chmod(fs, client):
    def scenario():
        yield from client.create("/f")
        yield from client.chmod("/f", 0o600)
        row = yield from client.stat("/f")
        return row.permission

    assert run(fs, scenario()) == 0o600


def test_set_replication(fs, client):
    def scenario():
        yield from client.create("/f")
        yield from client.set_replication("/f", 2)
        row = yield from client.stat("/f")
        return row.replication

    assert run(fs, scenario()) == 2


def test_path_through_file_fails(fs, client):
    def scenario():
        yield from client.create("/f")
        with pytest.raises(NotDirectoryError):
            yield from client.mkdir("/f/sub")
        return True

    assert run(fs, scenario())


def test_relative_path_rejected(fs, client):
    def scenario():
        with pytest.raises(InvalidPathError):
            yield from client.mkdir("relative/path")
        return True

    assert run(fs, scenario())


def test_deep_paths(fs, client):
    def scenario():
        path = ""
        for depth in range(8):
            path += f"/d{depth}"
            yield from client.mkdir(path)
        yield from client.create(path + "/leaf", data=b"deep")
        content = yield from client.read(path + "/leaf")
        return content.small_data

    assert run(fs, scenario()) == b"deep"


def test_concurrent_creates_unique_names():
    """Two clients racing to create the same path: exactly one wins."""
    fs = make_fs()
    c1, c2 = fs.client(), fs.client()
    outcomes = []

    def creator(client, tag):
        try:
            yield from client.create("/race")
            outcomes.append((tag, "won"))
        except FileAlreadyExistsError:
            outcomes.append((tag, "lost"))

    def scenario():
        p1 = fs.env.process(creator(c1, "c1"))
        p2 = fs.env.process(creator(c2, "c2"))
        yield p1
        yield p2
        return sorted(o for _t, o in outcomes)

    assert run(fs, scenario()) == ["lost", "won"]


def test_concurrent_mkdir_same_parent_all_succeed():
    fs = make_fs()
    clients = [fs.client() for _ in range(4)]

    def creator(client, i):
        yield from client.mkdir(f"/dir{i}")

    def scenario():
        procs = [fs.env.process(creator(c, i)) for i, c in enumerate(clients)]
        for p in procs:
            yield p
        names = yield from clients[0].listdir("/")
        return names

    assert run(fs, scenario()) == [f"dir{i}" for i in range(4)]


def test_mkdirs_via_client(fs, client):
    def scenario():
        yield from client.mkdirs("/deep/nested/dirs")
        a = yield from client.exists("/deep")
        b = yield from client.exists("/deep/nested/dirs")
        # idempotent: repeating succeeds and returns the existing dir id
        again = yield from client.mkdirs("/deep/nested/dirs")
        return a, b, again

    a, b, again = run(fs, scenario())
    assert a and b
    assert isinstance(again, int)
