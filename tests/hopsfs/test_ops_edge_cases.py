"""Edge cases of the FS operations: mkdirs, rename trees, lock interplay."""

import pytest

from repro.errors import (
    FileAlreadyExistsError,
    FileNotFoundFsError,
    FsError,
    InvalidPathError,
    NotDirectoryError,
)
from repro.types import OpType

from .conftest import make_fs, run


def test_delete_root_rejected(fs, client):
    def scenario():
        with pytest.raises(InvalidPathError):
            yield from client.delete("/")
        return True

    assert run(fs, scenario())


def test_rename_onto_itself_rejected(fs, client):
    def scenario():
        yield from client.create("/f")
        with pytest.raises(InvalidPathError):
            yield from client.rename("/f", "/f")
        return True

    assert run(fs, scenario())


def test_rename_into_missing_dir_fails(fs, client):
    def scenario():
        yield from client.create("/f")
        with pytest.raises(FileNotFoundFsError):
            yield from client.rename("/f", "/missing/f")
        return True

    assert run(fs, scenario())


def test_rename_deep_directory_is_o1():
    """Renaming a directory does not touch its descendants' rows."""
    fs = make_fs()
    client = fs.client()

    def scenario():
        yield from client.mkdir("/big")
        for i in range(20):
            yield from client.create(f"/big/f{i}")
        # Count committed rows before/after: only 2 row writes (del+ins).
        before = sum(dn.store.row_count("inodes") for dn in fs.ndb.datanodes.values())
        yield from client.rename("/big", "/bigger")
        after = sum(dn.store.row_count("inodes") for dn in fs.ndb.datanodes.values())
        names = yield from client.listdir("/bigger")
        return before, after, len(names)

    before, after, n = run(fs, scenario())
    assert n == 20
    assert before == after  # delete+insert of one inode, no child churn


def test_listdir_of_file_fails(fs, client):
    def scenario():
        yield from client.create("/f")
        with pytest.raises(NotDirectoryError):
            yield from client.listdir("/f")
        return True

    assert run(fs, scenario())


def test_stat_missing_intermediate(fs, client):
    def scenario():
        yield from client.mkdir("/a")
        with pytest.raises(FileNotFoundFsError):
            yield from client.stat("/a/b/c")
        return True

    assert run(fs, scenario())


def test_exists_through_file_component(fs, client):
    def scenario():
        yield from client.create("/f")
        result = yield from client.exists("/f/sub")
        return result

    # walking through a file yields "does not exist", not an error
    assert run(fs, scenario()) is False


def test_create_delete_create_same_name(fs, client):
    def scenario():
        yield from client.create("/cycle", data=b"v1")
        yield from client.delete("/cycle")
        yield from client.create("/cycle", data=b"v2")
        content = yield from client.read("/cycle")
        return content.small_data

    assert run(fs, scenario()) == b"v2"


def test_concurrent_delete_and_read_race():
    """A read racing a delete either sees the file or not-found — no crash."""
    fs = make_fs()
    writer, reader = fs.client(), fs.client()
    outcomes = []

    def deleter():
        yield from writer.delete("/victim")

    def racer():
        try:
            content = yield from reader.read("/victim")
            outcomes.append(("read", content.small_data))
        except FileNotFoundFsError:
            outcomes.append(("gone", None))

    def scenario():
        yield from writer.create("/victim", data=b"x")
        p1 = fs.env.process(deleter())
        p2 = fs.env.process(racer())
        yield p1
        yield p2
        return outcomes

    result = run(fs, scenario())
    assert len(result) == 1
    assert result[0][0] in ("read", "gone")


def test_mkdirs_creates_ancestors():
    fs = make_fs()
    client = fs.client()
    from repro.hopsfs import ops as fsops
    from repro.ndb.client import run_transaction

    nn = fs.namenodes[0]

    def scenario():
        yield from fs.await_election()

        def body(txn):
            result = yield from fsops.mkdirs(nn.ctx, txn, "/x/y/z")
            return result

        yield from run_transaction(nn.api, body)
        a = yield from client.exists("/x")
        b = yield from client.exists("/x/y")
        c = yield from client.exists("/x/y/z")
        return a, b, c

    assert run(fs, scenario()) == (True, True, True)


def test_mkdirs_through_file_fails():
    fs = make_fs()
    client = fs.client()
    from repro.hopsfs import ops as fsops
    from repro.ndb.client import run_transaction

    nn = fs.namenodes[0]

    def scenario():
        yield from client.create("/file")

        def body(txn):
            result = yield from fsops.mkdirs(nn.ctx, txn, "/file/sub")
            return result

        with pytest.raises(NotDirectoryError):
            yield from run_transaction(nn.api, body)
        return True

    assert run(fs, scenario())


def test_chmod_missing_file(fs, client):
    def scenario():
        with pytest.raises(FileNotFoundFsError):
            yield from client.chmod("/ghost", 0o600)
        return True

    assert run(fs, scenario())


def test_set_replication_on_directory_fails(fs, client):
    def scenario():
        yield from client.mkdir("/d")
        with pytest.raises(FsError):
            yield from client.set_replication("/d", 2)
        return True

    assert run(fs, scenario())


def test_set_replication_invalid_value(fs, client):
    def scenario():
        yield from client.create("/f")
        with pytest.raises(FsError):
            yield from client.set_replication("/f", 0)
        return True

    assert run(fs, scenario())


def test_rename_dir_under_itself_rejected(fs, client):
    """Deep self-moves would cut a cycle out of the namespace."""

    def scenario():
        yield from client.mkdir("/a")
        yield from client.mkdir("/a/b")
        with pytest.raises(InvalidPathError):
            yield from client.rename("/a", "/a/b/c")
        with pytest.raises(InvalidPathError):
            yield from client.rename("/a", "/a/c")
        # both directories still intact
        listing = yield from client.listdir("/a")
        return listing

    assert run(fs, scenario()) == ["b"]
