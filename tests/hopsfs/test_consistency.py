"""Cross-client consistency guarantees the paper claims (Section I/II)."""

import pytest

from repro.errors import FileNotFoundFsError

from .conftest import make_fs, run


def _cl_fs():
    return make_fs(
        num_namenodes=3,
        azs=(1, 2, 3),
        az_aware=True,
        num_ndb_datanodes=6,
        ndb_replication=3,
    )


def test_read_after_create_across_azs():
    """Strongly consistent read-after-update — what S3 (2019) lacked.

    With Read Backup, the commit ACK waits for all replicas, so a reader
    in ANY AZ sees the new file immediately, even though it reads its own
    AZ-local replica.
    """
    fs = _cl_fs()
    writer = fs.client(az=1)
    readers = [fs.client(az=az) for az in (1, 2, 3)]

    def scenario():
        yield from fs.await_election()
        yield from writer.create("/fresh", data=b"v1")
        results = []
        for reader in readers:
            content = yield from reader.read("/fresh")
            results.append(content.small_data)
        return results

    assert run(fs, scenario()) == [b"v1", b"v1", b"v1"]


def test_consistent_listing_after_create():
    """Consistent directory listings — object stores list eventually."""
    fs = _cl_fs()
    writer = fs.client(az=2)
    reader = fs.client(az=3)

    def scenario():
        yield from fs.await_election()
        yield from writer.mkdir("/bucket")
        seen = []
        for i in range(5):
            yield from writer.create(f"/bucket/obj{i}")
            listing = yield from reader.listdir("/bucket")
            seen.append(len(listing))
        return seen

    # every listing immediately includes every created object
    assert run(fs, scenario()) == [1, 2, 3, 4, 5]


def test_rename_visibility_is_atomic():
    """Readers see the file at exactly one of the two paths, never both
    and never neither."""
    fs = _cl_fs()
    writer = fs.client(az=1)
    reader = fs.client(az=2)
    observations = []

    def renamer():
        yield from writer.rename("/a", "/b")

    def observer():
        for _ in range(12):
            at_a = yield from reader.exists("/a")
            at_b = yield from reader.exists("/b")
            observations.append((at_a, at_b))

    def scenario():
        yield from fs.await_election()
        yield from writer.create("/a")
        p1 = fs.env.process(renamer())
        p2 = fs.env.process(observer())
        yield p1
        yield p2
        return observations

    results = run(fs, scenario())
    for at_a, at_b in results:
        assert (at_a, at_b) in ((True, False), (False, True)), results


def test_delete_then_read_raises_everywhere():
    fs = _cl_fs()
    writer = fs.client(az=1)
    readers = [fs.client(az=az) for az in (1, 2, 3)]

    def scenario():
        yield from fs.await_election()
        yield from writer.create("/gone", data=b"x")
        yield from writer.delete("/gone")
        for reader in readers:
            with pytest.raises(FileNotFoundFsError):
                yield from reader.read("/gone")
        return True

    assert run(fs, scenario())
