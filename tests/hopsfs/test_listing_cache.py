"""The pre-materialized listing/attr cache and its changelog invalidation.

Three layers of coverage:

* unit tests over :class:`~repro.hopsfs.listcache.ListingCache` gating
  (fill tokens, epoch bumps, out-of-order batches, LRU bounds, TTL);
* functional tests on a small deployment (hits actually serve, mutations
  invalidate every NN's cache, read-your-writes, obs counters);
* a differential harness: the same scripted workload with the cache on
  vs off must be client-observably identical, and the listing-consistency
  invariant must hold at the end of the cached run.
"""

import random

from repro.chaos.invariants import listing_consistency, namespace_integrity
from repro.errors import FsError
from repro.hopsfs.listcache import ListingCache, ListingCacheConfig
from repro.hopsfs.metadata import INODES_TABLE, InodeRow
from repro.hopsfs.snapshot import namespace_snapshot
from repro.ndb.changelog import ChangelogBatch
from repro.ndb.schema import TOMBSTONE

from .conftest import make_fs, run


class _FakeBus:
    epoch = 0
    seq = 0


def _cache(**kwargs):
    clock = [0.0]
    cache = ListingCache(
        ListingCacheConfig(**kwargs), now=lambda: clock[0], bus=_FakeBus()
    )
    return cache, clock


def _row(inode_id, parent_id, name, is_dir=False):
    return InodeRow(id=inode_id, parent_id=parent_id, name=name, is_dir=is_dir)


def _batch(seq, records, epoch=0):
    return ChangelogBatch(epoch=epoch, seq=seq, records=tuple(records))


# ------------------------------------------------------------------ unit tests
def test_resolve_serves_filled_rows_and_listing_absence():
    cache, _clock = _cache()
    token = cache.begin_fill()
    d = _row(2, 1, "d", is_dir=True)
    f = _row(3, 2, "f")
    cache.fill_attr(token, d)
    cache.fill_attr(token, f)
    cache.fill_listing(token, 2, ["f"])
    assert cache.resolve("/d") == (True, d)
    assert cache.resolve("/d/f") == (True, f)
    # The materialized listing proves absence definitively.
    assert cache.resolve("/d/nope") == (True, None)
    # No listing for root: /other is undecidable, not absent.
    assert cache.resolve("/other") == (False, None)
    assert cache.listing(2) == ["f"]


def test_fill_race_discarded_after_invalidation():
    cache, _clock = _cache()
    token = cache.begin_fill()  # transactional read begins...
    cache.apply(_batch(1, [(INODES_TABLE, (1, "d"), 1, TOMBSTONE)]))
    cache.fill_attr(token, _row(2, 1, "d", is_dir=True))  # ...fill loses
    assert cache.discarded_fills == 1
    assert cache.resolve("/d") == (False, None)
    # A fresh token filled after the invalidation is accepted.
    cache.fill_attr(cache.begin_fill(), _row(2, 1, "d", is_dir=True))
    assert cache.resolve("/d")[0] is True


def test_fill_discarded_after_flush():
    cache, _clock = _cache()
    token = cache.begin_fill()
    cache.flush()
    cache.fill_attr(token, _row(2, 1, "d"))
    assert cache.discarded_fills == 1
    assert len(cache) == 0


def test_invalidation_pops_attr_and_both_listings():
    cache, _clock = _cache()
    token = cache.begin_fill()
    d = _row(2, 1, "d", is_dir=True)
    cache.fill_attr(token, d)
    cache.fill_listing(token, 1, ["d"])
    cache.fill_listing(token, 2, ["f"])
    cache.apply(_batch(1, [(INODES_TABLE, (1, "d"), 1, TOMBSTONE)]))
    assert cache.resolve("/d") == (False, None)
    assert cache.listing(1) is None  # parent listing changed
    assert cache.listing(2) is None  # the dir itself is gone


def test_out_of_order_batches_apply_without_flush():
    cache, _clock = _cache()
    token = cache.begin_fill()
    cache.fill_attr(token, _row(2, 1, "a"))
    cache.fill_attr(token, _row(3, 1, "b"))
    # seq 2 lands before seq 1: both must apply, nothing flushes.
    cache.apply(_batch(2, [(INODES_TABLE, (1, "a"), 1, TOMBSTONE)]))
    assert cache.applied_seq == 0 and cache.flushes == 0
    cache.apply(_batch(1, [(INODES_TABLE, (1, "b"), 1, TOMBSTONE)]))
    assert cache.applied_seq == 2 and not cache._pending
    assert cache.flushes == 0 and cache.batches_applied == 2
    # Duplicates / stale batches are ignored.
    cache.apply(_batch(1, [(INODES_TABLE, (1, "b"), 1, TOMBSTONE)]))
    assert cache.stale_batches == 1


def test_pending_overflow_flushes_lost_hole():
    cache, _clock = _cache(max_pending_batches=3)
    cache.fill_attr(cache.begin_fill(), _row(2, 1, "a"))
    # seq 1 never arrives; 2..5 pile up past the window.
    for seq in (2, 3, 4, 5):
        cache.apply(_batch(seq, [(INODES_TABLE, (9, "x"), 9, TOMBSTONE)]))
    assert cache.flushes == 1
    assert cache.applied_seq == 5 and not cache._pending
    assert len(cache) == 0


def test_epoch_bump_flushes_wholesale():
    cache, _clock = _cache()
    cache.fill_attr(cache.begin_fill(), _row(2, 1, "a"))
    cache.apply(_batch(7, [], epoch=1))
    assert cache.epoch == 1 and cache.applied_seq == 7
    assert cache.flushes == 1 and len(cache) == 0
    # Old-epoch stragglers are ignored.
    cache.apply(_batch(8, [(INODES_TABLE, (1, "a"), 1, TOMBSTONE)], epoch=0))
    assert cache.stale_batches == 1


def test_ttl_expires_entries():
    cache, clock = _cache(ttl_ms=10.0)
    token = cache.begin_fill()
    cache.fill_attr(token, _row(2, 1, "d", is_dir=True))
    cache.fill_listing(token, 2, ["f"])
    assert cache.resolve("/d")[0] is True
    clock[0] = 11.0
    assert cache.resolve("/d") == (False, None)
    assert cache.listing(2) is None
    assert cache.live_attrs(clock[0]) == [] and cache.live_listings(clock[0]) == []


def test_lru_bounds_evict_oldest():
    cache, _clock = _cache(max_attr_entries=2, max_listing_entries=2)
    token = cache.begin_fill()
    for i, name in enumerate(("a", "b", "c")):
        cache.fill_attr(token, _row(10 + i, 1, name))
        cache.fill_listing(token, 10 + i, [name])
    assert len(cache._attrs) == 2 and len(cache._listings) == 2
    assert (1, "a") not in cache._attrs  # oldest attr evicted
    assert 10 not in cache._listings  # oldest listing evicted
    assert (1, "c") in cache._attrs


def test_eager_invalidate_path_walks_and_drops():
    cache, _clock = _cache()
    token = cache.begin_fill()
    d = _row(2, 1, "d", is_dir=True)
    f = _row(3, 2, "f")
    cache.fill_attr(token, d)
    cache.fill_attr(token, f)
    cache.fill_listing(token, 2, ["f"])
    cache.invalidate_path("/d/f")
    assert cache.resolve("/d/f") == (False, None)
    assert cache.listing(2) is None
    # A fill begun before the eager invalidation is discarded.
    cache.fill_attr(token, f)
    assert cache.discarded_fills == 1


# ------------------------------------------------------------ functional tests
def _warm_fs():
    fs = make_fs(num_namenodes=2, listing_cache=ListingCacheConfig())
    client = fs.client()

    def setup():
        yield from fs.await_election()
        yield from client.mkdir("/d")
        yield from client.create("/d/f", data=b"hello")

    run(fs, setup())
    return fs, client


def test_cache_serves_hot_reads_from_nn_memory():
    fs, client = _warm_fs()
    out = {}

    def reads():
        for _ in range(2):  # first round fills, second hits
            out["list"] = yield from client.listdir("/d")
            out["stat"] = yield from client.stat("/d/f")
            out["read"] = yield from client.read("/d/f")
            out["exists"] = yield from client.exists("/d/f")

    run(fs, reads())
    assert out["list"] == ["f"]
    assert out["stat"].name == "f" and not out["stat"].is_dir
    assert bytes(out["read"].small_data) == b"hello"
    assert out["exists"] is True
    hits = sum(nn.listing_cache.hits for nn in fs.namenodes)
    fills = sum(nn.listing_cache.fills for nn in fs.namenodes)
    assert hits >= 4  # the whole second round was served from memory
    assert fills > 0


def test_mutation_invalidates_every_nn_via_changelog():
    fs, client = _warm_fs()
    out = {}

    def flow():
        yield from client.listdir("/d")  # warm the serving NN
        yield from client.listdir("/d")
        yield from client.delete("/d/f")
        yield fs.env.timeout(50.0)  # changelog fan-out settles
        out["list"] = yield from client.listdir("/d")
        out["exists"] = yield from client.exists("/d/f")

    run(fs, flow())
    assert out["list"] == []
    assert out["exists"] is False
    # Every NN saw the invalidation traffic, not just the mutating one.
    for nn in fs.namenodes:
        assert nn.listing_cache.batches_applied > 0
    assert fs.ndb.changelog.published > 0
    assert listing_consistency(fs).ok


def test_read_your_writes_on_the_same_nn():
    fs, client = _warm_fs()
    out = {}

    def flow():
        # Warm, then mutate and immediately re-read with no settle time:
        # the eager invalidation (and commit-point changelog ordering)
        # must keep the client from seeing its own write shadowed.
        yield from client.listdir("/d")
        yield from client.listdir("/d")
        yield from client.create("/d/g", data=b"x")
        out["list"] = yield from client.listdir("/d")
        out["stat"] = yield from client.stat("/d/g")

    run(fs, flow())
    assert out["list"] == ["f", "g"]
    assert out["stat"].name == "g"


def test_cache_counters_reach_obs_registry():
    from repro.obs import ObsContext

    obs = ObsContext()
    fs = make_fs(num_namenodes=2, listing_cache=ListingCacheConfig())
    obs.attach(fs.env)
    client = fs.client()

    def flow():
        yield from fs.await_election()
        yield from client.mkdir("/d")
        yield from client.listdir("/d")
        yield from client.listdir("/d")

    run(fs, flow())
    registry = fs.env.obs.registry
    counters = dict(registry.snapshot().get("counters", {}))
    assert counters.get("nn.listcache.hit", 0) >= 1
    assert counters.get("nn.listcache.miss", 0) >= 1
    assert counters.get("nn.listcache.invalidation", 0) >= 1


def test_restart_resyncs_with_the_bus():
    fs, client = _warm_fs()
    nn = fs.namenodes[0]
    out = {}

    def flow():
        yield from client.listdir("/d")
        yield from client.listdir("/d")
        nn.shutdown()
        yield fs.env.timeout(5.0)
        nn.restart()
        out["epoch"] = nn.listing_cache.epoch

    run(fs, flow())
    assert len(nn.listing_cache) == 0  # flushed on restart
    assert nn.listing_cache.epoch == fs.ndb.changelog.epoch
    assert nn.listing_cache.applied_seq == fs.ndb.changelog.seq


def test_prewarm_materializes_snapshot_and_stays_stream_fresh():
    fs, client = _warm_fs()
    fs.prewarm_listing_caches()
    nn = fs.namenodes[0]
    assert len(nn.listing_cache._attrs) == 2  # /d and /d/f
    out = {}

    def flow():
        out["list"] = yield from client.listdir("/d")  # served prewarmed
        yield from client.create("/d/g", data=b"")  # changelog pops /d
        yield fs.env.timeout(50.0)
        out["after"] = yield from client.listdir("/d")

    run(fs, flow())
    assert out["list"] == ["f"]
    assert out["after"] == ["f", "g"]
    assert sum(nn.listing_cache.hits for nn in fs.namenodes) >= 1
    from repro.chaos.invariants import listing_consistency

    assert listing_consistency(fs).ok


def test_prewarm_refuses_oversized_snapshot():
    small, _clock = _cache(max_attr_entries=1)
    rows = [_row(2, 1, "d", is_dir=True), _row(3, 2, "f")]
    small.prewarm(rows)
    # A partial materialization could wrongly prove absence; refuse instead.
    assert len(small) == 0


def test_cache_off_publishes_nothing():
    fs = make_fs(num_namenodes=2)
    client = fs.client()

    def flow():
        yield from fs.await_election()
        yield from client.mkdir("/d")
        yield from client.create("/d/f", data=b"x")
        yield from client.listdir("/d")

    run(fs, flow())
    # Zero subscribers: the bus never sequences or sends anything, so the
    # legacy event schedule is untouched (the pinned goldens prove the
    # stronger bit-identical claim).
    assert fs.ndb.changelog.published == 0
    assert fs.ndb.changelog.seq == 0
    assert all(nn.listing_cache is None for nn in fs.namenodes)
    assert listing_consistency(fs).detail == "n/a (listing cache off)"


# ------------------------------------------------------------- differential
NUM_CLIENTS = 4
OPS_PER_CLIENT = 40
SEED = 1337


def build_scripts(seed: int):
    """Per-client scripts over disjoint subtrees, read-heavy like Spotify."""
    rng = random.Random(seed)
    scripts = []
    for i in range(NUM_CLIENTS):
        root = f"/c{i}"
        ops = [("mkdir", (root,))]
        dirs = [root]
        files = []
        counter = 0
        for _ in range(OPS_PER_CLIENT):
            r = rng.random()
            counter += 1
            if r < 0.15 or not files:
                d = rng.choice(dirs)
                data = bytes([65 + counter % 26]) * rng.randrange(1, 64)
                path = f"{d}/f{counter}"
                ops.append(("create", (path, data)))
                files.append(path)
            elif r < 0.25:
                d = rng.choice(dirs)
                path = f"{d}/d{counter}"
                ops.append(("mkdir", (path,)))
                dirs.append(path)
            elif r < 0.45:
                ops.append(("read", (rng.choice(files),)))
            elif r < 0.60:
                ops.append(("stat", (rng.choice(files),)))
            elif r < 0.75:
                ops.append(("listdir", (rng.choice(dirs),)))
            elif r < 0.83:
                ops.append(("exists", (rng.choice(files),)))
            elif r < 0.89:
                src = files.pop(rng.randrange(len(files)))
                dst = f"{rng.choice(dirs)}/r{counter}"
                ops.append(("rename", (src, dst)))
                files.append(dst)
            elif r < 0.95:
                victim = files.pop(rng.randrange(len(files)))
                ops.append(("delete", (victim,)))
            else:
                kind = rng.randrange(2)
                if kind == 0:
                    ops.append(("read", (f"{root}/missing{counter}",)))
                else:
                    ops.append(("listdir", (f"{root}/nodir{counter}",)))
        scripts.append(ops)
    return scripts


def _apply(client, name, args):
    if name == "mkdir":
        return client.mkdir(*args)
    if name == "create":
        return client.create(args[0], data=args[1])
    if name == "read":
        return client.read(*args)
    if name == "stat":
        return client.stat(*args)
    if name == "listdir":
        return client.listdir(*args)
    if name == "exists":
        return client.exists(*args)
    if name == "rename":
        return client.rename(*args)
    if name == "delete":
        return client.delete(*args)
    raise AssertionError(f"unknown scripted op {name}")


def _observe(name, result):
    if name == "read":
        return bytes(result.small_data) if result.is_small else result.inode.size
    if name == "stat":
        return (result.is_dir, result.size, result.permission)
    if name == "listdir":
        return tuple(sorted(getattr(row, "name", row) for row in result))
    if name == "exists":
        return bool(result)
    return None


def run_mode(listing_cache):
    fs = make_fs(num_namenodes=2, listing_cache=listing_cache, seed=7)
    scripts = build_scripts(SEED)
    records = [[] for _ in scripts]
    done = []

    def client_proc(idx, client, script):
        for name, args in script:
            try:
                result = yield from _apply(client, name, args)
                records[idx].append((name, "ok", _observe(name, result)))
            except FsError as exc:
                records[idx].append((name, type(exc).__name__, None))
        done.append(idx)

    clients = [fs.client() for _ in scripts]
    for idx, (client, script) in enumerate(zip(clients, scripts)):
        fs.env.process(client_proc(idx, client, script), name=f"lc-client{idx}")
    fs.env.run(until=20_000)
    assert sorted(done) == list(range(NUM_CLIENTS)), "a scripted client stalled"
    fs.env.run(until=fs.env.now + 100.0)
    return records, namespace_snapshot(fs), fs


def test_cached_run_is_client_observably_identical():
    plain_records, plain_snap, _plain_fs = run_mode(None)
    cached_records, cached_snap, cached_fs = run_mode(ListingCacheConfig())

    for idx, (p_rec, c_rec) in enumerate(zip(plain_records, cached_records)):
        assert c_rec == p_rec, f"client {idx} diverged: {c_rec} != {p_rec}"
    assert cached_snap == plain_snap

    # The cached run really served from memory (no silent fallthrough)...
    hits = sum(nn.listing_cache.hits for nn in cached_fs.namenodes)
    assert hits > 0
    # ...and what remains live in every cache matches committed NDB state.
    assert listing_consistency(cached_fs).ok
    assert namespace_integrity(cached_fs).ok


def test_scripts_are_deterministic():
    assert build_scripts(SEED) == build_scripts(SEED)
    assert build_scripts(SEED) != build_scripts(SEED + 1)
