"""Unit tests of the async group-commit metadata path.

Covers the committer's observable contract: config validation, batching
under a linger window, early acks with a durability horizon, the fsync
barrier, read-your-writes barriers for sync-path reads, per-member error
isolation, pipelined flushes, and ack loss on an NN crash mid-linger.
"""

import pytest

from repro.chaos.invariants import durability_horizon
from repro.errors import ConfigError, FileAlreadyExistsError, FsError
from repro.hopsfs.groupcommit import AsyncCommitConfig, groupable, op_paths
from repro.types import OpType

from .conftest import make_fs, run

FAST = AsyncCommitConfig(linger_ms=0.5, max_batch_ops=8)


def make_async_fs(async_commit=FAST, num_namenodes=1, **kwargs):
    return make_fs(num_namenodes=num_namenodes, async_commit=async_commit, **kwargs)


# ------------------------------------------------------------------ config
@pytest.mark.parametrize(
    "kwargs",
    [
        {"linger_ms": -0.1},
        {"max_batch_ops": 0},
        {"max_inflight_batches": 0},
        {"max_flush_retries": -1},
        {"flush_backoff_base_ms": 0.0},
        {"flush_backoff_max_ms": -1.0},
    ],
)
def test_config_validation_rejects(kwargs):
    with pytest.raises(ConfigError):
        AsyncCommitConfig(**kwargs)


def test_groupable_excludes_large_creates_and_reads():
    assert groupable(OpType.MKDIR, {})
    assert groupable(OpType.CREATE_FILE, {"data": b"x" * 10})
    assert not groupable(OpType.CREATE_FILE, {"data": b"x" * 10_000_000})
    assert not groupable(OpType.READ_FILE, {})
    assert not groupable(OpType.LIST_DIR, {})


def test_op_paths_cover_rename_both_ends():
    paths = op_paths(OpType.RENAME, {"src": "/a/b", "dst": "/c/d"})
    assert ("a", "b") in paths and ("c", "d") in paths


# ---------------------------------------------------------------- batching
def test_concurrent_mutations_share_a_batch():
    fs = make_async_fs(AsyncCommitConfig(linger_ms=2.0, max_batch_ops=16))
    clients = [fs.client() for _ in range(4)]

    def one(client, path):
        yield from client.mkdir(path)

    for i, client in enumerate(clients):
        fs.env.process(one(client, f"/d{i}"), name=f"mk{i}")
    fs.env.run(until=5_000)

    ledger = fs.group_ledger
    committed = [b for b in ledger.batches.values() if b.state == "committed"]
    assert committed, "nothing committed"
    # Four near-simultaneous disjoint mkdirs ride fewer than four batches.
    assert max(len(b.ops) for b in committed) >= 2
    assert sum(len(b.ops) for b in committed) == 4


def test_full_batch_flushes_before_linger():
    fs = make_async_fs(AsyncCommitConfig(linger_ms=500.0, max_batch_ops=2))
    clients = [fs.client() for _ in range(2)]

    def one(client, path):
        yield from client.mkdir(path)

    for i, client in enumerate(clients):
        fs.env.process(one(client, f"/d{i}"), name=f"mk{i}")
    # Far less than the 500ms linger: only the size trigger can flush.
    fs.env.run(until=100.0)
    assert fs.group_ledger.horizon >= 1


# ------------------------------------------------------------- early acks
def test_ack_precedes_commit_and_fsync_barriers():
    fs = make_async_fs(AsyncCommitConfig(linger_ms=30.0, max_batch_ops=64))
    client = fs.client()

    def scenario():
        yield from client.mkdir("/early")
        # Acked while the batch still lingers: the horizon is pending.
        assert client.durability_horizon >= 1
        batch = fs.group_ledger.batches[client.durability_horizon]
        assert batch.state == "open"
        ok = yield from client.fsync()
        assert ok is True
        assert batch.state == "committed"
        assert not client._pending_horizons
        return True

    assert run(fs, scenario())
    assert client.durability_horizon in fs.group_ledger.confirmed


def test_fsync_is_a_noop_without_pending_horizons():
    fs = make_fs(num_namenodes=1)  # synchronous path
    client = fs.client()

    def scenario():
        yield from client.mkdir("/plain")
        ok = yield from client.fsync()
        return ok

    assert run(fs, scenario()) is True


# ------------------------------------------------- read-your-writes barrier
def test_sync_read_after_grouped_write_sees_the_write():
    fs = make_async_fs(AsyncCommitConfig(linger_ms=50.0, max_batch_ops=64))
    client = fs.client()

    def scenario():
        yield from client.mkdir("/ryow")
        # The batch is still lingering; a sync-path read prefix-related to
        # it must barrier on the flush instead of reading stale state.
        row = yield from client.stat("/ryow")
        listing = yield from client.listdir("/")
        return row, list(listing)

    row, names = run(fs, scenario())
    assert row.is_dir
    assert "ryow" in names


# ------------------------------------------------------- error isolation
def test_member_error_does_not_poison_the_batch():
    fs = make_async_fs(AsyncCommitConfig(linger_ms=2.0, max_batch_ops=16))
    client_pre = fs.client()
    run(fs, client_pre.mkdir("/dup"))

    client_a = fs.client()
    client_b = fs.client()
    outcomes = {}

    def dup(client):
        try:
            yield from client.mkdir("/dup")
            outcomes["a"] = "ok"
        except FileAlreadyExistsError:
            outcomes["a"] = "exists"

    def fresh(client):
        yield from client.mkdir("/fresh")
        outcomes["b"] = "ok"

    fs.env.process(dup(client_a), name="dup")
    fs.env.process(fresh(client_b), name="fresh")
    fs.env.run(until=5_000)

    assert outcomes == {"a": "exists", "b": "ok"}
    row = run(fs, fs.client().stat("/fresh"))
    assert row.is_dir


# ------------------------------------------------------------- pipelining
def test_flushes_pipeline_across_batches():
    fs = make_async_fs(AsyncCommitConfig(linger_ms=0.2, max_batch_ops=4))
    clients = [fs.client() for _ in range(6)]

    def burst(client, base):
        for i in range(4):
            yield from client.mkdir(f"/{base}-{i}")

    for i, client in enumerate(clients):
        fs.env.process(burst(client, f"p{i}"), name=f"burst{i}")
    fs.env.run(until=10_000)

    committer = fs.namenodes[0].committer
    assert committer.batches_committed >= 2
    assert committer.ops_grouped == 24
    assert durability_horizon(fs).ok


# ------------------------------------------------------------ crash → lost
def test_crash_mid_linger_loses_the_ack_and_fsync_reports_it():
    fs = make_async_fs(
        AsyncCommitConfig(linger_ms=200.0, max_batch_ops=64), num_namenodes=2
    )
    client = fs.client()
    result = {}

    def scenario():
        yield from client.mkdir("/doomed")
        horizon = client.durability_horizon
        assert horizon >= 1
        batch = fs.group_ledger.batches[horizon]
        assert batch.state == "open"
        # Crash the NN that owns the lingering batch before it flushes.
        owner = next(nn for nn in fs.namenodes if str(nn.addr) == str(batch.owner))
        owner.shutdown()
        assert batch.state == "lost"
        try:
            yield from client.fsync()
            result["fsync"] = "ok"
        except FsError:
            result["fsync"] = "lost"
        return True

    assert run(fs, scenario())
    assert result["fsync"] == "lost"
    assert fs.group_ledger.lost_acks == 1
    # The invariant audits the lost batch as all-or-nothing (here: nothing).
    fs.env.run(until=fs.env.now + 300.0)
    verdict = durability_horizon(fs)
    assert verdict.ok, verdict.detail
    assert run(fs, fs.client().exists("/doomed")) is False
