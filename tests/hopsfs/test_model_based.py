"""Model-based test: the full stack vs a reference in-memory file system.

Hypothesis generates random operation sequences; each is applied both to a
real HopsFS-CL deployment (full NDB transaction machinery) and to a plain
dict-based model.  Outcomes (success/error kind, listings, existence)
must agree exactly.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import (
    DirectoryNotEmptyError,
    FileAlreadyExistsError,
    FileNotFoundFsError,
    FsError,
    InvalidPathError,
    NotDirectoryError,
)

from .conftest import make_fs, run

_NAMES = ("a", "b", "c")
_DEPTH = 2


def _paths():
    """All paths up to depth 2 over a tiny alphabet."""
    out = []
    for n1 in _NAMES:
        out.append(f"/{n1}")
        for n2 in _NAMES:
            out.append(f"/{n1}/{n2}")
    return out

_ALL_PATHS = _paths()

_op = st.one_of(
    st.tuples(st.just("mkdir"), st.sampled_from(_ALL_PATHS)),
    st.tuples(st.just("create"), st.sampled_from(_ALL_PATHS)),
    st.tuples(st.just("delete"), st.sampled_from(_ALL_PATHS)),
    st.tuples(st.just("exists"), st.sampled_from(_ALL_PATHS)),
    st.tuples(st.just("listdir"), st.sampled_from(_ALL_PATHS + ["/"])),
    st.tuples(
        st.just("rename"), st.sampled_from(_ALL_PATHS), st.sampled_from(_ALL_PATHS)
    ),
)


class _Model:
    """Reference semantics: dict path -> 'dir' | 'file'."""

    def __init__(self):
        self.tree = {"/": "dir"}

    def _parent(self, path):
        return path.rsplit("/", 1)[0] or "/"

    def _children(self, path):
        prefix = path.rstrip("/") + "/"
        return [
            p for p in self.tree
            if p != "/" and p.startswith(prefix) and "/" not in p[len(prefix):]
        ]

    def _require_parent_dir(self, path):
        parent = self._parent(path)
        if parent == "/":
            return
        if parent not in self.tree:
            raise FileNotFoundFsError(parent)
        if self.tree[parent] != "dir":
            raise NotDirectoryError(parent)

    def mkdir(self, path):
        self._require_parent_dir(path)
        if path in self.tree:
            raise FileAlreadyExistsError(path)
        self.tree[path] = "dir"

    def create(self, path):
        self.mkdir(path)  # same checks
        self.tree[path] = "file"

    def delete(self, path):
        self._require_parent_dir(path)
        if path not in self.tree:
            raise FileNotFoundFsError(path)
        if self.tree[path] == "dir" and self._children(path):
            raise DirectoryNotEmptyError(path)
        del self.tree[path]

    def exists(self, path):
        node = path
        # walking through a file component yields False
        parent = self._parent(path)
        if parent != "/" and self.tree.get(parent) == "file":
            return False
        return path in self.tree

    def listdir(self, path):
        if path != "/":
            parent = self._parent(path)
            if parent != "/" and self.tree.get(parent) == "file":
                raise NotDirectoryError(path)  # resolution crosses a file
            if path not in self.tree:
                raise FileNotFoundFsError(path)
            if self.tree[path] != "dir":
                raise NotDirectoryError(path)
        return sorted(c.rsplit("/", 1)[1] for c in self._children(path))

    def rename(self, src, dst):
        # mirror the real operation's check order (repro.hopsfs.ops.rename)
        self._require_parent_dir(src)
        self._require_parent_dir(dst)
        if src == dst:
            raise InvalidPathError("onto itself")
        if src not in self.tree:
            raise FileNotFoundFsError(src)
        if dst in self.tree:
            raise FileAlreadyExistsError(dst)
        if self.tree[src] == "dir" and dst.startswith(src + "/"):
            raise InvalidPathError("cannot move under itself")
        kind = self.tree.pop(src)
        # children move implicitly (keyed by path prefix in the model)
        moved = {}
        prefix = src + "/"
        for p in list(self.tree):
            if p.startswith(prefix):
                moved[dst + p[len(src):]] = self.tree.pop(p)
        self.tree[dst] = kind
        self.tree.update(moved)


def _apply_model(model, step):
    kind = step[0]
    try:
        if kind == "mkdir":
            return ("ok", model.mkdir(step[1]))
        if kind == "create":
            return ("ok", model.create(step[1]))
        if kind == "delete":
            return ("ok", model.delete(step[1]))
        if kind == "exists":
            return ("ok", model.exists(step[1]))
        if kind == "listdir":
            return ("ok", model.listdir(step[1]))
        if kind == "rename":
            return ("ok", model.rename(step[1], step[2]))
    except FsError as exc:
        return ("err", type(exc).__name__)
    raise AssertionError(kind)


def _apply_real(client, step):
    kind = step[0]
    try:
        if kind == "mkdir":
            yield from client.mkdir(step[1])
            return ("ok", None)
        if kind == "create":
            yield from client.create(step[1])
            return ("ok", None)
        if kind == "delete":
            yield from client.delete(step[1])
            return ("ok", None)
        if kind == "exists":
            result = yield from client.exists(step[1])
            return ("ok", result)
        if kind == "listdir":
            result = yield from client.listdir(step[1])
            return ("ok", result)
        if kind == "rename":
            yield from client.rename(step[1], step[2])
            return ("ok", None)
    except FsError as exc:
        return ("err", type(exc).__name__)
    raise AssertionError(kind)


@given(st.lists(_op, max_size=14))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_fs_agrees_with_reference_model(steps):
    fs = make_fs(num_namenodes=1, num_ndb_datanodes=2, election=False)
    client = fs.client()
    model = _Model()

    def scenario():
        outcomes = []
        for step in steps:
            real = yield from _apply_real(client, step)
            expected = _apply_model(model, step)
            outcomes.append((step, real, expected))
        return outcomes

    outcomes = run(fs, scenario())
    for step, real, expected in outcomes:
        if step[0] in ("exists", "listdir"):
            assert real == expected, f"{step}: real={real} expected={expected}"
        else:
            # mutations: success/error *kind* must match
            assert real[0] == expected[0], f"{step}: real={real} expected={expected}"
            if real[0] == "err":
                assert real[1] == expected[1], f"{step}: {real} vs {expected}"
