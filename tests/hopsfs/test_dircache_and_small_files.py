"""Dir-cache behaviour and the small-files-in-NDB path."""

import pytest

from repro.hopsfs import SMALL_FILE_MAX_BYTES, InodeRow
from repro.hopsfs.dircache import DirCache

from .conftest import make_fs, run


def _dir_row(parent_id, name, inode_id=99):
    return InodeRow(id=inode_id, parent_id=parent_id, name=name, is_dir=True)


def test_dircache_put_get_invalidate():
    now = [0.0]
    cache = DirCache(now=lambda: now[0], ttl_ms=100)
    row = _dir_row(1, "d")
    cache.put(row)
    assert cache.get(1, "d") is row
    cache.invalidate(1, "d")
    assert cache.get(1, "d") is None


def test_dircache_only_caches_directories():
    cache = DirCache(now=lambda: 0.0)
    cache.put(InodeRow(id=5, parent_id=1, name="f", is_dir=False))
    assert cache.get(1, "f") is None
    assert len(cache) == 0


def test_dircache_ttl_expiry():
    now = [0.0]
    cache = DirCache(now=lambda: now[0], ttl_ms=100)
    cache.put(_dir_row(1, "d"))
    now[0] = 99
    assert cache.get(1, "d") is not None
    now[0] = 201
    assert cache.get(1, "d") is None


def test_dircache_eviction_on_overflow():
    cache = DirCache(now=lambda: 0.0, max_entries=4)
    for i in range(5):
        cache.put(_dir_row(1, f"d{i}", inode_id=i + 10))
    assert len(cache) <= 4


def test_dircache_hit_miss_counters():
    cache = DirCache(now=lambda: 0.0)
    cache.put(_dir_row(1, "d"))
    cache.get(1, "d")
    cache.get(1, "ghost")
    assert cache.hits == 1
    assert cache.misses == 1


def test_nn_cache_serves_resolution(fs=None):
    fs = make_fs()
    client = fs.client()

    def scenario():
        yield from client.mkdir("/hot")
        yield from client.create("/hot/f")
        nn_cache = fs.namenodes[0].dir_cache if False else None
        # re-stat several times: ancestors resolve from the NN cache
        caches = [nn.dir_cache for nn in fs.namenodes]
        before = sum(c.hits for c in caches)
        for _ in range(5):
            yield from client.stat("/hot/f")
        after = sum(c.hits for c in caches)
        return after - before

    assert run(fs, scenario()) >= 5


def test_small_file_exactly_at_threshold():
    fs = make_fs()
    client = fs.client()
    payload = b"x" * SMALL_FILE_MAX_BYTES

    def scenario():
        yield from client.create("/edge", data=payload)
        content = yield from client.read("/edge")
        return content

    content = run(fs, scenario())
    assert content.is_small
    assert len(content.small_data) == SMALL_FILE_MAX_BYTES


def test_small_file_data_survives_ndb_node_failure():
    """Small-file payloads are replicated with the metadata (Sec. IV-C2)."""
    fs = make_fs()
    client = fs.client()

    def scenario():
        yield from client.create("/precious", data=b"payload")
        victim = next(iter(fs.ndb.datanodes))
        fs.ndb.crash_datanode(victim, detect_now=True)
        content = yield from client.read("/precious")
        return content.small_data

    assert run(fs, scenario()) == b"payload"


def test_rename_preserves_small_file_data():
    fs = make_fs()
    client = fs.client()

    def scenario():
        yield from client.create("/a", data=b"keep me")
        yield from client.rename("/a", "/b")
        content = yield from client.read("/b")
        return content.small_data

    assert run(fs, scenario()) == b"keep me"
