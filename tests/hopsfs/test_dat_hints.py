"""Distribution-aware-transaction hints: the NN hints with the parent id."""

from .conftest import make_fs, run


def _serving_nn(fs, client):
    return next(n for n in fs.namenodes if n.addr == client.current_nn)


def test_hint_resolves_parent_inode_id():
    fs = make_fs()
    client = fs.client()

    def scenario():
        yield from client.mkdir("/proj")
        yield from client.mkdir("/proj/dir")
        yield from client.create("/proj/dir/file")
        # after these ops the serving NN's dir cache knows the parents
        nn = _serving_nn(fs, client)
        hint = nn._hint_for({"path": "/proj/dir/file"})
        dir_row = yield from client.stat("/proj/dir")
        return hint, dir_row.id

    hint, dir_id = run(fs, scenario())
    assert hint == dir_id


def test_hint_for_top_level_is_root():
    fs = make_fs()
    nn = fs.namenodes[0]

    def scenario():
        yield fs.env.timeout(0)
        return nn._hint_for({"path": "/top-level-file"})

    assert run(fs, scenario()) == 1  # the root inode id


def test_hint_missing_component_returns_none():
    fs = make_fs()
    nn = fs.namenodes[0]

    def scenario():
        yield fs.env.timeout(0)
        return nn._hint_for({"path": "/never/seen/file"})

    assert run(fs, scenario()) is None


def test_hint_uses_src_for_rename():
    fs = make_fs()
    client = fs.client()

    def scenario():
        yield from client.mkdir("/d")
        nn = _serving_nn(fs, client)
        hint = nn._hint_for({"src": "/d/a", "dst": "/d/b"})
        row = yield from client.stat("/d")
        return hint, row.id

    hint, dir_id = run(fs, scenario())
    assert hint == dir_id


def test_hint_matches_partition_of_target_rows():
    """The hint is the inodes partition key of the target's slot."""
    fs = make_fs()
    client = fs.client()
    pm = fs.ndb.partition_map

    def scenario():
        yield from client.mkdir("/p")
        yield from client.create("/p/f")
        nn = _serving_nn(fs, client)
        hint = nn._hint_for({"path": "/p/f"})
        # the partition derived from the hint holds the target row
        partition = pm.partition_of(hint)
        replicas = pm.replicas(partition)
        row_holders = [
            dn.addr
            for dn in fs.ndb.datanodes.values()
            if dn.store.read("inodes", (hint, "f")) is not None
        ]
        return set(replicas.all), set(row_holders)

    replica_set, holders = run(fs, scenario())
    assert holders == replica_set
