"""Extra coverage: metadata row types, id generation, leader edge cases."""

import pytest

from repro.hopsfs import IdGenerator, InodeRow, define_fs_schema
from repro.hopsfs.metadata import BLOCK_SIZE_BYTES, SMALL_FILE_MAX_BYTES, BlockRow

from .conftest import make_fs, run


def test_schema_tables_defined():
    schema = define_fs_schema(read_backup=True)
    for name in ("inodes", "blocks", "leases", "leader"):
        assert name in schema
        assert schema.table(name).read_backup
    vanilla = define_fs_schema(read_backup=False)
    assert not vanilla.table("inodes").read_backup


def test_inode_row_pk_and_with():
    row = InodeRow(id=7, parent_id=3, name="f", is_dir=False)
    assert row.pk == (3, "f")
    changed = row.with_(size=10)
    assert changed.size == 10
    assert row.size == 0  # immutable


def test_block_row_with():
    block = BlockRow(block_id=1, inode_id=2, index=0)
    assert block.with_(size=5).size == 5


def test_id_generator_unique_and_disjoint():
    ids = IdGenerator()
    inodes = {ids.next_inode_id() for _ in range(100)}
    blocks = {ids.next_block_id() for _ in range(100)}
    assert len(inodes) == 100
    assert len(blocks) == 100
    assert not (inodes & blocks)


def test_constants_match_paper():
    assert SMALL_FILE_MAX_BYTES == 128 * 1024  # small files < 128 KB
    assert BLOCK_SIZE_BYTES == 128 * 1024 * 1024  # 128 MB blocks


def test_election_round_counter_advances():
    fs = make_fs(num_namenodes=2, election_period_ms=20.0)

    def scenario():
        yield fs.env.timeout(150)
        return [nn.election.rounds for nn in fs.namenodes]

    rounds = run(fs, scenario())
    assert all(r >= 5 for r in rounds)


def test_leader_survives_ndb_node_failure():
    """Election keeps working when an NDB datanode dies (retry path)."""
    fs = make_fs(num_namenodes=2, election_period_ms=20.0)

    def scenario():
        yield from fs.await_election()
        victim = next(iter(fs.ndb.datanodes))
        fs.ndb.crash_datanode(victim, detect_now=True)
        yield fs.env.timeout(200)
        return [nn.election.leader_id for nn in fs.namenodes]

    leaders = run(fs, scenario())
    assert set(leaders) == {1}


def test_client_location_domain_zero_is_random():
    """locationDomainId 0 disables AZ affinity (Section IV-B3)."""
    fs = make_fs(num_namenodes=4, azs=(1, 2, 3), az_aware=True)
    from repro.hopsfs.client import HopsFsClient
    from repro.types import ANY_AZ, NodeAddress, NodeKind

    addr = NodeAddress(NodeKind.CLIENT, 999)
    fs.topology.add_host(addr, az=2)
    client = HopsFsClient(
        env=fs.env,
        network=fs.network,
        addr=addr,
        namenode_addrs=fs.namenode_addrs(),
        location_domain_id=ANY_AZ,
        rng=fs.rng.stream("t"),
    )

    def scenario():
        yield from fs.await_election()
        seen = set()
        for _ in range(10):
            client.current_nn = None
            yield from client.exists("/")
            seen.add(client.current_nn)
        return seen

    seen = run(fs, scenario())
    assert len(seen) > 1  # not pinned to the local AZ
