"""Elastic serving tier: runtime NN membership, drains, and the autoscaler."""

import pytest

from repro.errors import ConfigError
from repro.hopsfs import ElasticConfig
from repro.hopsfs.metadata import LEADER_TABLE

from .conftest import make_fs, run

# Fast refresh/poll knobs so tests settle within a few hundred sim ms.
FAST = ElasticConfig(
    membership_refresh_ms=20.0,
    autoscale=False,
    drain_grace_ms=30.0,
    visibility_poll_ms=2.0,
)


def elastic_fs(elastic=FAST, num_namenodes=3, **kwargs):
    kwargs.setdefault("azs", (1, 2, 3))
    kwargs.setdefault("az_aware", True)
    return make_fs(num_namenodes=num_namenodes, elastic=elastic, **kwargs)


# ------------------------------------------------------------------ config
def test_elastic_config_validation():
    with pytest.raises(ConfigError):
        ElasticConfig(membership_refresh_ms=0.0)
    with pytest.raises(ConfigError):
        ElasticConfig(min_nns_per_az=0)
    with pytest.raises(ConfigError):
        ElasticConfig(min_nns_per_az=3, max_nns_per_az=2)
    with pytest.raises(ConfigError):
        ElasticConfig(scale_down_utilization=0.8, scale_up_utilization=0.7)


# ------------------------------------------------------------------- joins
def test_added_namenode_joins_every_view_and_serves():
    fs = elastic_fs()

    def scenario():
        yield from fs.await_election()
        joiner = fs.add_namenode(az=2, reason="test")
        # Wait for the joiner to win a row and every peer to list it.
        yield fs.env.timeout(300)
        views = [
            sorted(row[0] for row in nn.election.active)
            for nn in fs.namenodes
            if nn.running
        ]
        return joiner, views

    joiner, views = run(fs, scenario())
    expected = sorted(nn.nn_id for nn in fs.namenodes)
    assert all(view == expected for view in views), views
    assert joiner.running and not joiner.draining
    event = fs.reconfig_log[-1]
    assert event.kind == "add" and event.nn_id == joiner.nn_id
    assert event.visible_ms is not None
    assert event.latency_ms >= 0.0


def test_added_namenode_receives_block_heartbeats():
    fs = elastic_fs(num_block_datanodes=3, heartbeats=True)

    def scenario():
        yield from fs.await_election()
        joiner = fs.add_namenode(az=1, reason="test")
        yield fs.env.timeout(120)  # several 20ms heartbeat intervals
        return joiner

    joiner = run(fs, scenario())
    assert all(joiner.addr in dn.namenode_addrs for dn in fs.block_datanodes)
    assert joiner.block_manager.live_dns()


# ------------------------------------------------------------ decommission
def test_decommission_drains_deregisters_and_converges():
    fs = elastic_fs()

    def scenario():
        yield from fs.await_election()
        victim = fs.namenodes[1]
        yield from fs.decommission_namenode(victim, reason="test")
        assert not victim.running
        # Let the surviving pool re-run election rounds and the visibility
        # watcher observe the departure.
        yield fs.env.timeout(300)
        return victim

    victim = run(fs, scenario())
    assert victim.addr in fs.decommissioned
    survivors = [nn for nn in fs.namenodes if nn.running]
    expected = sorted(nn.nn_id for nn in survivors)
    for nn in survivors:
        assert sorted(row[0] for row in nn.election.active) == expected
    # The leader row was deleted, not left to age out.
    rows = []
    for dn in fs.ndb.datanodes.values():
        if dn.running:
            rows += [row for _pk, row in dn.store.iter_rows(LEADER_TABLE)]
    assert all(row.nn_id != victim.nn_id for row in rows)
    event = next(e for e in fs.reconfig_log if e.kind == "decommission")
    assert event.completed_ms is not None
    assert event.lost_acks_during_drain == 0
    assert not event.forced_shutdown


def test_decommissioned_leader_hands_off():
    fs = elastic_fs()

    def scenario():
        yield from fs.await_election()
        leader = fs.leader_namenode()
        yield from fs.decommission_namenode(leader, reason="test")
        yield fs.env.timeout(300)
        return leader, [
            nn.election.leader_id for nn in fs.namenodes if nn.running
        ]

    old_leader, leader_ids = run(fs, scenario())
    assert len(set(leader_ids)) == 1
    assert leader_ids[0] != old_leader.nn_id


def test_drain_flushes_open_group_commit_batch():
    from repro.hopsfs import AsyncCommitConfig

    fs = elastic_fs(
        async_commit=AsyncCommitConfig(linger_ms=50.0, max_batch_ops=64),
    )
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        yield from client.mkdir("/d")  # early-acked, lingering in a batch
        victim = fs._resolve(client.current_nn)
        assert victim.committer.pending_batches >= 1
        yield from fs.decommission_namenode(victim, reason="test")
        return victim

    victim = run(fs, scenario())
    # The drain forced the open batch to settle as a real commit: nothing
    # the NN acked was lost, and nothing is still open.
    assert victim.committer.pending_batches == 0
    assert fs.group_ledger.lost_acks == 0
    assert all(
        b.state in ("committed", "aborted")
        for b in fs.group_ledger.batches.values()
    )


# ---------------------------------------------------------------- preempt
def test_preemption_kills_after_warning_window():
    fs = elastic_fs()

    def scenario():
        yield from fs.await_election()
        victim = fs.namenodes[2]
        yield from fs.preempt_namenode(victim, warning_ms=5.0)
        return victim, fs.env.now

    victim, _now = run(fs, scenario())
    assert not victim.running
    assert victim.addr in fs.preempted
    event = next(e for e in fs.reconfig_log if e.kind == "preempt")
    assert event.completed_ms is not None


# ----------------------------------------------------------------- client
def test_client_tracks_membership_and_prunes_breaker_state():
    from repro.hopsfs import RobustConfig

    fs = elastic_fs(robust=RobustConfig())
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        joiner = fs.add_namenode(az=1, reason="test")
        victim = fs.namenodes[0]
        # Poison breaker state for the victim; the refresh after its
        # departure must drop it.
        client._breaker(victim.addr)
        yield from fs.decommission_namenode(victim, reason="test")
        yield fs.env.timeout(400)  # rounds + refreshes
        return joiner, victim

    joiner, victim = run(fs, scenario())
    assert client.membership_refreshes > 0
    assert joiner.addr in client.namenode_addrs
    assert victim.addr not in client.namenode_addrs
    assert victim.addr not in client._breakers
    assert client.current_nn != victim.addr


def test_client_redirects_off_draining_namenode_without_failing():
    from repro.hopsfs import RobustConfig

    fs = elastic_fs(robust=RobustConfig())
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        yield from client.mkdir("/before")
        target = fs._resolve(client.current_nn)
        target.draining = True  # bounce every new op with the drain error
        yield from client.mkdir("/after")  # must succeed via a peer
        return target

    target = run(fs, scenario())
    assert client.current_nn != target.addr
    assert target.addr in client._draining_nns
    assert target.addr not in client.namenode_addrs


# -------------------------------------------------------------- autoscaler
def test_autoscaler_replaces_preempted_capacity():
    fs = elastic_fs(
        elastic=ElasticConfig(
            membership_refresh_ms=20.0,
            autoscale_interval_ms=20.0,
            cooldown_ms=20.0,
            min_nns_per_az=1,
            max_nns_per_az=2,
            visibility_poll_ms=2.0,
        ),
    )

    def scenario():
        yield from fs.await_election()
        victim = fs.namenodes[0]
        yield from fs.preempt_namenode(victim, warning_ms=2.0)
        yield fs.env.timeout(100)  # a few autoscaler ticks
        return victim

    victim = run(fs, scenario())
    assert fs.autoscaler.scale_ups >= 1
    serving_azs = {nn.az for nn in fs.serving_namenodes()}
    assert victim.az in serving_azs  # the floor refilled the AZ
    kinds = [e.kind for e in fs.reconfig_log]
    assert kinds.count("add") >= 1 and kinds.count("preempt") == 1


def test_autoscaler_scales_down_idle_pool():
    fs = elastic_fs(
        num_namenodes=6,  # 2 per AZ
        elastic=ElasticConfig(
            membership_refresh_ms=20.0,
            autoscale_interval_ms=20.0,
            cooldown_ms=20.0,
            min_nns_per_az=1,
            max_nns_per_az=2,
            scale_down_utilization=0.2,
            visibility_poll_ms=2.0,
        ),
    )

    def scenario():
        yield from fs.await_election()
        yield fs.env.timeout(600)  # idle: ticks retire the surplus NNs

    run(fs, scenario())
    assert fs.autoscaler.scale_downs >= 1
    counts = {}
    for nn in fs.serving_namenodes():
        counts[nn.az] = counts.get(nn.az, 0) + 1
    assert all(n >= 1 for n in counts.values())
    assert sum(counts.values()) < 6
    # Every retirement went through the graceful path.
    for event in fs.reconfig_log:
        assert event.kind == "decommission"
        assert event.lost_acks_during_drain == 0


def test_elastic_summary_reports_latency_and_cost():
    fs = elastic_fs()

    def scenario():
        yield from fs.await_election()
        fs.add_namenode(az=3, reason="test")
        yield from fs.decommission_namenode(fs.namenodes[0], reason="test")
        yield fs.env.timeout(300)

    run(fs, scenario())
    from repro.hopsfs import elastic_summary

    summary = elastic_summary(fs, completed_ops=100, now_ms=fs.env.now)
    assert summary["reconfiguration_latency_ms"]["count"] >= 1
    assert summary["nn_seconds_provisioned"] > 0
    assert summary["ops_per_nn_second"] > 0
    assert summary["pool_size_peak"] == 4
    assert len(summary["reconfigurations"]) == 2
