"""Gray-failure request path: timeouts, deadlines, hedging, exactly-once."""

import pytest

from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    FileAlreadyExistsError,
    FsError,
    NoNamenodeError,
    RpcTimeoutError,
    ServerBusyError,
)
from repro.hopsfs import (
    SMALL_FILE_MAX_BYTES,
    CircuitBreaker,
    RetryCache,
    RetryPolicy,
    RobustConfig,
)
from repro.metrics.collectors import MetricsCollector
from repro.types import OpType
from repro.workloads.driver import ClosedLoopDriver

from .conftest import make_fs, run


# ------------------------------------------------------------- unit pieces
def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(max_retries=5, backoff_base_ms=2.0, backoff_max_ms=10.0)
    assert policy.backoff_ms(1) == 2.0
    assert policy.backoff_ms(2) == 4.0
    assert policy.backoff_ms(3) == 8.0
    assert policy.backoff_ms(4) == 10.0  # capped
    assert policy.backoff_ms(10) == 10.0


def test_retry_policy_jitter_stays_in_band():
    class FakeRng:
        def __init__(self, value):
            self.value = value

        def random(self):
            return self.value

    policy = RetryPolicy(backoff_base_ms=4.0, backoff_max_ms=40.0)
    assert policy.backoff_ms(1, FakeRng(0.0)) == pytest.approx(2.0)  # 0.5x
    assert policy.backoff_ms(1, FakeRng(0.999)) == pytest.approx(5.996)  # ~1.5x


def test_circuit_breaker_opens_after_threshold_and_resets():
    breaker = CircuitBreaker(threshold=2, reset_ms=100.0)
    assert not breaker.record_failure(now=0.0)
    assert breaker.record_failure(now=1.0)  # second failure trips
    assert breaker.is_open(now=50.0)
    assert not breaker.is_open(now=101.0)  # half-open after the window
    breaker.record_success()
    assert not breaker.is_open(now=101.0)
    assert breaker.trips == 1


def test_retry_cache_lru_eviction_and_counters():
    cache = RetryCache(capacity=2)
    cache.put(("c", 1), "a")
    cache.put(("c", 2), "b")
    hit, value = cache.lookup(("c", 1))
    assert hit and value == "a"
    cache.put(("c", 3), "d")  # evicts ("c", 2), the least recently used
    hit, _ = cache.lookup(("c", 2))
    assert not hit
    assert cache.hits == 1 and cache.misses == 1
    assert len(cache) == 2


def test_retry_cache_stores_none_results():
    cache = RetryCache(capacity=4)
    cache.put(("c", 1), None)
    hit, value = cache.lookup(("c", 1))
    assert hit and value is None


def test_robust_config_validation():
    with pytest.raises(ConfigError):
        RobustConfig(op_timeout_ms=0)
    with pytest.raises(ConfigError):
        RobustConfig(deadline_ms=10.0, op_timeout_ms=40.0)
    with pytest.raises(ConfigError):
        RobustConfig(hedge_delay_ms=0)
    with pytest.raises(ConfigError):
        RobustConfig(nn_max_inflight=0)


# ------------------------------------------------------ RPC timeout layer
def test_rpc_timeout_fires_and_late_reply_is_discarded():
    fs = make_fs(num_namenodes=1)
    client = fs.client()
    nn = fs.namenodes[0]

    def scenario():
        yield from fs.await_election()
        # Far tighter than the NN round trip: the call must time out, and
        # the reply that later arrives must be discarded, not delivered.
        with pytest.raises(RpcTimeoutError):
            yield fs.network.call(
                client.addr, nn.addr, "get_active_nns", size=64, timeout_ms=0.001
            )
        yield fs.env.timeout(50)
        return fs.network.late_replies

    assert run(fs, scenario()) == 1


def test_timed_out_mutation_still_commits_server_side():
    """A timeout bounds the *wait*, not the work: the NN still applies it."""
    fs = make_fs(num_namenodes=1)
    client = fs.client()
    nn = fs.namenodes[0]

    def scenario():
        yield from fs.await_election()
        with pytest.raises(RpcTimeoutError):
            yield fs.network.call(
                client.addr, nn.addr, "fs_op",
                (OpType.MKDIR, {"path": "/zombie"}), size=64, timeout_ms=0.001,
            )
        yield fs.env.timeout(50)
        exists = yield from client.exists("/zombie")
        return exists

    assert run(fs, scenario())


# --------------------------------------------------------- robust op loop
def test_robust_op_times_out_and_fails_over():
    """A gray NN (alive, but behind a degraded link) is routed around."""
    # AZ-aware: reads resolve against local replicas, so only the RPCs
    # that cross the degraded link are slow — the gray-failure shape.
    fs = make_fs(
        num_namenodes=2, azs=(2, 3), az_aware=True,
        robust=RobustConfig(op_timeout_ms=4.0, hedge_delay_ms=None),
    )
    client = fs.client(az=2)  # nn1 is in az2, nn2 in az3

    def scenario():
        yield from fs.await_election()
        yield from client.mkdir("/d")
        # Pin the client to the remote NN, then make the inter-AZ link so
        # slow every RPC exceeds the 4ms timeout.
        client.current_nn = fs.namenodes[1].addr
        fs.network.degrade_link(2, 3, extra_ms=20.0)
        result = yield from client.exists("/d")
        return result

    assert run(fs, scenario())
    assert client.timeouts >= 1
    assert client.failovers >= 1
    assert client.current_nn == fs.namenodes[0].addr  # settled on the local NN


def test_deadline_exceeded_when_no_server_answers_in_budget():
    fs = make_fs(
        num_namenodes=2, azs=(2, 3),
        robust=RobustConfig(
            op_timeout_ms=4.0, deadline_ms=12.0, hedge_delay_ms=None,
            retry=RetryPolicy(max_retries=50),
        ),
    )
    client = fs.client(az=2)

    def scenario():
        yield from fs.await_election()
        yield from client.mkdir("/d")
        # Both NNs behind hopelessly slow links: every attempt times out
        # until the 12ms budget burns down.
        fs.network.degrade_link(1, 2, extra_ms=50.0)
        fs.network.degrade_link(2, 3, extra_ms=50.0)
        fs.network.degrade_link(1, 3, extra_ms=50.0)
        start = fs.env.now
        with pytest.raises((DeadlineExceededError, NoNamenodeError)):
            yield from client.op(OpType.EXISTS, path="/d")
        return fs.env.now - start

    elapsed = run(fs, scenario())
    # DeadlineExceededError is an FsError: workload drivers absorb it.
    assert issubclass(DeadlineExceededError, FsError)
    # The op may not outlive its deadline by more than ~one hop.
    assert elapsed <= 12.0 + 4.0 + 1e-9
    assert client.deadline_overruns == []


def test_retry_budget_exhaustion_raises_no_namenode_error():
    fs = make_fs(
        num_namenodes=1,
        robust=RobustConfig(
            op_timeout_ms=2.0, deadline_ms=10_000.0, hedge_delay_ms=None,
            retry=RetryPolicy(max_retries=2, backoff_base_ms=0.5, backoff_max_ms=1.0),
        ),
    )
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        yield from client.mkdir("/d")
        fs.namenodes[0].shutdown()
        with pytest.raises(NoNamenodeError):
            yield from client.op(OpType.EXISTS, path="/d")
        return True

    assert run(fs, scenario())


# ------------------------------------------------------------ hedged reads
def test_hedged_read_fires_and_wins_on_slow_primary():
    fs = make_fs(
        num_namenodes=2, azs=(2, 3), az_aware=True,
        robust=RobustConfig(op_timeout_ms=200.0, hedge_delay_ms=2.0),
    )
    client = fs.client(az=2)

    def scenario():
        yield from fs.await_election()
        yield from client.mkdir("/d")
        client.current_nn = fs.namenodes[1].addr  # remote NN, about to slow
        fs.network.degrade_link(2, 3, extra_ms=30.0)
        result = yield from client.exists("/d")
        return result

    assert run(fs, scenario())
    assert client.hedges >= 1
    assert client.hedge_wins >= 1
    # The winning hedge re-points the client at the faster NN.
    assert client.current_nn == fs.namenodes[0].addr


def test_mutations_never_hedge():
    fs = make_fs(
        num_namenodes=2, azs=(2, 3),
        robust=RobustConfig(op_timeout_ms=200.0, hedge_delay_ms=0.5),
    )
    client = fs.client(az=2)

    def scenario():
        yield from fs.await_election()
        client.current_nn = fs.namenodes[1].addr
        fs.network.degrade_link(2, 3, extra_ms=10.0)
        yield from client.mkdir("/slow-but-exactly-once")
        return True

    assert run(fs, scenario())
    assert client.hedges == 0


# -------------------------------------------------- exactly-once mutations
def _drop_first_create_reply_and_crash(fs, nn):
    """Arrange a post-commit crash: the NN commits, then dies pre-reply."""
    original_reply = fs.network.reply
    state = {"armed": True}

    def hooked(message, payload=None, ok=True, size=None):
        if (
            state["armed"]
            and message.dst == nn.addr
            and message.kind == "fs_op"
            and ok
            and message.payload[0] is OpType.CREATE_FILE
        ):
            state["armed"] = False
            nn.shutdown()  # fails the client's pending RPC; reply is lost
            return
        if size is None:
            original_reply(message, payload, ok=ok)
        else:
            original_reply(message, payload, ok=ok, size=size)

    fs.network.reply = hooked
    return state


def test_retried_create_replays_after_post_commit_crash():
    """The headline regression: CREATE committed, NN died before replying.

    The retried CREATE lands on the other NN, which finds the durable
    retry_cache row (written in the same transaction as the inode) and
    replays the recorded result instead of failing with
    FileAlreadyExistsError.
    """
    fs = make_fs(num_namenodes=2, robust=RobustConfig(hedge_delay_ms=None))
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        client.current_nn = fs.namenodes[0].addr
        _drop_first_create_reply_and_crash(fs, fs.namenodes[0])
        inode_id = yield from client.create("/precious", data=b"payload")
        content = yield from client.read("/precious")
        return inode_id, content

    inode_id, content = run(fs, scenario())
    assert inode_id is not None
    assert content.small_data == b"payload"
    # Applied exactly once: the shared ledger holds one entry for the id.
    applied = [rid for rid, op in fs.mutation_ledger if op == OpType.CREATE_FILE.value]
    assert len(applied) == len(set(applied)) == 1
    # The surviving NN replayed from the durable row, not a re-execution.
    assert fs.namenodes[1].retry_cache is not None


def test_legacy_retried_create_still_conflicts_without_robust():
    """Control: the fail-stop path keeps its historical double-apply bug."""
    fs = make_fs(num_namenodes=2)
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        client.current_nn = fs.namenodes[0].addr
        _drop_first_create_reply_and_crash(fs, fs.namenodes[0])
        with pytest.raises(FileAlreadyExistsError):
            yield from client.create("/precious", data=b"payload")
        return True

    assert run(fs, scenario())


def test_retry_cache_in_memory_fast_path_on_same_nn():
    """Same NN, reply lost in transit: the in-memory LRU answers the retry."""
    fs = make_fs(num_namenodes=1, robust=RobustConfig(hedge_delay_ms=None))
    client = fs.client()
    nn = fs.namenodes[0]

    def scenario():
        yield from fs.await_election()
        client.current_nn = nn.addr
        retry_id = (client.client_id, 1)
        # First delivery: committed and cached server-side.
        result = yield fs.network.call(
            client.addr, nn.addr, "fs_op",
            (OpType.MKDIR, {"path": "/once"}), size=64,
            extra={"retry_id": retry_id},
        )
        # Client-side timeout means the client never saw it; the retry
        # carries the same id and must replay, not conflict.
        replayed = yield fs.network.call(
            client.addr, nn.addr, "fs_op",
            (OpType.MKDIR, {"path": "/once"}), size=64,
            extra={"retry_id": retry_id},
        )
        return result, replayed

    result, replayed = run(fs, scenario())
    assert result == replayed
    assert nn.retry_cache.hits == 1
    assert len(fs.mutation_ledger) == 1


# -------------------------------------------------------- admission control
def test_admission_control_sheds_and_clients_recover():
    fs = make_fs(
        num_namenodes=1,
        robust=RobustConfig(
            nn_max_inflight=1, hedge_delay_ms=None,
            retry=RetryPolicy(max_retries=20, backoff_base_ms=0.5, backoff_max_ms=4.0),
        ),
    )
    nn = fs.namenodes[0]
    clients = [fs.client() for _ in range(6)]
    results = []

    def one(client, i):
        yield from client.mkdir(f"/burst{i}")
        results.append(i)

    def scenario():
        yield from fs.await_election()
        procs = [
            fs.env.process(one(c, i), name=f"burst{i}")
            for i, c in enumerate(clients)
        ]
        for proc in procs:
            yield proc
        return True

    assert run(fs, scenario())
    assert sorted(results) == list(range(6))  # every op eventually landed
    assert nn.ops_shed > 0
    assert sum(c.busy_rejections for c in clients) > 0
    # ServerBusyError is retryable client-side, never surfaced to callers.
    assert issubclass(ServerBusyError, FsError)


def test_inflight_gauge_returns_to_zero():
    fs = make_fs(num_namenodes=1, robust=RobustConfig(hedge_delay_ms=None))
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        yield from client.mkdir("/a")
        yield from client.listdir("/")
        return True

    assert run(fs, scenario())
    assert fs.namenodes[0]._inflight == 0


# -------------------------------------------------- satellite: bootstrap
def test_bootstrap_exhaustion_counts_as_failover():
    fs = make_fs(num_namenodes=1)
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        fs.namenodes[0].shutdown()
        with pytest.raises(NoNamenodeError):
            yield from client.op(OpType.EXISTS, path="/")
        return True

    assert run(fs, scenario())
    assert client.failovers == 1
    assert client.bootstrap_exhaustions == 1


def test_no_namenode_failures_land_in_failed_latency_buckets():
    fs = make_fs(num_namenodes=1)
    client = fs.client()
    collector = MetricsCollector()

    class OneOpWorkload:
        def next_op(self, client_id=0):
            return OpType.STAT, {"path": "/"}

    driver = ClosedLoopDriver(fs.env, [client], OneOpWorkload(), collector)

    def scenario():
        yield from fs.await_election()
        fs.namenodes[0].shutdown()
        collector.open_window(fs.env.now)
        driver.start()
        yield fs.env.timeout(5.0)
        driver.stop()
        yield fs.env.timeout(5.0)
        collector.close_window(fs.env.now)
        return True

    assert run(fs, scenario())
    assert collector.failed > 0
    assert len(collector.failed_latencies_ms) == collector.failed


# ------------------------------------------- satellite: pipeline retry
def test_create_retries_pipeline_after_dn_failure():
    """A dead pipeline head no longer fails the whole multi-block create."""
    fs = make_fs(num_block_datanodes=4, heartbeats=True)
    client = fs.client()
    size = SMALL_FILE_MAX_BYTES + 1024
    state = {"killed": False}
    original_op = client.op

    def sabotage(op, **kwargs):
        result = yield from original_op(op, **kwargs)
        if op is OpType.ADD_BLOCK and not state["killed"]:
            state["killed"] = True
            victim_addr = result.locations[0]
            victim = next(dn for dn in fs.block_datanodes if dn.addr == victim_addr)
            victim.shutdown()
            # Model completed failure detection (the leader's DN monitor
            # would mark it dead a few heartbeats later).
            for nn in fs.namenodes:
                info = nn.block_manager.dns.get(victim_addr)
                if info is not None:
                    info.alive = False
        return result

    client.op = sabotage

    def scenario():
        yield from fs.await_election()
        yield fs.env.timeout(60)  # DNs register
        yield from client.create("/big", data=b"x" * size)
        nbytes = yield from client.read_data("/big")
        return nbytes

    assert run(fs, scenario()) == size
    assert state["killed"]
    # The abandoned block left no trace: one block row, one id on the inode.
    block_rows = set()
    inode_rows = {}
    for dn in fs.ndb.datanodes.values():
        for pk, row in dn.store.iter_rows("blocks"):
            block_rows.add(pk)
        for _pk, row in dn.store.iter_rows("inodes"):
            inode_rows[row.id] = row
    big = next(row for row in inode_rows.values() if row.name == "big")
    assert len(big.block_ids) == 1
    assert block_rows == set(big.block_ids)
