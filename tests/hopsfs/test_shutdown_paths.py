"""Shutdown / mid-operation failure paths across the serving layer."""

import pytest

from repro.errors import NoNamenodeError

from .conftest import make_fs, run


def test_nn_shutdown_drops_queued_requests_gracefully():
    fs = make_fs(num_namenodes=2, election_period_ms=20.0)
    client = fs.client()
    env = fs.env

    def killer():
        yield env.timeout(0.1)
        fs.namenodes[0].shutdown()
        fs.namenodes[1].shutdown()

    def scenario():
        yield from fs.await_election()
        env.process(killer())
        outcomes = []
        for i in range(3):
            try:
                yield from client.mkdir(f"/d{i}")
                outcomes.append("ok")
            except NoNamenodeError:
                outcomes.append("down")
        return outcomes

    outcomes = run(fs, scenario())
    assert "down" in outcomes  # eventually no NN remains


def test_failover_counter_increments():
    fs = make_fs(num_namenodes=3, election_period_ms=20.0)
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        yield from client.exists("/")
        victim = client.current_nn
        for nn in fs.namenodes:
            if nn.addr == victim:
                nn.shutdown()
        yield from client.exists("/")
        return client.failovers

    assert run(fs, scenario()) >= 1


def test_ops_after_ndb_cluster_down_fail_cleanly():
    """If a whole node group dies, ops fail with errors, never hang."""
    fs = make_fs(num_namenodes=2, election_period_ms=20.0)
    client = fs.client()

    def scenario():
        yield from fs.await_election()
        group = fs.ndb.partition_map.node_groups[0]
        for node in group:
            fs.ndb.crash_datanode(node, detect_now=True)
        with pytest.raises(Exception):
            yield from client.mkdir("/doomed")
        return True

    assert run(fs, scenario(), until=600_000)


def test_dead_nn_election_row_expires():
    fs = make_fs(num_namenodes=3, election_period_ms=20.0)

    def scenario():
        yield from fs.await_election()
        fs.namenodes[2].shutdown()
        yield fs.env.timeout(200)
        active_ids = {nn_id for nn_id, _a, _az in fs.namenodes[0].election.active}
        return active_ids

    active = run(fs, scenario())
    assert 3 not in active
    assert {1, 2} <= active
