"""Shared fixtures for HopsFS tests: small deployments, fast elections."""

import pytest

from repro.hopsfs import HopsFsConfig, build_hopsfs
from repro.ndb import NdbConfig


def make_fs(
    num_namenodes=2,
    azs=(2,),
    az_aware=False,
    ndb_replication=2,
    num_ndb_datanodes=4,
    num_block_datanodes=0,
    election=True,
    heartbeats=False,
    seed=0,
    election_period_ms=50.0,
    robust=None,
    async_commit=None,
    elastic=None,
    listing_cache=None,
    **ndb_kwargs,
):
    """A small, fast deployment for functional tests."""
    config = HopsFsConfig(
        election_period_ms=election_period_ms,
        dn_heartbeat_interval_ms=20.0,
        # Tiny CPU costs: functional tests care about semantics, not load.
        op_cost_read_ms=0.001,
        op_cost_mutation_ms=0.001,
        robust=robust,
        async_commit=async_commit,
        elastic=elastic,
        listing_cache=listing_cache,
    )
    ndb_config = NdbConfig(
        num_datanodes=num_ndb_datanodes,
        replication=ndb_replication,
        az_aware=az_aware,
        num_partitions=16,
        **ndb_kwargs,
    )
    return build_hopsfs(
        num_namenodes=num_namenodes,
        azs=azs,
        az_aware=az_aware,
        num_block_datanodes=num_block_datanodes,
        hopsfs_config=config,
        ndb_config=ndb_config,
        election=election,
        heartbeats=heartbeats,
        seed=seed,
    )


def run(fs, generator, until=60_000):
    return fs.env.run_process(generator, until=until)


@pytest.fixture
def fs():
    return make_fs()


@pytest.fixture
def client(fs):
    return fs.client()
