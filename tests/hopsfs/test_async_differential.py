"""Differential harness: the async group-commit path vs the legacy path.

The same seeded, scripted workload runs twice — once on the synchronous
commit path and once with async group commit — and the two runs must be
equivalent in everything a client can observe:

* per-client op outcome sequences (ok/error type, plus read/stat/listdir
  payloads) are identical, op for op;
* the final committed namespace has the same shape (paths + attributes;
  inode *ids* are excluded on purpose — allocation order is not part of
  the contract, see :mod:`repro.hopsfs.snapshot`).

Clients own disjoint subtrees so each per-client script has a single
deterministic semantic outcome regardless of cross-client interleaving.
"""

import random

from repro.chaos.invariants import durability_horizon, namespace_integrity
from repro.errors import FsError
from repro.hopsfs.groupcommit import AsyncCommitConfig
from repro.hopsfs.snapshot import namespace_snapshot

from .conftest import make_fs

NUM_CLIENTS = 6
OPS_PER_CLIENT = 40
SEED = 2026


def build_scripts(seed: int):
    """Per-client op scripts: mostly valid ops plus deliberate errors."""
    rng = random.Random(seed)
    scripts = []
    for i in range(NUM_CLIENTS):
        root = f"/c{i}"
        ops = [("mkdir", (root,))]
        dirs = [root]
        files = []
        counter = 0
        for _ in range(OPS_PER_CLIENT):
            r = rng.random()
            counter += 1
            if r < 0.25 or not files:
                d = rng.choice(dirs)
                data = bytes([65 + counter % 26]) * rng.randrange(1, 200)
                path = f"{d}/f{counter}"
                ops.append(("create", (path, data)))
                files.append(path)
            elif r < 0.40:
                d = rng.choice(dirs)
                path = f"{d}/d{counter}"
                ops.append(("mkdir", (path,)))
                dirs.append(path)
            elif r < 0.55:
                ops.append(("read", (rng.choice(files),)))
            elif r < 0.63:
                ops.append(("stat", (rng.choice(files),)))
            elif r < 0.70:
                ops.append(("listdir", (rng.choice(dirs),)))
            elif r < 0.78:
                ops.append(("chmod", (rng.choice(files), rng.randrange(0o400, 0o777))))
            elif r < 0.85:
                src = files.pop(rng.randrange(len(files)))
                dst = f"{rng.choice(dirs)}/r{counter}"
                ops.append(("rename", (src, dst)))
                files.append(dst)
            elif r < 0.92:
                victim = files.pop(rng.randrange(len(files)))
                ops.append(("delete", (victim,)))
            else:
                # Deliberate errors: the error *type* must match across paths.
                kind = rng.randrange(3)
                if kind == 0:
                    ops.append(("mkdir", (root,)))
                elif kind == 1:
                    ops.append(("read", (f"{root}/missing{counter}",)))
                else:
                    ops.append(("delete", (f"{root}/missing{counter}",)))
        scripts.append(ops)
    return scripts


def _apply(client, name, args):
    if name == "mkdir":
        return client.mkdir(*args)
    if name == "create":
        return client.create(args[0], data=args[1])
    if name == "read":
        return client.read(*args)
    if name == "stat":
        return client.stat(*args)
    if name == "listdir":
        return client.listdir(*args)
    if name == "chmod":
        return client.chmod(*args)
    if name == "rename":
        return client.rename(*args)
    if name == "delete":
        return client.delete(*args)
    raise AssertionError(f"unknown scripted op {name}")


def _observe(name, result):
    """The client-visible payload of a successful op."""
    if name == "read":
        return bytes(result.small_data) if result.is_small else result.inode.size
    if name == "stat":
        return (result.is_dir, result.size, result.permission)
    if name == "listdir":
        return tuple(sorted(getattr(row, "name", row) for row in result))
    return None


def run_mode(async_commit):
    """One full run; returns (per-client records, namespace shape, fs)."""
    fs = make_fs(num_namenodes=2, async_commit=async_commit, seed=7)
    scripts = build_scripts(SEED)
    records = [[] for _ in scripts]
    done = []

    def client_proc(idx, client, script):
        for name, args in script:
            try:
                result = yield from _apply(client, name, args)
                records[idx].append((name, "ok", _observe(name, result)))
            except FsError as exc:
                records[idx].append((name, type(exc).__name__, None))
        if async_commit is not None:
            ok = yield from client.fsync()
            assert ok is True
        done.append(idx)

    clients = [fs.client() for _ in scripts]
    for idx, (client, script) in enumerate(zip(clients, scripts)):
        fs.env.process(client_proc(idx, client, script), name=f"diff-client{idx}")
    fs.env.run(until=20_000)
    assert sorted(done) == list(range(NUM_CLIENTS)), "a scripted client stalled"
    # Let any still-lingering batch flush before snapshotting.
    fs.env.run(until=fs.env.now + 100.0)
    return records, namespace_snapshot(fs), fs


def test_async_differential_matches_sync():
    sync_records, sync_snap, _sync_fs = run_mode(None)
    async_records, async_snap, async_fs = run_mode(
        AsyncCommitConfig(linger_ms=0.5, max_batch_ops=8)
    )

    # Observed per-client semantics are identical, op for op.
    for idx, (s_rec, a_rec) in enumerate(zip(sync_records, async_records)):
        assert a_rec == s_rec, f"client {idx} diverged: {a_rec} != {s_rec}"

    # Final committed namespace shape is identical.
    assert async_snap == sync_snap

    # The async run really exercised group commit (no silent fallthrough)
    # and its ledger audits clean.
    assert async_fs.group_ledger is not None
    grouped = sum(nn.committer.ops_grouped for nn in async_fs.namenodes if nn.committer)
    assert grouped > 0
    assert durability_horizon(async_fs).ok
    assert namespace_integrity(async_fs).ok


def test_scripts_are_deterministic():
    # The harness's own precondition: both modes replay the same script.
    assert build_scripts(SEED) == build_scripts(SEED)
    assert build_scripts(SEED) != build_scripts(SEED + 1)
