"""HopsFS client behaviours: bootstrap, sticking, request accounting."""

import pytest

from repro.errors import NoNamenodeError

from .conftest import make_fs, run


def test_client_bootstrap_via_any_live_nn():
    """The bootstrap NN can differ from the selected one."""
    fs = make_fs(num_namenodes=3, azs=(1, 2, 3), az_aware=True)
    client = fs.client(az=3)

    def scenario():
        yield from fs.await_election()
        yield from client.exists("/")
        return fs.topology.az_of(client.current_nn)

    assert run(fs, scenario()) == 3


def test_client_traffic_accounted():
    fs = make_fs()
    client = fs.client()

    def scenario():
        yield from client.mkdir("/x")
        traffic = fs.network.traffic.node_bytes(client.addr)
        return traffic.sent, traffic.received

    sent, received = run(fs, scenario())
    assert sent > 0
    assert received > 0


def test_failover_cap_respected():
    fs = make_fs(num_namenodes=2)
    client = fs.client()
    client.max_failovers = 1

    def scenario():
        yield from fs.await_election()
        yield from client.exists("/")  # bind to an NN first
        for nn in fs.namenodes:
            nn.shutdown()
        with pytest.raises(NoNamenodeError):
            yield from client.mkdir("/nope")
        return client.failovers

    failovers = run(fs, scenario())
    assert failovers >= 1


def test_two_clients_interleave_without_interference():
    fs = make_fs()
    c1, c2 = fs.client(), fs.client()

    def worker(client, prefix, n):
        for i in range(n):
            yield from client.create(f"/{prefix}-{i}")

    def scenario():
        p1 = fs.env.process(worker(c1, "a", 5))
        p2 = fs.env.process(worker(c2, "b", 5))
        yield p1
        yield p2
        names = yield from c1.listdir("/")
        return names

    names = run(fs, scenario())
    assert names == sorted([f"a-{i}" for i in range(5)] + [f"b-{i}" for i in range(5)])


def test_ops_served_spread_when_clients_pick_differently():
    fs = make_fs(num_namenodes=3, azs=(1, 2, 3), az_aware=True)
    clients = [fs.client(az=az) for az in (1, 2, 3)]

    def scenario():
        yield from fs.await_election()
        for i, c in enumerate(clients):
            yield from c.create(f"/f{i}")
        return [nn.ops_served for nn in fs.namenodes]

    served = run(fs, scenario())
    # one AZ-local NN per client -> every NN served exactly one op
    assert served == [1, 1, 1]
