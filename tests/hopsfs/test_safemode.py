"""Namenode safemode: mutations rejected, reads served."""

import pytest

from repro.errors import SafeModeError

from .conftest import make_fs, run


def test_forced_safemode_rejects_mutations_serves_reads():
    fs = make_fs()
    client = fs.client()

    def scenario():
        yield from client.create("/before")
        for nn in fs.namenodes:
            nn.enter_safemode()
        with pytest.raises(SafeModeError):
            yield from client.create("/rejected")
        # reads still work
        there = yield from client.exists("/before")
        listing = yield from client.listdir("/")
        for nn in fs.namenodes:
            nn.leave_safemode()
        yield from client.create("/after")
        return there, listing

    there, listing = run(fs, scenario())
    assert there is True
    assert listing == ["before"]


def test_startup_safemode_until_first_election_round():
    from repro.hopsfs import HopsFsConfig, build_hopsfs
    from repro.ndb import NdbConfig

    fs = build_hopsfs(
        num_namenodes=2,
        azs=(2,),
        ndb_config=NdbConfig(num_datanodes=4, replication=2, num_partitions=16),
        hopsfs_config=HopsFsConfig(
            election_period_ms=50.0, safemode_on_startup=True,
            op_cost_read_ms=0.001, op_cost_mutation_ms=0.001,
        ),
    )
    assert all(nn.in_safemode for nn in fs.namenodes)

    def scenario():
        yield from fs.await_election()
        return [nn.in_safemode for nn in fs.namenodes]

    assert run(fs, scenario()) == [False, False]


def test_safemode_counts_as_failed_op():
    fs = make_fs()
    client = fs.client()

    def scenario():
        for nn in fs.namenodes:
            nn.enter_safemode()
        with pytest.raises(SafeModeError):
            yield from client.mkdir("/x")
        return sum(nn.ops_failed for nn in fs.namenodes)

    assert run(fs, scenario()) == 1
