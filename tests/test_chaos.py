"""The chaos matrix: named scenarios x setups, verified by the catalogue.

The original single chaos soak grew into :mod:`repro.chaos`; this is now a
matrix of fault-injection scenarios over representative setups from both
stacks, all going through the same engine the ``repro chaos`` CLI drives.
Integrity checks live in :mod:`repro.chaos.invariants` (tested on their
own in tests/chaos/); here we assert end-to-end that every run makes real
progress and ends all-green.
"""

import pytest

from repro.chaos import run_scenario

MATRIX = [
    ("az-outage-under-load", "hopsfs-3-3"),
    ("az-outage-under-load", "hopsfs-cl-3-3"),
    ("az-outage-under-load", "cephfs"),
    ("rolling-namenode-restarts", "hopsfs-3-3"),
    ("rolling-namenode-restarts", "hopsfs-cl-3-3"),
    ("rolling-namenode-restarts", "cephfs"),
    ("network-partition", "hopsfs-3-3"),
    ("network-partition", "hopsfs-cl-3-3"),
    ("network-partition", "cephfs"),
]


@pytest.mark.parametrize("scenario,setup", MATRIX)
def test_chaos_matrix(scenario, setup):
    result = run_scenario(scenario, setup=setup, seed=99)

    # The system made real progress under faults...
    assert result.completed > 500
    # ...the injector executed the whole schedule...
    assert len(result.fault_trace) == len(result.schedule)
    # ...availability was tracked across the run...
    active = [row for row in result.timeline if row["availability"] is not None]
    assert len(active) > 5
    # ...and every invariant holds after heal + drain.
    assert result.all_green, "\n".join(str(v) for v in result.verdicts)


def test_degraded_link_slows_but_never_breaks():
    result = run_scenario("degraded-link", setup="hopsfs-cl-3-3", seed=99)
    assert result.all_green, "\n".join(str(v) for v in result.verdicts)
    # A latency fault must not fail operations in bulk.
    assert result.failed < 0.05 * max(result.completed, 1)
