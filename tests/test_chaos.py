"""Chaos soak: workload + fault injection, then integrity verification.

Runs the Spotify mix against HopsFS-CL while crashing and recovering NDB
datanodes and namenodes, then verifies the invariants a file system must
never violate:

* replica consistency — all live members of a node group agree on every
  committed row;
* namespace integrity — every inode's parent exists and is a directory;
* no stuck transaction state — no prepared rows or held locks remain.
"""

import pytest

from repro.hopsfs import HopsFsConfig, build_hopsfs
from repro.metrics.collectors import MetricsCollector
from repro.ndb import NdbConfig
from repro.workloads import ClosedLoopDriver, SpotifyWorkload, generate_namespace
from repro.workloads.namespace import install_hopsfs


def _build():
    return build_hopsfs(
        num_namenodes=4,
        azs=(1, 2, 3),
        az_aware=True,
        ndb_config=NdbConfig(
            num_datanodes=6,
            replication=3,
            az_aware=True,
            heartbeat_interval_ms=10.0,
            deadlock_timeout_ms=100.0,
            inactive_timeout_ms=120.0,
        ),
        hopsfs_config=HopsFsConfig(
            election_period_ms=50.0, op_cost_read_ms=0.02, op_cost_mutation_ms=0.04
        ),
        heartbeats=True,
        seed=99,
    )


def _verify_replica_consistency(fs):
    """All live members of each node group agree on committed rows."""
    pm = fs.ndb.partition_map
    mismatches = []
    for group in pm.node_groups:
        live = [fs.ndb.datanodes[a] for a in group if pm.is_up(a)]
        if len(live) < 2:
            continue
        reference = live[0]
        for table in fs.ndb.schema.tables():
            if table.name == "leader":
                continue  # election rows churn continuously
            ref_rows = dict(reference.store.iter_rows(table.name))
            for other in live[1:]:
                other_rows = dict(other.store.iter_rows(table.name))
                if ref_rows != other_rows:
                    diff = set(ref_rows) ^ set(other_rows)
                    mismatches.append((table.name, reference.addr, other.addr, len(diff)))
    return mismatches


def _verify_namespace_integrity(fs):
    """Every inode's parent exists and is a directory (no orphans)."""
    # Gather the union of committed inode rows across primaries.
    inodes = {}
    for dn in fs.ndb.datanodes.values():
        if not dn.running:
            continue
        for pk, row in dn.store.iter_rows("inodes"):
            inodes[row.id] = row
    orphans = []
    ids = {row.id for row in inodes.values()} | {1}
    for row in inodes.values():
        if row.parent_id == 0:
            continue  # the root row
        if row.parent_id not in ids:
            orphans.append(row)
    return orphans


def test_chaos_soak_preserves_invariants():
    fs = _build()
    env = fs.env
    namespace = generate_namespace(
        num_top_dirs=3, dirs_per_top=8, files_per_dir=8, seed=99
    )
    install_hopsfs(fs, namespace)

    clients = [fs.client() for _ in range(24)]
    collector = MetricsCollector()
    collector.open_window(0)
    workload = SpotifyWorkload(namespace, seed=99)
    driver = ClosedLoopDriver(env, clients, workload, collector)

    def chaos():
        rng = fs.rng.stream("chaos")
        dn_addrs = list(fs.ndb.datanodes)
        # crash and recover one NDB datanode
        victim = rng.choice(dn_addrs)
        yield env.timeout(30)
        fs.ndb.crash_datanode(victim)
        yield env.timeout(120)  # heartbeat detection + traffic continues
        yield from fs.ndb.restart_datanode(victim)
        # kill one namenode (clients fail over)
        yield env.timeout(30)
        fs.namenodes[1].shutdown()
        yield env.timeout(60)

    def scenario():
        yield from fs.await_election()
        driver.start()
        yield env.process(chaos())
        yield env.timeout(60)
        driver.stop()
        yield env.timeout(500)  # drain in-flight ops, retries, reapers

    env.run_process(scenario(), until=600_000)
    collector.close_window(env.now)

    # The system made real progress and mostly succeeded.
    assert collector.completed > 500
    assert collector.failure_rate() < 0.2

    # Replica consistency within every node group.
    assert _verify_replica_consistency(fs) == []

    # No orphaned inodes.
    assert _verify_namespace_integrity(fs) == []

    # No stuck transaction state on live datanodes.
    for dn in fs.ndb.datanodes.values():
        if dn.running:
            assert dn.store.prepared_count() == 0, str(dn.addr)
            assert dn.locks.active_rows == 0, str(dn.addr)
    assert fs.ndb.active_transactions == 0
