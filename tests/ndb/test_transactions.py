"""End-to-end transaction tests against a simulated NDB cluster."""

import pytest

from repro.errors import TransactionAbortedError
from repro.ndb import LockMode, run_transaction

from .conftest import build_harness


def test_write_then_read_committed(harness):
    def scenario():
        txn = harness.api.transaction(hint_table="t", hint_key="k1")
        yield from txn.write("t", "k1", {"v": 1})
        yield from txn.commit()
        txn2 = harness.api.transaction(hint_table="t", hint_key="k1")
        value = yield from txn2.read("t", "k1")
        yield from txn2.commit()
        return value

    assert harness.run(scenario()) == {"v": 1}


def test_read_missing_row_returns_none(harness):
    def scenario():
        txn = harness.api.transaction()
        value = yield from txn.read("t", "nope")
        yield from txn.commit()
        return value

    assert harness.run(scenario()) is None


def test_multi_row_transaction_atomic_visibility(harness):
    def scenario():
        txn = harness.api.transaction(hint_table="t", hint_key="a")
        yield from txn.write("t", "a", 1)
        yield from txn.write("t", "b", 2)
        yield from txn.write("t", "c", 3)
        yield from txn.commit()
        txn2 = harness.api.transaction()
        values = []
        for key in ("a", "b", "c"):
            value = yield from txn2.read("t", key)
            values.append(value)
        yield from txn2.commit()
        return values

    assert harness.run(scenario()) == [1, 2, 3]


def test_delete_removes_row(harness):
    def scenario():
        txn = harness.api.transaction()
        yield from txn.write("t", "k", "v")
        yield from txn.commit()
        txn = harness.api.transaction()
        yield from txn.delete("t", "k")
        yield from txn.commit()
        txn = harness.api.transaction()
        value = yield from txn.read("t", "k")
        yield from txn.commit()
        return value

    assert harness.run(scenario()) is None


def test_update_overwrites(harness):
    def scenario():
        for v in (1, 2, 3):
            txn = harness.api.transaction()
            yield from txn.write("t", "k", v)
            yield from txn.commit()
        txn = harness.api.transaction()
        value = yield from txn.read("t", "k")
        yield from txn.commit()
        return value

    assert harness.run(scenario()) == 3


def test_abort_discards_writes(harness):
    def scenario():
        txn = harness.api.transaction()
        yield from txn.write("t", "k", "dirty")
        yield from txn.abort()
        txn = harness.api.transaction()
        value = yield from txn.read("t", "k")
        yield from txn.commit()
        return value

    assert harness.run(scenario()) is None


def test_abort_releases_locks(harness):
    def scenario():
        txn = harness.api.transaction()
        yield from txn.write("t", "k", "dirty")
        yield from txn.abort()
        # A second writer must not block.
        txn2 = harness.api.transaction()
        yield from txn2.write("t", "k", "clean")
        yield from txn2.commit()
        txn3 = harness.api.transaction()
        value = yield from txn3.read("t", "k", lock=LockMode.SHARED)
        yield from txn3.commit()
        return value

    assert harness.run(scenario()) == "clean"


def test_locked_read_sees_own_uncommitted_write(harness):
    def scenario():
        txn = harness.api.transaction()
        yield from txn.write("t", "k", "mine")
        value = yield from txn.read("t", "k", lock=LockMode.EXCLUSIVE)
        yield from txn.commit()
        return value

    assert harness.run(scenario()) == "mine"


def test_exclusive_lock_serializes_writers(harness):
    """Two read-modify-write transactions on one row never lose an update."""
    env = harness.env
    results = []

    def incrementer(tag):
        txn = harness.api.transaction(hint_table="t", hint_key="counter")
        value = yield from txn.read("t", "counter", lock=LockMode.EXCLUSIVE)
        yield env.timeout(1.0)  # widen the race window
        yield from txn.write("t", "counter", (value or 0) + 1)
        yield from txn.commit()
        results.append(tag)

    def scenario():
        txn = harness.api.transaction()
        yield from txn.write("t", "counter", 0)
        yield from txn.commit()
        p1 = env.process(incrementer("a"))
        p2 = env.process(incrementer("b"))
        yield p1
        yield p2
        txn = harness.api.transaction()
        value = yield from txn.read("t", "counter", lock=LockMode.SHARED)
        yield from txn.commit()
        return value

    assert harness.run(scenario()) == 2


def test_scan_returns_partition_rows(harness):
    def scenario():
        txn = harness.api.transaction()
        for i in range(5):
            yield from txn.write("t", f"child{i}", i, partition_key="dir1")
        yield from txn.write("t", "other", 99, partition_key="dir2")
        yield from txn.commit()
        txn = harness.api.transaction(hint_table="t", hint_key="dir1")
        rows = yield from txn.scan("t", "dir1")
        yield from txn.commit()
        return rows

    rows = harness.run(scenario())
    assert len(rows) == 5
    assert {pk for pk, _v in rows} == {f"child{i}" for i in range(5)}


def test_run_transaction_commits(harness):
    def body(txn):
        yield from txn.write("t", "k", 42)
        return "done"

    def scenario():
        result = yield from run_transaction(harness.api, body, hint_table="t", hint_key="k")
        txn = harness.api.transaction()
        value = yield from txn.read("t", "k")
        yield from txn.commit()
        return result, value

    assert harness.run(scenario()) == ("done", 42)


def test_run_transaction_retries_on_lock_timeout():
    harness = build_harness(deadlock_timeout_ms=20.0)
    env = harness.env
    attempts = []

    def blocker():
        txn = harness.api.transaction()
        yield from txn.write("t", "hot", "held")
        yield env.timeout(60)  # hold the X lock past the deadlock timeout
        yield from txn.commit()

    def body(txn):
        attempts.append(env.now)
        yield from txn.write("t", "hot", "second")

    def scenario():
        blocking = env.process(blocker())
        yield env.timeout(1)
        result = yield from run_transaction(harness.api, body, hint_table="t", hint_key="hot")
        yield blocking
        return result

    harness.run(scenario())
    assert len(attempts) >= 2  # first attempt timed out, retry succeeded


def test_run_transaction_propagates_application_errors(harness):
    class AppError(Exception):
        pass

    def body(txn):
        yield from txn.write("t", "k", 1)
        raise AppError("no")

    def scenario():
        with pytest.raises(AppError):
            yield from run_transaction(harness.api, body)
        # the aborted write must not be visible
        txn = harness.api.transaction()
        value = yield from txn.read("t", "k")
        yield from txn.commit()
        return value

    assert harness.run(scenario()) is None


def test_transactions_use_az_local_tc_when_aware():
    harness = build_harness(az_aware=True, client_az=2)
    topo = harness.network.topology
    seen_azs = set()
    for _ in range(20):
        txn = harness.api.transaction()  # no hint: proximity-based choice
        seen_azs.add(topo.az_of(txn.tc))
    assert seen_azs == {2}


def test_transactions_ignore_az_without_awareness():
    harness = build_harness(az_aware=False, client_az=2)
    topo = harness.network.topology
    seen_azs = set()
    for _ in range(40):
        txn = harness.api.transaction()
        seen_azs.add(topo.az_of(txn.tc))
    assert 1 in seen_azs  # random selection crosses AZs


def test_read_backup_commit_acks_after_all_replicas(harness):
    """With RB on, a committed write is immediately visible on backups."""
    cluster = harness.cluster

    def scenario():
        txn = harness.api.transaction(hint_table="t", hint_key="rb")
        yield from txn.write("t", "rb", "visible")
        yield from txn.commit()
        # At ACK time every replica (primary + backups) must have applied.
        partition = cluster.partition_map.partition_of("rb")
        replicas = cluster.partition_map.replicas(partition)
        values = [
            cluster.datanodes[node].store.read("t", "rb") for node in replicas.all
        ]
        return values

    assert harness.run(scenario()) == ["visible", "visible"]


def test_plain_table_backup_may_lag_at_ack():
    """Without RB, the ACK races the Complete: reads are routed to primary."""
    harness = build_harness(read_backup=False)
    cluster = harness.cluster

    def scenario():
        txn = harness.api.transaction(hint_table="plain", hint_key="k")
        yield from txn.write("plain", "k", "new")
        yield from txn.commit()
        partition = cluster.partition_map.partition_of("k")
        replicas = cluster.partition_map.replicas(partition)
        primary_value = cluster.datanodes[replicas.primary].store.read("plain", "k")
        backup_value = cluster.datanodes[replicas.backups[0]].store.read("plain", "k")
        return primary_value, backup_value

    primary_value, backup_value = harness.run(scenario())
    assert primary_value == "new"
    assert backup_value is None  # Complete has not landed yet — the paper's window


def test_fully_replicated_row_on_every_datanode():
    harness = build_harness(fully_replicated_tables=("fr",), num_datanodes=6, replication=2, azs=(1, 2, 3))

    def scenario():
        txn = harness.api.transaction(hint_table="fr", hint_key="k")
        yield from txn.write("fr", "k", "everywhere")
        yield from txn.commit()
        return [dn.store.read("fr", "k") for dn in harness.cluster.datanodes.values()]

    assert harness.run(scenario()) == ["everywhere"] * 6
