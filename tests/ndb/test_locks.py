"""Tests for the strict-2PL row lock table."""

import pytest

from repro.errors import LockTimeoutError
from repro.ndb import LockMode, LockTable
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def locks(env):
    return LockTable(env, deadlock_timeout_ms=100)


def test_uncontended_exclusive_granted_immediately(env, locks):
    def proc():
        yield locks.acquire(1, "row", LockMode.EXCLUSIVE)
        return env.now

    assert env.run_process(proc()) == 0
    assert locks.holds(1, "row", LockMode.EXCLUSIVE)


def test_shared_locks_coexist(env, locks):
    def proc():
        yield locks.acquire(1, "row", LockMode.SHARED)
        yield locks.acquire(2, "row", LockMode.SHARED)
        return env.now

    assert env.run_process(proc()) == 0
    assert locks.holds(1, "row", LockMode.SHARED)
    assert locks.holds(2, "row", LockMode.SHARED)


def test_exclusive_blocks_shared(env, locks):
    order = []

    def writer():
        yield locks.acquire(1, "row", LockMode.EXCLUSIVE)
        order.append(("w", env.now))
        yield env.timeout(10)
        locks.release_all(1)

    def reader():
        yield env.timeout(1)
        yield locks.acquire(2, "row", LockMode.SHARED)
        order.append(("r", env.now))

    env.process(writer())
    env.process(reader())
    env.run()
    assert order == [("w", 0), ("r", 10)]


def test_exclusive_waits_for_all_shared(env, locks):
    done = []

    def reader(txid):
        yield locks.acquire(txid, "row", LockMode.SHARED)
        yield env.timeout(5 * txid)
        locks.release_all(txid)

    def writer():
        yield env.timeout(1)
        yield locks.acquire(99, "row", LockMode.EXCLUSIVE)
        done.append(env.now)

    env.process(reader(1))
    env.process(reader(2))
    env.process(writer())
    env.run()
    assert done == [10]  # waits for the slower reader (txid 2 -> t=10)


def test_fifo_no_starvation(env, locks):
    """A shared request behind a queued exclusive one must wait (no jumping)."""
    order = []

    def holder():
        yield locks.acquire(1, "row", LockMode.SHARED)
        yield env.timeout(10)
        locks.release_all(1)

    def writer():
        yield env.timeout(1)
        yield locks.acquire(2, "row", LockMode.EXCLUSIVE)
        order.append(("w", env.now))
        yield env.timeout(5)
        locks.release_all(2)

    def late_reader():
        yield env.timeout(2)
        yield locks.acquire(3, "row", LockMode.SHARED)
        order.append(("r", env.now))

    env.process(holder())
    env.process(writer())
    env.process(late_reader())
    env.run()
    assert order == [("w", 10), ("r", 15)]


def test_reentrant_acquire_is_noop(env, locks):
    def proc():
        yield locks.acquire(1, "row", LockMode.EXCLUSIVE)
        yield locks.acquire(1, "row", LockMode.EXCLUSIVE)
        yield locks.acquire(1, "row", LockMode.SHARED)  # covered by X
        return env.now

    assert env.run_process(proc()) == 0


def test_upgrade_sole_shared_holder(env, locks):
    def proc():
        yield locks.acquire(1, "row", LockMode.SHARED)
        yield locks.acquire(1, "row", LockMode.EXCLUSIVE)
        return env.now

    assert env.run_process(proc()) == 0
    assert locks.holds(1, "row", LockMode.EXCLUSIVE)


def test_upgrade_waits_for_other_sharers(env, locks):
    done = []

    def upgrader():
        yield locks.acquire(1, "row", LockMode.SHARED)
        yield env.timeout(1)
        yield locks.acquire(1, "row", LockMode.EXCLUSIVE)
        done.append(env.now)

    def other():
        yield locks.acquire(2, "row", LockMode.SHARED)
        yield env.timeout(5)
        locks.release_all(2)

    env.process(other())
    env.process(upgrader())
    env.run()
    assert done == [5]


def test_deadlock_timeout_fires(env, locks):
    """Two transactions locking in opposite order: the waiters time out."""

    def t1():
        yield locks.acquire(1, "a", LockMode.EXCLUSIVE)
        yield env.timeout(1)
        with pytest.raises(LockTimeoutError):
            yield locks.acquire(1, "b", LockMode.EXCLUSIVE)
        locks.release_all(1)
        return env.now

    def t2():
        yield locks.acquire(2, "b", LockMode.EXCLUSIVE)
        yield env.timeout(1)
        with pytest.raises(LockTimeoutError):
            yield locks.acquire(2, "a", LockMode.EXCLUSIVE)
        locks.release_all(2)
        return env.now

    p1 = env.process(t1())
    p2 = env.process(t2())
    env.run()
    # both waited the 100ms deadlock timeout from t=1
    assert p1.value == 101
    assert p2.value == 101
    assert locks.timeouts_fired == 2


def test_release_all_wakes_waiters(env, locks):
    woke = []

    def holder():
        yield locks.acquire(1, "a", LockMode.EXCLUSIVE)
        yield locks.acquire(1, "b", LockMode.EXCLUSIVE)
        yield env.timeout(3)
        locks.release_all(1)

    def waiter(txid, key):
        yield env.timeout(1)  # let the holder take both locks first
        yield locks.acquire(txid, key, LockMode.EXCLUSIVE)
        woke.append((txid, env.now))

    env.process(holder())
    env.process(waiter(2, "a"))
    env.process(waiter(3, "b"))
    env.run()
    assert sorted(woke) == [(2, 3), (3, 3)]


def test_per_key_release(env, locks):
    woke = []

    def holder():
        yield locks.acquire(1, "a", LockMode.EXCLUSIVE)
        yield locks.acquire(1, "b", LockMode.EXCLUSIVE)
        yield env.timeout(2)
        locks.release(1, "a")
        yield env.timeout(2)
        locks.release(1, "b")

    def waiter(txid, key):
        yield env.timeout(1)  # let the holder take both locks first
        yield locks.acquire(txid, key, LockMode.EXCLUSIVE)
        woke.append((key, env.now))

    env.process(holder())
    env.process(waiter(2, "a"))
    env.process(waiter(3, "b"))
    env.run()
    assert sorted(woke) == [("a", 2), ("b", 4)]


def test_timed_out_waiter_does_not_block_queue(env, locks):
    woke = []

    def holder():
        yield locks.acquire(1, "row", LockMode.EXCLUSIVE)
        yield env.timeout(150)  # beyond the 100ms deadlock timeout
        locks.release_all(1)

    def impatient():
        yield env.timeout(1)
        with pytest.raises(LockTimeoutError):
            yield locks.acquire(2, "row", LockMode.EXCLUSIVE)
        locks.release_all(2)

    def patient():
        yield env.timeout(2)
        try:
            yield locks.acquire(3, "row", LockMode.EXCLUSIVE)
            woke.append(env.now)
        except LockTimeoutError:
            woke.append("timeout")

    env.process(holder())
    env.process(impatient())
    env.process(patient())
    env.run()
    # patient also times out at 102 (held until 150) — that's correct 2PL
    assert woke == ["timeout"]


def test_active_rows_accounting(env, locks):
    def proc():
        yield locks.acquire(1, "a", LockMode.SHARED)
        assert locks.active_rows == 1
        locks.release_all(1)
        assert locks.active_rows == 0
        return True

    assert env.run_process(proc())
