"""Unit tests for the fragment store, schema and table options."""

import pytest

from repro.errors import ConfigError, NdbError
from repro.ndb import FragmentStore, ReadStats, Schema, TableDef
from repro.ndb.schema import TOMBSTONE
from repro.types import NodeAddress, NodeKind


def test_schema_define_and_lookup():
    schema = Schema()
    schema.define("inodes", read_backup=True, row_bytes=224)
    table = schema.table("inodes")
    assert table.read_backup
    assert not table.fully_replicated
    assert "inodes" in schema
    assert len(schema) == 1


def test_schema_duplicate_rejected():
    schema = Schema()
    schema.define("t")
    with pytest.raises(ConfigError):
        schema.define("t")


def test_schema_unknown_table():
    with pytest.raises(ConfigError):
        Schema().table("ghost")
    assert Schema().get("ghost") is None


def test_schema_read_backup_everywhere():
    schema = Schema()
    schema.define("a")
    schema.define("b", fully_replicated=True)
    clone = schema.with_read_backup_everywhere()
    assert all(t.read_backup for t in clone.tables())
    assert clone.table("b").fully_replicated


def test_tabledef_validation():
    with pytest.raises(ConfigError):
        TableDef(name="")
    with pytest.raises(ConfigError):
        TableDef(name="x", row_bytes=0)


def test_store_read_write_delete():
    store = FragmentStore()
    store.load("t", "pk", "part", {"v": 1})
    assert store.read("t", "pk") == {"v": 1}
    assert store.row_count("t") == 1
    store.load("t", "pk", "part", TOMBSTONE)
    assert store.read("t", "pk") is None
    assert store.row_count("t") == 0


def test_store_prepare_commit_cycle():
    store = FragmentStore()
    store.prepare(7, "t", "k", "p", "new")
    assert store.has_prepared("t", "k")
    assert store.read("t", "k") is None  # not visible until commit
    store.commit_prepared(7, "t", "k")
    assert store.read("t", "k") == "new"
    assert not store.has_prepared("t", "k")


def test_store_prepare_abort():
    store = FragmentStore()
    store.load("t", "k", "p", "old")
    store.prepare(7, "t", "k", "p", "new")
    store.abort_prepared(7, "t", "k")
    assert store.read("t", "k") == "old"


def test_store_conflicting_prepare_rejected():
    store = FragmentStore()
    store.prepare(1, "t", "k", "p", "a")
    with pytest.raises(NdbError):
        store.prepare(2, "t", "k", "p", "b")
    # same transaction may re-prepare (second write to the same row)
    store.prepare(1, "t", "k", "p", "a2")
    store.commit_prepared(1, "t", "k")
    assert store.read("t", "k") == "a2"


def test_store_commit_without_prepare_fails():
    store = FragmentStore()
    with pytest.raises(NdbError):
        store.commit_prepared(1, "t", "k")


def test_store_abort_all():
    store = FragmentStore()
    store.prepare(1, "t", "a", "p", 1)
    store.prepare(1, "t", "b", "p", 2)
    store.prepare(2, "t", "c", "p", 3)
    store.abort_all(1)
    assert store.prepared_count() == 1


def test_store_read_for_sees_own_writes():
    store = FragmentStore()
    store.load("t", "k", "p", "old")
    store.prepare(5, "t", "k", "p", "mine")
    assert store.read_for(5, "t", "k") == "mine"
    assert store.read_for(6, "t", "k") == "old"
    store.prepare(5, "t", "gone", "p", TOMBSTONE) if False else None
    assert store.read("t", "k") == "old"


def test_store_scan_by_partition_key():
    store = FragmentStore()
    for i in range(5):
        store.load("t", f"k{i}", "dirA", i)
    store.load("t", "other", "dirB", 99)
    rows = store.scan("t", "dirA")
    assert len(rows) == 5
    assert all(pk.startswith("k") for pk, _v in rows)
    # deleting removes from the index
    store.load("t", "k0", "dirA", TOMBSTONE)
    assert len(store.scan("t", "dirA")) == 4


def test_store_partition_key_move_updates_index():
    store = FragmentStore()
    store.load("t", "k", "dirA", 1)
    store.load("t", "k", "dirB", 2)
    assert store.scan("t", "dirA") == []
    assert store.scan("t", "dirB") == [("k", 2)]


def test_read_stats_distribution():
    stats = ReadStats()
    node = NodeAddress(NodeKind.NDB_DATANODE, 1)
    for _ in range(3):
        stats.record("t", 5, 0, node, same_az=True)
    stats.record("t", 5, 1, node, same_az=False)
    dist = stats.partition_distribution(5)
    assert dist == {0: 3, 1: 1}
    assert stats.primary_fraction() == pytest.approx(0.75)
    assert stats.az_local_fraction() == pytest.approx(0.75)
