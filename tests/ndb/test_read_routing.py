"""Read-routing tests: Read Backup / AZ-local reads (the Fig. 14 mechanism)."""

from repro.ndb import LockMode

from .conftest import build_harness


def _populate(harness, n=30):
    def loader():
        txn = harness.api.transaction()
        for i in range(n):
            yield from txn.write("t", f"k{i}", i)
            yield from txn.write("plain", f"k{i}", i)
        yield from txn.commit()

    harness.run(loader())


def _read_all(harness, table, n=30, repeat=3):
    def reader():
        for _ in range(repeat):
            for i in range(n):
                txn = harness.api.transaction(hint_table=table, hint_key=f"k{i}")
                yield from txn.read(table, f"k{i}")
                yield from txn.commit()

    harness.run(reader())


def test_plain_table_reads_all_go_to_primary():
    harness = build_harness()
    _populate(harness)
    before = harness.cluster.read_stats.total_reads()
    _read_all(harness, "plain")
    stats = harness.cluster.read_stats
    primary = sum(c for (t, p, role), c in stats.by_replica.items() if t == "plain" and role == 0)
    backup = sum(c for (t, p, role), c in stats.by_replica.items() if t == "plain" and role > 0)
    assert primary > 0
    assert backup == 0
    assert stats.total_reads() > before


def test_read_backup_reads_hit_backups_too():
    harness = build_harness(num_datanodes=6, replication=3, azs=(1, 2, 3))
    _populate(harness)
    _read_all(harness, "t")
    stats = harness.cluster.read_stats
    backup = sum(c for (t, p, role), c in stats.by_replica.items() if t == "t" and role > 0)
    assert backup > 0


def test_read_backup_reads_are_az_local_when_aware():
    """R=3 over 3 AZs: every read can be served in the client's AZ."""
    harness = build_harness(num_datanodes=6, replication=3, azs=(1, 2, 3), client_az=2)
    _populate(harness)
    stats = harness.cluster.read_stats
    base_local, base_remote = stats.az_local_reads, stats.az_remote_reads
    _read_all(harness, "t")
    assert stats.az_remote_reads == base_remote  # zero new cross-AZ reads
    assert stats.az_local_reads > base_local


def test_no_az_awareness_reads_cross_azs():
    harness = build_harness(
        num_datanodes=6, replication=3, azs=(1, 2, 3), client_az=2, az_aware=False
    )
    _populate(harness)
    stats = harness.cluster.read_stats
    base_remote = stats.az_remote_reads
    _read_all(harness, "t")
    assert stats.az_remote_reads > base_remote


def test_locked_reads_always_primary():
    harness = build_harness(num_datanodes=6, replication=3, azs=(1, 2, 3))
    _populate(harness)

    def reader():
        for i in range(20):
            txn = harness.api.transaction(hint_table="t", hint_key=f"k{i}")
            yield from txn.read("t", f"k{i}", lock=LockMode.SHARED)
            yield from txn.commit()

    before = {
        role: sum(c for (t, p, r), c in harness.cluster.read_stats.by_replica.items() if t == "t" and r == role)
        for role in (0, 1, 2)
    }
    harness.run(reader())
    after = {
        role: sum(c for (t, p, r), c in harness.cluster.read_stats.by_replica.items() if t == "t" and r == role)
        for role in (0, 1, 2)
    }
    assert after[0] - before[0] == 20
    assert after[1] == before[1]
    assert after[2] == before[2]


def test_cross_az_traffic_lower_with_read_backup():
    """The Section V-E claim: Read Backup reduces cross-AZ network traffic."""

    def run_workload(read_backup):
        harness = build_harness(
            num_datanodes=6,
            replication=3,
            azs=(1, 2, 3),
            client_az=2,
            read_backup=read_backup,
        )
        _populate(harness, n=20)
        snap = harness.network.traffic.snapshot()
        _read_all(harness, "t", n=20, repeat=5)
        delta = harness.network.traffic.delta_since(snap)
        return delta.cross_az_bytes

    assert run_workload(True) < run_workload(False)
